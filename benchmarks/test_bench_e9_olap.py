"""E9 — analysis-service performance over the shared stack.

OLAP query latency vs fact-table size and grouping dimensionality,
plus the aggregate-cache ablation the DESIGN.md calls out: repeated
dashboard queries should be dominated by cache hits.
"""

import time

import pytest

from repro.engine import Database
from repro.olap import CubeSchema, OlapEngine
from repro.workloads import RetailWorkload

from _util import emit, format_table

FACT_SIZES = (1_000, 4_000, 16_000)


def build_engine(fact_rows, use_cache=True):
    database = Database()
    workload = RetailWorkload(seed=11)
    workload.build(database, fact_rows=fact_rows)
    schema = CubeSchema.from_definition(workload.cube_definition())
    return OlapEngine(database, schema, use_cache=use_cache)


def timed(fn, repeats=3):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best * 1000.0


def test_bench_e9_olap_query(benchmark):
    engine = build_engine(4_000, use_cache=False)

    def one_query():
        return engine.query(
            ["revenue"], [("Time", "year"), ("Store", "region")])

    cells = benchmark(one_query)
    assert len(cells.rows) > 0

    # Latency vs fact size and number of grouping axes.
    rows = []
    for fact_rows in FACT_SIZES:
        engine = build_engine(fact_rows, use_cache=False)
        latency_0d = timed(lambda: engine.query(["revenue"]))
        latency_1d = timed(lambda: engine.query(
            ["revenue"], [("Store", "region")]))
        latency_2d = timed(lambda: engine.query(
            ["revenue"], [("Time", "year"), ("Store", "region")]))
        latency_3d = timed(lambda: engine.query(
            ["revenue"], [("Time", "month"), ("Store", "city"),
                          ("Product", "category")]))
        rows.append((fact_rows, latency_0d, latency_1d,
                     latency_2d, latency_3d))
    emit("E9_olap_latency", format_table(
        ("fact rows", "0 axes ms", "1 axis ms",
         "2 axes ms", "3 axes ms"), rows))

    # Shape: latency grows with fact size (comparing the same query).
    assert rows[-1][2] > rows[0][2]


def test_e9_aggregate_cache_ablation():
    """Cache on vs off for a dashboard-style repeated query mix."""
    queries = [
        (["revenue"], [("Store", "region")], ()),
        (["revenue", "quantity"], [("Time", "year")], ()),
        (["quantity"], [("Product", "category")], ()),
    ]

    def run_dashboard(engine, refreshes):
        for _ in range(refreshes):
            for measures, axes, slicers in queries:
                engine.query(measures, list(axes), list(slicers))

    cached = build_engine(8_000, use_cache=True)
    uncached = build_engine(8_000, use_cache=False)
    cached_ms = timed(lambda: run_dashboard(cached, 10), repeats=1)
    uncached_ms = timed(lambda: run_dashboard(uncached, 10), repeats=1)

    emit("E9_cache_ablation", format_table(
        ("configuration", "30 dashboard queries ms", "cache hits"),
        [("aggregate cache ON", cached_ms,
          cached.statistics["cache_hits"]),
         ("aggregate cache OFF", uncached_ms,
          uncached.statistics["cache_hits"])]))

    assert cached.statistics["cache_hits"] == 27  # 3 cold, 27 hot
    assert uncached.statistics["cache_hits"] == 0
    assert cached_ms < uncached_ms


def test_e9_results_identical_with_and_without_cache():
    cached = build_engine(2_000, use_cache=True)
    uncached = build_engine(2_000, use_cache=False)
    for _ in range(2):
        a = cached.query(["revenue"], [("Store", "region")])
        b = uncached.query(["revenue"], [("Store", "region")])
        assert a.rows == b.rows


def test_e9_index_ablation_point_lookups():
    """Index on vs off for selective point lookups on the fact table
    (drill-through queries), the second ablation DESIGN.md calls out."""
    database = Database()
    workload = RetailWorkload(seed=11)
    workload.build(database, fact_rows=16_000)

    def drill_through():
        for key in range(1, 101):
            database.query(
                "SELECT revenue FROM fact_sales WHERE time_key = ?",
                (key,))

    no_index_ms = timed(drill_through, repeats=2)
    database.execute(
        "CREATE INDEX fact_time ON fact_sales (time_key)")
    with_index_ms = timed(drill_through, repeats=2)

    emit("E9_index_ablation", format_table(
        ("configuration", "100 drill-through lookups ms"),
        [("no index (full scans)", no_index_ms),
         ("hash index on time_key", with_index_ms)]))
    assert with_index_ms < no_index_ms / 2
