"""E18 — the price and payoff of supervision.

Three measurements price the tentpole:

* **route_read p50**: poll-on-read re-scans the primary's on-disk WAL
  on every routed read; the supervisor's background pump ships frames
  once per tick instead, so the read path becomes lock-check + lag
  arithmetic.  The gap grows with the log, so a long unckeckpointed
  WAL shows the pump's worth.
* **MTTR vs probe interval**: on a fake clock the detector's recovery
  time is exact — (miss_threshold - 1) x probe_interval from first
  miss to promotion — so the probe cadence *is* the MTTR dial.
* **divergence-to-heal**: fake-clock seconds from the audit that
  quarantined a silently diverged replica to the audit that verified
  its heal.

Regenerates ``E18`` text and ``BENCH_supervision.json``.
"""

import statistics
import time

import pytest

from repro.core.resilience import FakeClock, FaultInjector
from repro.core.sharding import ShardMap
from repro.core.supervision import ShardSupervisor

from _util import emit, format_table, write_bench_json

pytestmark = pytest.mark.perfsmoke

WAL_COMMITS = 400
READS = 60
PROBE_INTERVALS = (0.5, 1.0, 2.0)
MISS_THRESHOLD = 3


def build_map(base, clock=None, faults=None):
    shard_map = ShardMap(base, shards=1, replicas=1, fsync="off",
                         clock=clock, faults=faults)
    shard = shard_map.shard("shard-0")
    shard.primary.execute(
        "CREATE TABLE sup_events (id INTEGER PRIMARY KEY, v INTEGER)")
    for index in range(WAL_COMMITS):
        shard.primary.execute("INSERT INTO sup_events VALUES (?, ?)",
                              (index, index % 97))
    return shard_map, shard


def read_p50_ms(shard_map, tenant="acme"):
    samples = []
    for _ in range(READS):
        started = time.perf_counter()
        shard_map.route_read(tenant)
        samples.append((time.perf_counter() - started) * 1000.0)
    return statistics.median(samples)


def test_bench_e18_supervision(tmp_path):
    cases = {}

    # -- route_read p50: poll-on-read vs background pump ------------
    shard_map, shard = build_map(tmp_path / "route")
    shard.poll_replicas()  # both modes start from a converged replica
    poll_p50 = read_p50_ms(shard_map)  # route_polling=True (default)
    supervisor = ShardSupervisor(shard_map, pump=True, audit_every=0)
    assert shard_map.route_polling is False
    supervisor.tick()
    pump_p50 = read_p50_ms(shard_map)
    cases["route_read_p50_poll_on_read_ms"] = poll_p50
    cases["route_read_p50_background_pump_ms"] = pump_p50
    # Routed reads still serve the replica at zero lag in pump mode.
    handle = shard_map.read_handle("acme")
    assert handle.served_by.endswith("-replica-0")
    assert handle.replica_lag == 0
    assert pump_p50 < poll_p50, (
        f"background pump p50 {pump_p50:.3f}ms is not below "
        f"poll-on-read p50 {poll_p50:.3f}ms over a "
        f"{WAL_COMMITS}-commit WAL")
    shard_map.close()

    # -- MTTR vs probe interval (fake-clock seconds) -----------------
    mttr_rows = []
    for interval in PROBE_INTERVALS:
        clock = FakeClock()
        faults = FaultInjector()
        shard_map, shard = build_map(
            tmp_path / f"mttr-{interval}", clock=clock, faults=faults)
        shard.replicas[0].poll()
        shard.primary.wal.close()  # the primary dies at t=0
        watcher = ShardSupervisor(
            shard_map, clock=clock, faults=faults,
            probe_interval=interval, miss_threshold=MISS_THRESHOLD,
            min_failover_interval=0.0, audit_every=0)
        watcher.run(MISS_THRESHOLD + 1)
        (incident,) = watcher.incidents
        assert incident.outcome == "promoted"
        assert incident.mttr == (MISS_THRESHOLD - 1) * interval
        assert incident.mttr <= MISS_THRESHOLD * interval, (
            "promotion fell outside the probe budget")
        mttr_rows.append((interval, incident.mttr,
                          MISS_THRESHOLD * interval))
        cases[f"mttr_fake_s_interval_{interval}"] = incident.mttr
        shard_map.close()

    # -- divergence-to-heal (fake-clock seconds) ---------------------
    clock = FakeClock()
    faults = FaultInjector()
    shard_map, shard = build_map(tmp_path / "heal", clock=clock,
                                 faults=faults)
    replica = shard.replicas[0]
    replica.poll()
    faults.inject(f"replica.divergence.{replica.replica_id}", limit=1)
    shard.primary.execute(
        "INSERT INTO sup_events VALUES (9999, 0)")
    auditor = ShardSupervisor(shard_map, clock=clock, faults=faults,
                              audit_every=1)
    quarantine = auditor.audit()["shard-0"][replica.replica_id]
    assert quarantine["verdict"] == "quarantined"
    clock.advance(auditor.probe_interval)  # one cadence later
    heal = auditor.audit()["shard-0"][replica.replica_id]
    assert heal["verdict"] == "healed"
    cases["divergence_to_heal_fake_s"] = heal["quarantined_for"]
    shard_map.close()

    lines = [
        f"Routed-read p50 over a {WAL_COMMITS}-commit WAL "
        f"({READS} reads):",
        format_table(
            ("mode", "p50 (ms)"),
            [("poll-on-read", poll_p50),
             ("background pump", pump_p50)]),
        "",
        f"MTTR vs probe interval (fake-clock seconds, "
        f"miss_threshold={MISS_THRESHOLD}):",
        format_table(
            ("interval (s)", "MTTR (s)", "budget (s)"),
            mttr_rows),
        "",
        f"divergence quarantined -> healed in "
        f"{cases['divergence_to_heal_fake_s']:.1f} fake seconds "
        f"(one audit cadence).",
    ]
    emit("E18_supervision", "\n".join(lines))
    write_bench_json("supervision", cases)
