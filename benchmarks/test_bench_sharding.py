"""E17 — sharded read throughput and replica-lag convergence.

The tentpole claim priced: placing tenants across N engine shards
shrinks every tenant-scoped scan by ~1/N (the shared operational
table holds only that shard's tenants), so *aggregate* read
throughput grows with the shard count — the paper's shared-backend
economics extended horizontally.  The second half measures the
replication story: a replica's lag (in MVCC commit numbers) under a
write-heavy tenant grows only as far as the burst and converges to
zero within a bounded number of polls.

Regenerates ``E17`` text and ``BENCH_sharding.json``.
"""

import time

import pytest

from repro.core.sharding import ShardMap

from _util import emit, format_table, write_bench_json

pytestmark = pytest.mark.perfsmoke

N_TENANTS = 16
ROWS_PER_TENANT = 250
SHARD_COUNTS = (1, 2, 4)
BURST = 150
POLL_EVERY = 25


def populate(shard_map, tenants):
    """Shared-schema rows for every tenant on its placed shard."""
    for shard in shard_map.all_shards():
        shard.primary.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, "
            "tenant TEXT, amount INTEGER)")
    rowid = 0
    for tenant in tenants:
        primary = shard_map.primary_for(tenant)
        for index in range(ROWS_PER_TENANT):
            primary.execute(
                "INSERT INTO events VALUES (?, ?, ?)",
                (rowid, tenant, index % 97))
            rowid += 1


def read_pass(shard_map, tenants):
    """One tenant-scoped aggregate scan per tenant."""
    for tenant in tenants:
        shard_map.primary_for(tenant).query(
            "SELECT COUNT(*) AS c FROM events WHERE tenant = ?",
            (tenant,))


def reads_per_second(shard_map, tenants, repeats=3):
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        read_pass(shard_map, tenants)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return len(tenants) / best


def test_bench_e17_sharding(tmp_path):
    tenants = [f"tenant-{index:03d}" for index in range(N_TENANTS)]
    cases = {}
    table = []

    throughput = {}
    for count in SHARD_COUNTS:
        shard_map = ShardMap(tmp_path / f"x{count}", shards=count,
                             replicas=0, fsync="off")
        populate(shard_map, tenants)
        rate = reads_per_second(shard_map, tenants)
        throughput[count] = rate
        cases[f"read_pass_shards_{count}"] = \
            (N_TENANTS / rate) * 1000.0
        table.append((f"{count} shard(s)", rate,
                      rate / throughput[SHARD_COUNTS[0]]))
        shard_map.close()

    speedup = throughput[4] / throughput[1]
    assert speedup >= 2.0, (
        f"aggregate read throughput at 4 shards is only "
        f"{speedup:.2f}x the 1-shard baseline")

    # Replica lag under a write-heavy tenant: burst without polling
    # (lag rises with the burst, never past it), then poll to
    # convergence.
    shard_map = ShardMap(tmp_path / "lag", shards=1, replicas=1,
                         fsync="off")
    shard = shard_map.shard_for("hot-tenant")
    shard.primary.execute(
        "CREATE TABLE hot (id INTEGER PRIMARY KEY, v INTEGER)")
    replica_id = shard.replicas[0].replica_id
    shard.poll_replicas()
    base_cn = shard.primary.committed_cn
    lag_curve = []
    for index in range(BURST):
        shard.primary.execute("INSERT INTO hot VALUES (?, ?)",
                              (index, index))
        writes = index + 1
        if writes % POLL_EVERY == 0:
            lag = shard.replica_lag()[replica_id]
            lag_curve.append((writes, lag))
            assert lag <= writes, "lag exceeded the writes issued"
    peak_lag = max(lag for _, lag in lag_curve)

    started = time.perf_counter()
    shard.poll_replicas()
    catchup_ms = (time.perf_counter() - started) * 1000.0
    final_lag = shard.replica_lag()[replica_id]
    assert final_lag == 0, "replica did not converge after polling"
    assert shard.primary.committed_cn == base_cn + BURST
    cases["replica_peak_lag_cn"] = float(peak_lag)
    cases["replica_catchup_ms"] = catchup_ms
    cases["replica_final_lag_cn"] = float(final_lag)
    shard_map.close()

    lines = [
        "Aggregate tenant-scoped read throughput vs shard count "
        f"({N_TENANTS} tenants x {ROWS_PER_TENANT} rows):",
        format_table(
            ("shards", "reads/s", "speedup"),
            table),
        "",
        f"Replica lag under a {BURST}-commit write burst "
        "(polled after the burst):",
        format_table(
            ("writes", "lag (commit numbers)"),
            [(writes, float(lag)) for writes, lag in lag_curve]),
        "",
        f"peak lag {peak_lag} commits (bounded by the burst); "
        f"converged to {final_lag} after one poll "
        f"({catchup_ms:,.1f} ms).",
    ]
    emit("E17_sharding", "\n".join(lines))
    write_bench_json("sharding", cases)
