"""E19 — adaptive overload control: goodput vs offered load.

Two measurements price the tentpole, both as discrete-event
simulations on the fake clock (deterministic: same seed, same curves):

* **offered-load sweep**: a backend of ``CAPACITY`` workers is driven
  at 0.5x/1x/2x/4x its capacity with a seeded QoS mix.  The adaptive
  stack (AIMD limiter + priority admission queue + brownout ladder)
  is compared against an uncontrolled ablation that starts every
  arrival immediately.  Service time degrades with concurrency beyond
  capacity — the contention model that makes uncontrolled overload
  collapse — so the sweep shows the contract: interactive goodput at
  4x stays within 80% of its 1x value with bounded p99, while the
  ablation's goodput collapses.
* **retry storm**: a 2-second hard outage under steady load, clients
  retrying failures with backoff.  With per-tenant retry budgets the
  post-outage attempt rate converges back to the offered rate almost
  immediately; without budgets the retry amplification keeps the
  backend saturated past the measurement horizon.

Regenerates ``E19_overload.txt`` and ``BENCH_overload.json``.
"""

import heapq
import random

import pytest

from repro.core.overload import (
    QOS_BATCH,
    QOS_INTERACTIVE,
    QOS_REPORTING,
    OverloadController,
    RetryBudget,
)
from repro.core.resilience import Deadline, FakeClock

from _util import emit, format_table, write_bench_json

pytestmark = pytest.mark.perfsmoke

CAPACITY = 4          # workers the backend can truly serve at once
SERVICE = 0.02        # seconds per request at or below capacity
DURATION = 5.0        # simulated seconds per scenario
MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
SEED = 1234

# (class, share of offered load, per-class deadline in seconds)
MIX = ((QOS_INTERACTIVE, 0.5, 0.5),
       (QOS_REPORTING, 0.3, 1.0),
       (QOS_BATCH, 0.2, 2.0))
DEADLINES = {qos: deadline for qos, _, deadline in MIX}

# Retry-storm parameters.
STORM_OFFERED = 50.0      # arrivals per second
STORM_OUTAGE = 2.0        # hard-down seconds at the start
STORM_HORIZON = 8.0       # total simulated seconds
STORM_BUCKET = 0.1        # service-capacity accounting granularity
STORM_CAPACITY = 5        # successful attempts per bucket (50/s):
#                           capacity == offered, so any retry overage
#                           is itself overload — the metastable regime
STORM_MAX_RETRIES = 3
STORM_BACKOFF = 0.1


def service_time(inflight):
    """Contention model: past capacity, everyone slows down."""
    return SERVICE * max(1.0, inflight / CAPACITY)


def seeded_arrivals(multiplier, seed):
    """Evenly spaced arrivals with a seeded QoS class per arrival."""
    rate = multiplier * CAPACITY / SERVICE
    count = int(rate * DURATION)
    rng = random.Random(seed)
    arrivals = []
    for index in range(count):
        roll, acc = rng.random(), 0.0
        qos = MIX[-1][0]
        for klass, share, _ in MIX:
            acc += share
            if roll < acc:
                qos = klass
                break
        arrivals.append((index * DURATION / count, qos))
    return arrivals


class ClassStats:
    def __init__(self):
        self.offered = 0
        self.fresh = 0        # completed within the class deadline
        self.degraded = 0     # served stale under brownout
        self.shed = 0         # refused/displaced/brownout-shed
        self.expired = 0      # aged out in the admission queue
        self.latencies = []   # arrival -> completion, fresh only

    def goodput(self):
        return self.fresh / DURATION

    def quantile(self, q):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]


def run_adaptive(multiplier, seed=SEED):
    """Offered load through the full overload stack."""
    clock = FakeClock()
    controller = OverloadController(
        clock=clock, queue_capacity=32, initial_limit=CAPACITY,
        min_limit=1, max_limit=4 * CAPACITY)
    stats = {qos: ClassStats() for qos, _, _ in MIX}
    completions = []  # heap of (finish, seq, arrived, started, qos)
    seq = 0
    inflight = 0

    def start(arrived, qos):
        nonlocal seq, inflight
        inflight += 1
        seq += 1
        finish = clock.now() + service_time(inflight)
        heapq.heappush(completions,
                       (finish, seq, arrived, clock.now(), qos))

    def finish_one():
        nonlocal inflight
        finish, _, arrived, started, qos = heapq.heappop(completions)
        clock.advance(max(0.0, finish - clock.now()))
        inflight -= 1
        controller.limiter.release()
        latency = finish - arrived
        ok = latency <= DEADLINES[qos]
        controller.note_result(finish - started, ok,
                               deadline_missed=not ok)
        if ok:
            stats[qos].fresh += 1
            stats[qos].latencies.append(latency)
        pump()

    def pump():
        for entry in controller.queue.take_expired():
            stats[entry.payload[1]].expired += 1
            controller.limiter.on_failure("deadline")
        while controller.limiter.try_acquire():
            entry = controller.queue.poll()
            if entry is None:
                controller.limiter.release()
                break
            start(*entry.payload)

    for when, qos in seeded_arrivals(multiplier, seed):
        while completions and completions[0][0] <= when:
            finish_one()
        clock.advance(max(0.0, when - clock.now()))
        stats[qos].offered += 1
        controller.observe()
        if controller.brownout.sheds(qos):
            stats[qos].shed += 1
        elif controller.brownout.degrades(qos):
            stats[qos].degraded += 1
        elif controller.limiter.try_acquire():
            start(when, qos)
        else:
            entry, displaced = controller.queue.offer(
                qos, deadline=Deadline(DEADLINES[qos], clock=clock),
                payload=(when, qos))
            if displaced is not None:
                stats[displaced.payload[1]].shed += 1
            if entry is None:
                stats[qos].shed += 1
    while completions:
        finish_one()
    pump()
    return stats, controller


def run_uncontrolled(multiplier, seed=SEED):
    """Ablation: no limiter, no queue, no brownout — every arrival
    starts immediately and contention does the rest."""
    clock = FakeClock()
    stats = {qos: ClassStats() for qos, _, _ in MIX}
    completions = []
    seq = 0
    inflight = 0

    def finish_one():
        nonlocal inflight
        finish, _, arrived, qos = heapq.heappop(completions)
        clock.advance(max(0.0, finish - clock.now()))
        inflight -= 1
        latency = finish - arrived
        if latency <= DEADLINES[qos]:
            stats[qos].fresh += 1
            stats[qos].latencies.append(latency)

    for when, qos in seeded_arrivals(multiplier, seed):
        while completions and completions[0][0] <= when:
            finish_one()
        clock.advance(max(0.0, when - clock.now()))
        stats[qos].offered += 1
        inflight += 1
        seq += 1
        heapq.heappush(completions,
                       (when + service_time(inflight), seq, when, qos))
    while completions:
        finish_one()
    return stats


def run_retry_storm(budgets_on, seed=SEED):
    """A hard outage under steady load, clients retrying failures.

    Returns (amplification during the outage, convergence time — the
    first post-outage moment the attempt rate holds at or below
    1.2x offered for half a second — or None within the horizon).
    """
    rng = random.Random(seed)
    budget = RetryBudget(capacity=10.0, refill_per_success=0.1) \
        if budgets_on else None
    events = []  # heap of (time, seq, attempt_number)
    seq = 0
    count = int(STORM_OFFERED * STORM_HORIZON)
    for index in range(count):
        seq += 1
        heapq.heappush(events,
                       (index * STORM_HORIZON / count, seq, 1))
    bucket_counts = {}
    attempts_in_outage = 0
    arrivals_in_outage = 0
    while events:
        when, _, attempt = heapq.heappop(events)
        if when >= STORM_HORIZON:
            continue
        bucket = int(when / STORM_BUCKET)
        bucket_counts[bucket] = bucket_counts.get(bucket, 0) + 1
        if when < STORM_OUTAGE:
            attempts_in_outage += 1
            if attempt == 1:
                arrivals_in_outage += 1
            failed = True
        else:
            # Recovered, but finite: overflow past the per-bucket
            # service capacity still fails — the coupling that lets
            # an unbudgeted storm sustain itself.
            failed = bucket_counts[bucket] > STORM_CAPACITY
        if failed:
            if attempt <= STORM_MAX_RETRIES and \
                    (budget is None or budget.try_spend()):
                backoff = STORM_BACKOFF * attempt \
                    * (1.0 + 0.5 * rng.random())
                seq += 1
                heapq.heappush(events,
                               (when + backoff, seq, attempt + 1))
        elif budget is not None and attempt == 1:
            budget.record_success()
    amplification = attempts_in_outage / max(1, arrivals_in_outage)
    calm = 1.2 * STORM_OFFERED * STORM_BUCKET
    needed = int(0.5 / STORM_BUCKET)
    run = 0
    for bucket in range(int(STORM_OUTAGE / STORM_BUCKET),
                        int(STORM_HORIZON / STORM_BUCKET)):
        run = run + 1 if bucket_counts.get(bucket, 0) <= calm else 0
        if run >= needed:
            return amplification, \
                (bucket + 1) * STORM_BUCKET - STORM_OUTAGE
    return amplification, None


def test_bench_e19_overload():
    cases = {}

    # -- offered-load sweep: adaptive vs uncontrolled ---------------
    sweep_rows = []
    adaptive = {}
    static = {}
    for multiplier in MULTIPLIERS:
        adaptive[multiplier], controller = run_adaptive(multiplier)
        static[multiplier] = run_uncontrolled(multiplier)
        for qos, _, _ in MIX:
            a = adaptive[multiplier][qos]
            s = static[multiplier][qos]
            sweep_rows.append((
                f"{multiplier:g}x", qos, a.offered,
                a.goodput(), a.quantile(0.5) * 1000.0,
                a.quantile(0.99) * 1000.0, a.degraded + a.shed
                + a.expired, s.goodput()))
            prefix = f"{multiplier:g}x_{qos}"
            cases[f"goodput_adaptive_{prefix}_rps"] = a.goodput()
            cases[f"goodput_uncontrolled_{prefix}_rps"] = s.goodput()
            cases[f"p99_adaptive_{prefix}_ms"] = \
                a.quantile(0.99) * 1000.0
        if multiplier == max(MULTIPLIERS):
            snap = controller.snapshot()
            assert snap["brownout"]["level"] >= 2, (
                "4x offered load never climbed the brownout ladder")

    # The contract: interactive goodput at 4x holds >= 80% of its 1x
    # value with bounded p99, while the ablation collapses.
    interactive_1x = adaptive[1.0][QOS_INTERACTIVE].goodput()
    interactive_4x = adaptive[4.0][QOS_INTERACTIVE].goodput()
    assert interactive_4x >= 0.8 * interactive_1x, (
        f"interactive goodput fell to {interactive_4x:.1f} rps at 4x "
        f"from {interactive_1x:.1f} rps at 1x")
    p99_4x = adaptive[4.0][QOS_INTERACTIVE].quantile(0.99)
    assert p99_4x <= DEADLINES[QOS_INTERACTIVE], (
        f"interactive p99 {p99_4x:.3f}s blew the deadline at 4x")
    static_1x = static[1.0][QOS_INTERACTIVE].goodput()
    static_4x = static[4.0][QOS_INTERACTIVE].goodput()
    assert static_4x < 0.5 * static_1x, (
        "the uncontrolled ablation failed to collapse at 4x — the "
        "contention model is not biting")
    cases["interactive_retention_4x_over_1x"] = \
        interactive_4x / interactive_1x
    cases["uncontrolled_retention_4x_over_1x"] = \
        static_4x / max(static_1x, 1e-9)

    # Determinism: the same seed reproduces the same curves.
    replay, _ = run_adaptive(4.0)
    assert replay[QOS_INTERACTIVE].fresh == \
        adaptive[4.0][QOS_INTERACTIVE].fresh
    assert replay[QOS_BATCH].shed == adaptive[4.0][QOS_BATCH].shed

    # -- retry storm: budgets on vs off ------------------------------
    amp_on, converge_on = run_retry_storm(budgets_on=True)
    amp_off, converge_off = run_retry_storm(budgets_on=False)
    assert converge_on is not None and converge_on <= 1.0, (
        f"budgeted retries did not converge promptly: {converge_on}")
    assert converge_off is None, (
        f"the unbudgeted storm converged at {converge_off}s — it "
        f"should stay metastable past the horizon")
    assert amp_off > 2.0 * amp_on, (
        f"budgets did not damp the storm: {amp_on:.2f} vs "
        f"{amp_off:.2f} attempts per arrival during the outage")
    cases["storm_amplification_budgets_on"] = amp_on
    cases["storm_amplification_budgets_off"] = amp_off
    cases["storm_converge_s_budgets_on"] = converge_on
    cases["storm_converge_s_budgets_off"] = \
        converge_off if converge_off is not None else -1.0

    lines = [
        f"Offered-load sweep ({CAPACITY} workers x {SERVICE * 1000:.0f}ms "
        f"service = {CAPACITY / SERVICE:.0f} rps capacity, "
        f"{DURATION:.0f}s per point, seed {SEED}):",
        format_table(
            ("load", "class", "offered", "goodput (rps)",
             "p50 (ms)", "p99 (ms)", "degr+shed", "uncontrolled"),
            sweep_rows),
        "",
        f"interactive retention at 4x: "
        f"{100.0 * interactive_4x / interactive_1x:.0f}% of its 1x "
        f"goodput (contract: >= 80%); uncontrolled ablation retains "
        f"{100.0 * static_4x / max(static_1x, 1e-9):.0f}%.",
        "",
        f"Retry storm ({STORM_OUTAGE:.0f}s outage at "
        f"{STORM_OFFERED:.0f} rps, <= {STORM_MAX_RETRIES} retries):",
        format_table(
            ("budgets", "amplification", "converged after (s)"),
            [("on", amp_on,
              f"{converge_on:.1f}"),
             ("off", amp_off,
              "never (within horizon)" if converge_off is None
              else f"{converge_off:.1f}")]),
    ]
    emit("E19_overload", "\n".join(lines))
    write_bench_json("overload", cases)
