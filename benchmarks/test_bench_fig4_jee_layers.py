"""E4 / Fig. 4 — the typical JEE application layering.

Regenerates the figure: one user interaction crosses UI → services →
domain model → data access → data, and each layer is observably
exercised (router dispatch, service call, ORM unit-of-work, SQL
statements).  The bench measures the full five-layer round trip and a
per-layer cost breakdown quantifies where time goes.
"""

import time

import pytest

from repro.engine import Database
from repro.orm import Entity, FieldSpec, Session, create_schema, entity
from repro.web import JsonResponse, WebApplication

from _util import emit, format_table


@entity(table="notes", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("title", "TEXT", nullable=False),
    FieldSpec("body", "TEXT"),
])
class Note(Entity):
    """The domain-model entity of the Fig. 4 walkthrough."""


class NoteService:
    """The services layer: transaction script over the ORM session."""

    def __init__(self, database):
        self.database = database

    def create_note(self, title, body):
        with Session(self.database) as session:
            return session.add(Note(title=title, body=body)).id

    def list_notes(self):
        with Session(self.database) as session:
            return [
                {"id": note.id, "title": note.title}
                for note in session.find(Note).order_by("id").list()
            ]


def build_app():
    database = Database("jee")
    create_schema(database, [Note])
    service = NoteService(database)
    app = WebApplication("jee-demo")
    app.post("/notes", lambda r: JsonResponse(
        {"id": service.create_note(r.body["title"],
                                   r.body.get("body"))}, status=201))
    app.get("/notes", lambda r: JsonResponse(service.list_notes()))
    return app, database


def test_bench_fig4_five_layer_round_trip(benchmark):
    app, database = build_app()

    def round_trip():
        app.request("POST", "/notes",
                    body={"title": "t", "body": "b"})
        return app.request("GET", "/notes")

    response = benchmark(round_trip)
    assert response.status == 200

    # Per-layer cost breakdown, each slice on its own fresh stack so
    # table growth does not bias later measurements.
    samples = {}

    app, database = build_app()
    statements_before = database.statistics["statements"]
    started = time.perf_counter()
    for _ in range(200):
        app.request("POST", "/notes", body={"title": "x"})
    samples["full stack (UI->data)"] = time.perf_counter() - started
    statements = database.statistics["statements"] - statements_before

    _app, database = build_app()
    service = NoteService(database)
    started = time.perf_counter()
    for _ in range(200):
        service.create_note("x", None)
    samples["services->data (no UI)"] = time.perf_counter() - started

    _app, database = build_app()
    started = time.perf_counter()
    for key in range(200):
        database.execute(
            "INSERT INTO notes (id, title) VALUES (?, ?)",
            (key + 1, "x"))
    samples["data layer only (SQL)"] = time.perf_counter() - started
    rows = [(layer, seconds * 1000.0)
            for layer, seconds in samples.items()]
    rows.append(("SQL statements executed", float(statements)))
    emit("E4_fig4_jee_layers", format_table(
        ("layer slice (200 creates)", "cost"), rows))

    # Layer ordering sanity: each deeper slice costs no more than the
    # slice above it (UI adds routing, services add ORM bookkeeping).
    assert samples["data layer only (SQL)"] <= \
        samples["full stack (UI->data)"]
