"""E8 — pay-as-you-go cost alignment and lower TCO (paper §2 claims).

Two artefacts:

1. a 36-month cumulative-cost comparison (on-premises licensing vs
   SaaS subscription) across usage profiles, with the crossover month;
2. the cost-vs-usage alignment check on the platform's own billing:
   within one plan, the invoice grows monotonically with metered usage.
"""

import pytest

from repro.core.subscription import BillingService
from repro.engine import Database
from repro.workloads import (
    OnPremisesCostModel,
    SaasCostModel,
    UsageProfile,
    cumulative_costs,
)
from repro.workloads.tco import crossover_month, tco_summary

from _util import emit, format_table

PROFILES = (
    ("small (10 users)", UsageProfile(10)),
    ("mid (50 users)", UsageProfile(50)),
    ("growing (50 +40%/yr)", UsageProfile(50, 0.4)),
    ("large (400 users)", UsageProfile(400)),
)


def test_bench_e8_tco_comparison(benchmark):
    profile = UsageProfile(50, 0.4)

    def run_tco():
        return tco_summary(profile, months=36)

    summary = benchmark(run_tco)
    assert summary["months"] == 36

    rows = []
    for label, usage_profile in PROFILES:
        result = tco_summary(usage_profile, months=36)
        rows.append((
            label,
            result["on_premises_total"],
            result["saas_total"],
            result["saas_savings"],
            "yes" if result["saas_cheaper"] else "no",
            str(result["crossover_month"]),
        ))
    emit("E8_tco_36_months", format_table(
        ("usage profile", "on-prem total", "SaaS total",
         "SaaS savings", "SaaS cheaper", "crossover mo."), rows))

    # Paper's claim: SaaS wins for the customer profiles it targets.
    for label, usage_profile in PROFILES:
        assert tco_summary(usage_profile, months=36)["saas_cheaper"]


def test_e8_cost_alignment_on_platform_billing():
    """Within a plan, the invoice is monotone in metered usage."""
    billing = BillingService(Database())
    usage_levels = (500, 2_000, 8_000, 32_000)
    rows = []
    previous_total = 0.0
    for level in usage_levels:
        tenant = f"tenant-{level}"
        billing.meter(tenant, "query", level)
        total = billing.invoice(tenant, "starter").total
        rows.append((level, total))
        assert total >= previous_total
        previous_total = total
    emit("E8_pay_as_you_go_alignment", format_table(
        ("queries metered", "starter-plan invoice"), rows))


def test_e8_on_prem_step_costs_vs_saas_smooth_costs():
    """Licence cliffs: on-prem cost jumps at server boundaries while
    SaaS grows smoothly — the 'not aligned with usage' argument."""
    on_prem = OnPremisesCostModel(users_per_server=50)
    saas = SaasCostModel()
    just_below = sum(on_prem.monthly_costs(UsageProfile(50), 12))
    just_above = sum(on_prem.monthly_costs(UsageProfile(51), 12))
    saas_below = sum(saas.monthly_costs(UsageProfile(50), 12))
    saas_above = sum(saas.monthly_costs(UsageProfile(51), 12))
    # One extra user doubles the on-prem licence base…
    assert just_above > just_below * 1.5
    # …but moves the SaaS bill by roughly one seat.
    assert saas_above - saas_below < saas_below * 0.05
