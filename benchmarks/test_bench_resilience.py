"""E14 — serving throughput under injected faults (resilience kernel).

The PR 4 tentpole claims the platform *degrades* instead of failing:
with storage/ESB/gateway fault injection at realistic rates, every
request still resolves to a typed outcome and the serving layer keeps
most of its throughput.  This experiment sweeps the injected fault
rate (0% / 10% / 30%) over the same gateway workload and measures:

* requests/s at each fault rate (retries and dead-lettering included);
* the cost of a degraded answer (open breaker, stale cache) versus a
  full backend round trip.

All platform clocks are fake and the bus retry policy uses zero base
delay, so the sweep measures work, not sleeps.  Timings land in
``benchmarks/out/BENCH_resilience.json``; the sweep table is the
E14 artefact.
"""

import time

import pytest

from repro.core import OdbisPlatform
from repro.core.resilience import FakeClock
from repro.web import JsonResponse

from _util import emit, format_table, write_bench_json

pytestmark = pytest.mark.perfsmoke

TENANTS = ("acme", "globex")
REQUESTS_PER_RATE = 120
FAULT_RATES = (0.0, 0.1, 0.3)
FAULT_SITES = ("esb.publish", "esb.deliver", "gateway.handle")


def build_platform():
    platform = OdbisPlatform(clock=FakeClock())
    platform.resources.bus.service_activator(
        "platform-events", lambda message: None)

    def touch(request):
        platform.resources.publish_event(request.tenant, "touch")
        return JsonResponse({"tenant": request.tenant, "ok": True})

    platform.web.get("/tenants/{tenant}/touch", touch)
    headers = {}
    for tenant in TENANTS:
        platform.provisioning.provision(tenant, tenant.title(),
                                        plan="team")
        response = platform.web.request(
            "POST", "/login",
            body={"username": f"admin@{tenant}",
                  "password": "changeme"})
        headers[tenant] = {"x-auth-token": response.json()["token"]}
    return platform, headers


def drive(platform, headers, requests):
    """Sequential gateway workload; returns status counts."""
    counts = {}
    for index in range(requests):
        tenant = TENANTS[index % len(TENANTS)]
        response = platform.gateway.submit(
            "GET", f"/tenants/{tenant}/touch",
            headers=headers[tenant]).result(30)
        counts[response.status] = counts.get(response.status, 0) + 1
    return counts


def test_bench_resilience_fault_rate_sweep():
    sweep_rows = []
    bench_cases = {}
    for rate in FAULT_RATES:
        platform, headers = build_platform()
        for offset, site in enumerate(FAULT_SITES):
            if rate > 0.0:
                platform.faults.inject(site, rate=rate,
                                       seed=100 + offset)
        started = time.perf_counter()
        counts = drive(platform, headers, REQUESTS_PER_RATE)
        wall_ms = (time.perf_counter() - started) * 1000.0
        platform.gateway.shutdown()

        # Every request resolved to a typed outcome — the acceptance
        # bar for "keeps serving" — and under chaos some succeeded.
        assert sum(counts.values()) == REQUESTS_PER_RATE
        assert set(counts) <= {200, 429, 500, 503, 504}
        assert counts.get(200, 0) > 0
        if rate == 0.0:
            assert counts == {200: REQUESTS_PER_RATE}

        throughput = REQUESTS_PER_RATE / (wall_ms / 1000.0)
        injected = len(platform.faults.history)
        dead = len(platform.resources.bus.dead_letters)
        sweep_rows.append((f"{int(rate * 100)}%", wall_ms,
                           throughput, counts.get(200, 0),
                           injected, dead))
        bench_cases[f"faults_{int(rate * 100)}pct_wall_ms"] = wall_ms
        bench_cases[f"faults_{int(rate * 100)}pct_req_per_s"] = \
            throughput

    # Degraded-mode overhead: trip acme's breaker, then compare the
    # stale-cache short-circuit against a normal backend round trip.
    platform, headers = build_platform()
    path = "/tenants/acme/touch"

    def one_request():
        return platform.gateway.submit(
            "GET", path, headers=headers["acme"]).result(30)

    assert one_request().status == 200  # primes the stale cache
    started = time.perf_counter()
    for _ in range(50):
        assert one_request().status == 200
    normal_ms = (time.perf_counter() - started) * 1000.0

    platform.faults.inject("gateway.handle", rate=1.0, seed=0)
    for _ in range(platform.gateway.breaker_threshold):
        one_request()
    assert platform.gateway.breaker("acme").state == "open"
    started = time.perf_counter()
    for _ in range(50):
        response = one_request()
        assert response.degraded and response.stale
    degraded_ms = (time.perf_counter() - started) * 1000.0
    platform.gateway.shutdown()

    bench_cases["normal_50req_wall_ms"] = normal_ms
    bench_cases["degraded_50req_wall_ms"] = degraded_ms
    # The short-circuit skips the worker pool and the backend; it must
    # never cost more than a real round trip (loose 1.5x bound so a
    # loaded machine cannot flake the build).
    assert degraded_ms < normal_ms * 1.5, (
        f"degraded {degraded_ms:.2f}ms vs normal {normal_ms:.2f}ms")

    emit("E14_resilience", format_table(
        ("fault rate", "wall ms", "req/s", "200s", "injected",
         "dead letters"),
        sweep_rows) + "\n" + format_table(
        ("case", "wall ms (50 req)"),
        [("normal backend round trip", normal_ms),
         ("degraded (stale cache, breaker open)", degraded_ms)]))
    write_bench_json("resilience", bench_cases)
