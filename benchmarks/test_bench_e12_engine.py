"""E12 — engine design-choice ablations (substrate validation).

The embedded engine is the substrate every ODBIS service stands on;
this experiment validates its two main physical design choices:

* hash join vs nested-loop join for star-schema equality joins,
* statement-cache on repeated parameterized statements.
"""

import time

import pytest

from repro.engine import Database

from _util import emit, format_table, write_bench_json


def build(fact_rows, compile=True):
    database = Database(compile=compile)
    database.execute(
        "CREATE TABLE dim (k INTEGER PRIMARY KEY, label TEXT)")
    database.executemany(
        "INSERT INTO dim VALUES (?, ?)",
        [(key, f"l{key % 10}") for key in range(1, 201)])
    database.execute("CREATE TABLE fact (k INTEGER, amount REAL)")
    database.executemany(
        "INSERT INTO fact VALUES (?, ?)",
        [(index % 200 + 1, float(index % 50))
         for index in range(fact_rows)])
    return database


def best(fn, repeats=3):
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings) * 1000.0


def test_bench_e12_hash_join(benchmark):
    database = build(4_000)

    def hash_join():
        return database.query(
            "SELECT d.label, SUM(f.amount) AS total FROM fact f "
            "JOIN dim d ON f.k = d.k GROUP BY d.label")

    rows = benchmark(hash_join)
    assert len(rows) == 10

    # Ablation: the same logical join as nested loop (CROSS + WHERE
    # does not match the executor's equi-join fast path).
    table = []
    for fact_rows in (500, 2_000, 8_000):
        database = build(fact_rows)
        hash_ms = best(lambda: database.query(
            "SELECT d.label, SUM(f.amount) AS total FROM fact f "
            "JOIN dim d ON f.k = d.k GROUP BY d.label"))
        nested_ms = best(lambda: database.query(
            "SELECT d.label, SUM(f.amount) AS total "
            "FROM fact f CROSS JOIN dim d WHERE f.k = d.k "
            "GROUP BY d.label"), repeats=1)
        table.append((fact_rows, hash_ms, nested_ms,
                      nested_ms / hash_ms))
    emit("E12_join_ablation", format_table(
        ("fact rows", "hash join ms", "nested loop ms", "speed-up"),
        table))

    # The hash join must win decisively at every size.  (Relative
    # speed-up between sizes is noisy on a shared machine, so only
    # the constant-factor claim is asserted.)
    speedups = [entry[3] for entry in table]
    assert all(speedup > 5 for speedup in speedups)


def test_e12_join_strategies_agree():
    database = build(1_000)
    hash_rows = database.query(
        "SELECT d.label, SUM(f.amount) AS total FROM fact f "
        "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label")
    nested_rows = database.query(
        "SELECT d.label, SUM(f.amount) AS total "
        "FROM fact f CROSS JOIN dim d WHERE f.k = d.k "
        "GROUP BY d.label ORDER BY d.label")
    assert hash_rows == nested_rows


def test_bench_e12_compiled_plans():
    """Plan compilation vs interpreted execution (the PR-2 tentpole).

    ``Database(compile=False)`` is the ablation knob: identical
    semantics, but every SELECT runs through the row-dict interpreter.
    The compiled path must win >= 3x on both the star join and the
    filtered scan, and the timings land in BENCH_engine.json for
    machine consumption.
    """
    star_sql = (
        "SELECT d.label, SUM(f.amount) AS total FROM fact f "
        "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label")
    filter_sql = (
        "SELECT k, amount FROM fact WHERE amount > 25.0 AND k < 150 "
        "ORDER BY amount")
    table = []
    cases = {}
    for fact_rows in (2_000, 8_000):
        compiled = build(fact_rows)
        interpreted = build(fact_rows, compile=False)
        for case, sql in (("star_join", star_sql),
                          ("filtered_scan", filter_sql)):
            assert compiled.query(sql) == interpreted.query(sql)
            compiled_ms = best(lambda: compiled.query(sql), repeats=5)
            interpreted_ms = best(
                lambda: interpreted.query(sql), repeats=5)
            speedup = interpreted_ms / compiled_ms
            table.append((f"{case} ({fact_rows} rows)",
                          compiled_ms, interpreted_ms, speedup))
            cases[f"{case}_{fact_rows}_compiled"] = compiled_ms
            cases[f"{case}_{fact_rows}_interpreted"] = interpreted_ms
    emit("E12_plan_compilation", format_table(
        ("case", "compiled ms", "interpreted ms", "speed-up"),
        table))
    write_bench_json("engine", cases)
    assert all(entry[3] > 3.0 for entry in table)


def test_e12_statement_cache():
    """Repeated parameterized statements skip re-parsing."""
    database = build(100)
    sql = "SELECT amount FROM fact WHERE k = ?"
    database.query(sql, (1,))
    cached_before = len(database._statement_cache)
    for key in range(50):
        database.query(sql, (key % 10 + 1,))
    assert len(database._statement_cache) == cached_before
    emit("E12_statement_cache", format_table(
        ("metric", "value"),
        [("distinct SQL texts parsed", float(cached_before)),
         ("executions served from cache", 50.0)]))
