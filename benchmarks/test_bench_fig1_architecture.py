"""E1 / Fig. 1 — the five-layer ODBIS SaaS architecture.

Regenerates the figure's observable behaviour: a business-user request
entering through the end-user access layer traverses administration
(auth), the core BI services and the technical resources; the DW
design & management layer is reached by designer requests.  The bench
measures the full request path through all layers.
"""

import pytest

from repro import OdbisPlatform
from repro.workloads import RetailWorkload

from _util import emit, format_table


@pytest.fixture(scope="module")
def platform():
    platform = OdbisPlatform()
    platform.provisioning.provision("acme", "Acme Corp", plan="team")
    workload = RetailWorkload()
    workload.build(platform.tenants.context("acme").warehouse_db,
                   fact_rows=1000)
    platform.analysis.define_cube("acme", workload.cube_definition())
    platform.metadata.create_dataset(
        "acme", "stores", "warehouse",
        "SELECT region, city FROM dim_store")
    platform.mddws.create_project("acme", "dw")
    login = platform.web.request(
        "POST", "/login",
        body={"username": "admin@acme", "password": "changeme"})
    platform._bench_headers = {"X-Auth-Token": login.json()["token"]}
    return platform


def test_bench_fig1_request_through_all_layers(platform, benchmark):
    headers = platform._bench_headers

    def full_request():
        return platform.web.request(
            "GET", "/tenants/acme/datasets/stores/rows",
            headers=headers)

    response = benchmark(full_request)
    assert response.status == 200

    # Regenerate the layer map: which request kind reaches which layer.
    probes = [
        ("GET /ping", "GET", "/ping", None),
        ("POST /login", "POST", "/login",
         {"username": "admin@acme", "password": "changeme"}),
        ("GET dataset rows", "GET",
         "/tenants/acme/datasets/stores/rows", None),
        ("POST mdx query", "POST", "/tenants/acme/mdx",
         {"statement": "SELECT {[Measures].[revenue]} ON COLUMNS "
                       "FROM [RetailSales]"}),
        ("GET project status", "GET", "/tenants/acme/project", None),
    ]
    rows = []
    for label, method, path, body in probes:
        platform.web.request(method, path, body=body, headers=headers)
        rows.append((label, " -> ".join(platform.last_trace)))
    emit("E1_fig1_architecture", format_table(
        ("request", "layers traversed (Fig. 1)"), rows))

    # Every Fig. 1 layer is exercised by at least one request kind.
    traversed = set()
    for _label, trace in rows:
        traversed.update(trace.split(" -> "))
    assert {"end-user-access", "administration", "core-bi-services",
            "technical-resources", "design-management"} <= traversed
