"""E7 — multi-tenancy economies of scale (paper §2 claim).

"One database is used to store all customers' data, so this makes the
overall system scalable at a far lower cost."  We provision fleets of
N tenants under both isolation modes and compare the resource
footprint (distinct operational databases, table count) and the
provisioning cost; the shared-schema mode should scale its footprint
sub-linearly while the isolated mode is strictly linear.
"""

import time

import pytest

from repro import OdbisPlatform, TenancyMode

from _util import emit, format_table

FLEET_SIZES = (1, 4, 16, 48)


def provision_fleet(mode, count):
    platform = OdbisPlatform(mode=mode)
    started = time.perf_counter()
    for index in range(count):
        platform.provisioning.provision(
            f"t{index:03d}", f"Tenant {index}")
    elapsed = time.perf_counter() - started
    # Total catalog footprint: the platform database plus every
    # distinct operational database (same object counted once).
    databases = {id(platform.tenants.platform_db):
                 platform.tenants.platform_db}
    for tenant in platform.tenants.tenant_ids():
        operational = platform.tenants.context(tenant).operational_db
        databases[id(operational)] = operational
    total_tables = sum(len(db.table_names())
                       for db in databases.values())
    return platform, elapsed, total_tables


def test_bench_e7_shared_vs_isolated(benchmark):
    # Benchmark: provisioning one tenant into an existing shared fleet.
    platform = OdbisPlatform(mode=TenancyMode.SHARED)
    for index in range(8):
        platform.provisioning.provision(f"seed{index}", "Seed")
    counter = {"n": 0}

    def provision_one():
        counter["n"] += 1
        platform.provisioning.provision(
            f"extra{counter['n']}", "Extra")

    benchmark.pedantic(provision_one, rounds=20, iterations=1)

    # The scaling table.
    rows = []
    for count in FLEET_SIZES:
        shared, shared_time, shared_tables = provision_fleet(
            TenancyMode.SHARED, count)
        isolated, isolated_time, isolated_tables = provision_fleet(
            TenancyMode.ISOLATED, count)
        rows.append((
            count,
            shared.tenants.database_count(),
            isolated.tenants.database_count(),
            shared_tables,
            isolated_tables,
            shared_time * 1000.0,
            isolated_time * 1000.0,
        ))
    emit("E7_multitenancy", format_table(
        ("tenants", "shared dbs", "isolated dbs",
         "shared tables", "isolated tables",
         "shared ms", "isolated ms"), rows))

    # Shape assertions: shared stays at 1 database; isolated is linear.
    for count, shared_dbs, isolated_dbs, shared_tables, \
            isolated_tables, _s, _i in rows:
        assert shared_dbs == 1
        assert isolated_dbs == count
        if count > 1:
            # Operational tables: shared-schema amortizes the catalog;
            # isolated duplicates it per tenant.
            assert shared_tables < isolated_tables


def test_e7_shared_schema_keeps_tenants_logically_separate():
    """The multi-tenant wall: shared physical store, private data."""
    platform = OdbisPlatform(mode=TenancyMode.SHARED)
    platform.provisioning.provision("a", "A")
    platform.provisioning.provision("b", "B")
    platform.metadata.create_dataset(
        "a", "private", "warehouse", "SELECT 1 AS one")
    names_a = [d["name"] for d in platform.metadata.datasets("a")]
    names_b = [d["name"] for d in platform.metadata.datasets("b")]
    assert "private" in names_a
    assert "private" not in names_b
