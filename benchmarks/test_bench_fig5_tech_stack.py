"""E5 / Fig. 5 — the ODBIS technical architecture stack.

Regenerates the figure: every element of the stack (web container,
presentation, Spring-style wiring, Drools-style rules, JMI/CWM domain
model, JPA-style persistence, PostgreSQL-style database) is exercised
from one scenario, and the artefact records what each element did.
The bench measures the rules-engine decision step — the stack element
unique to this figure.
"""

import pytest

from repro.cwm import RelationalBuilder, cwm_metamodel
from repro.engine import Database
from repro.mof import ModelExtent, write_xmi
from repro.orm import Entity, FieldSpec, Session, create_schema, entity
from repro.rules import Fact, RuleEngine, parse_rules
from repro.web import JsonResponse, WebApplication

from _util import emit, format_table


@entity(table="subscriptions", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("tenant", "TEXT", nullable=False),
    FieldSpec("plan", "TEXT", nullable=False),
])
class Subscription(Entity):
    pass


RULES = '''
rule "upgrade-heavy-tenant" salience 10
when
    usage: Usage(amount > 10000 and usage.flagged != True)
then
    modify(usage, flagged=True)
    insert(PlanChange(tenant=usage.tenant, to_plan="enterprise"))
end
'''


def test_bench_fig5_stack_elements(benchmark):
    # Drools-substitute: benchmark the decision step.
    rules = parse_rules(RULES)

    def decide():
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("Usage", tenant="acme",
                                  amount=50_000))
        engine.run()
        return engine.memory.by_type("PlanChange")

    changes = benchmark(decide)
    assert changes[0]["to_plan"] == "enterprise"

    # Exercise every stack element once, recording what it did.
    observations = []

    # PostgreSQL substitute: the embedded engine.
    database = Database("stack")
    create_schema(database, [Subscription])
    observations.append(
        ("PostgreSQL (repro.engine)",
         f"database 'stack' with tables {database.table_names()}"))

    # JPA/Hibernate substitute: the ORM session.
    with Session(database) as session:
        session.add(Subscription(tenant="acme", plan="team"))
    count = database.query_value("SELECT COUNT(*) FROM subscriptions")
    observations.append(
        ("JPA+Hibernate (repro.orm)",
         f"unit-of-work flushed {count} entity row(s)"))

    # JMI/MDR + CWM substitute: the reflective domain model.
    extent = ModelExtent(cwm_metamodel(), "stack-extent")
    relational = RelationalBuilder(extent)
    schema = relational.schema("dw")
    table = relational.table(schema, "fact_usage")
    relational.column(table, "amount", "REAL")
    xmi = write_xmi(extent)
    observations.append(
        ("JMI/MDR + CWM (repro.mof/cwm)",
         f"{len(extent)} model elements, XMI doc of {len(xmi)} chars"))

    # Drools substitute: result of the benchmark body above.
    observations.append(
        ("Drools (repro.rules)",
         f"rule fired, plan change -> {changes[0]['to_plan']}"))

    # JSF + Tomcat substitute: the web layer.
    app = WebApplication("stack")
    app.get("/plans/{tenant}", lambda r: JsonResponse(
        {"tenant": r.path_params["tenant"], "plan": "enterprise"}))
    response = app.request("GET", "/plans/acme")
    observations.append(
        ("JSF+Tomcat (repro.web)",
         f"GET /plans/acme -> {response.status} {response.json()}"))

    emit("E5_fig5_tech_stack", format_table(
        ("stack element (paper Fig. 5)", "observed behaviour"),
        observations))
    assert len(observations) == 5
