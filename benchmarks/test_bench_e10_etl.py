"""E10 — integration-service throughput and scheduler fairness.

ETL throughput vs row count and operator-chain depth, plus the
round-robin fairness of the multi-tenant scheduler (no tenant starves
when many jobs come due together).
"""

import time

import pytest

from repro.engine import Database
from repro.etl import (
    Derive,
    EtlJob,
    Filter,
    JobRunner,
    Load,
    RowsSource,
    Schedule,
    Scheduler,
    TypeCast,
)

from _util import emit, format_table

ROW_COUNTS = (1_000, 4_000, 16_000)
CHAIN_DEPTHS = (0, 2, 4, 8)


def make_rows(count):
    return [{"id": index, "amount": float(index % 100), "flag": "yes"}
            for index in range(count)]


def make_job(rows, depth, database, with_load=True):
    operators = []
    for level in range(depth):
        if level == 0:
            operators.append(TypeCast({"amount": "float"}))
        elif level % 2 == 1:
            operators.append(Derive(
                f"d{level}", lambda row: row["id"] * 2))
        else:
            operators.append(Filter(lambda row: row["id"] >= 0))
    load = Load(database, "target", mode="replace") if with_load \
        else None
    return EtlJob("bench", RowsSource(rows), operators, load)


def fresh_db():
    database = Database()
    database.execute(
        "CREATE TABLE target (id INTEGER, amount REAL, flag TEXT)")
    return database


def test_bench_e10_etl_throughput(benchmark):
    rows = make_rows(4_000)
    database = fresh_db()
    job = make_job(rows, 2, database)
    runner = JobRunner(error_policy="skip")

    result = benchmark.pedantic(
        lambda: runner.run(job), rounds=5, iterations=1)
    assert result.rows_written == 4_000

    # Throughput vs rows and operator depth.  Depth effects are
    # measured on probe jobs (no load step) so the operator chain is
    # the dominant cost; the final column adds the SQL load back in.
    def best_throughput(job, rows_expected, repeats=3):
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = JobRunner(error_policy="skip").run(job)
            elapsed = time.perf_counter() - started
            assert result.rows_written == rows_expected
            best = elapsed if best is None else min(best, elapsed)
        return rows_expected / best

    table_rows = []
    for count in ROW_COUNTS:
        rows = make_rows(count)
        entries = [count]
        for depth in CHAIN_DEPTHS:
            probe = make_job(rows, depth, fresh_db(), with_load=False)
            entries.append(best_throughput(probe, count))
        loaded = make_job(rows, 2, fresh_db())
        entries.append(best_throughput(loaded, count, repeats=1))
        table_rows.append(tuple(entries))
    emit("E10_etl_throughput", format_table(
        ("rows", "rows/s d0", "rows/s d2", "rows/s d4",
         "rows/s d8", "rows/s d2+load"), table_rows))

    # Shape: deeper chains cost throughput (depth 8 < depth 0), and
    # the physical load dominates a shallow chain.
    for entry in table_rows:
        assert entry[4] < entry[1]
        assert entry[5] < entry[2]


def test_e10_scheduler_fairness_across_tenants():
    """With equal schedules, runs divide evenly across tenants and
    the first-served tenant rotates (round robin)."""
    scheduler = Scheduler(JobRunner(error_policy="skip"))
    tenants = [f"tenant-{index}" for index in range(6)]
    for tenant in tenants:
        scheduler.add(
            EtlJob(f"{tenant}:job", RowsSource([{"x": 1}])),
            Schedule(every_minutes=15), owner=tenant)
    scheduler.advance(15 * 20)  # 20 ticks

    counts = scheduler.runs_by_owner()
    assert set(counts.values()) == {20}

    first_served = {}
    for record in scheduler.log:
        first_served.setdefault(record.minute, record.owner)
    distinct_leaders = set(first_served.values())
    emit("E10_scheduler_fairness", format_table(
        ("tenant", "runs"),
        sorted(counts.items())) +
        f"\n\ndistinct first-served tenants over 20 ticks: "
        f"{len(distinct_leaders)}")
    # Rotation: more than one tenant gets to go first.
    assert len(distinct_leaders) > 1


def test_e10_skip_policy_throughput_with_dirty_data():
    """Throughput holds when a fraction of rows is rejected."""
    rows = make_rows(5_000)
    for index in range(0, 5_000, 10):
        rows[index]["amount"] = "not-a-number"
    database = fresh_db()
    job = make_job(rows, 2, database)
    result = JobRunner(error_policy="skip").run(job)
    assert result.rows_rejected == 500
    assert result.rows_written == 4_500
