"""E6 / Fig. 6 — the healthcare dashboard built with ad-hoc reporting.

Regenerates the figure: a dashboard of charts and a data table over
hospital admissions, assembled through the reporting service's ad-hoc
module and rendered through the information delivery service.  The
bench measures the dashboard build (datasets → charts → layout).
"""

import pytest

from repro import OdbisPlatform
from repro.core import Channel
from repro.reporting import Dashboard, render_dashboard_text
from repro.workloads import HealthcareWorkload

from _util import emit


@pytest.fixture(scope="module")
def platform():
    platform = OdbisPlatform()
    context = platform.provisioning.provision(
        "st-vincent", "St. Vincent Hospital", plan="team")
    HealthcareWorkload(seed=7).load(context.warehouse_db, count=2000)
    platform.metadata.create_dataset(
        "st-vincent", "by-department", "warehouse",
        "SELECT department, COUNT(*) AS admissions, "
        "SUM(cost) AS total_cost, AVG(length_of_stay) AS avg_stay "
        "FROM admissions GROUP BY department ORDER BY department")
    platform.metadata.create_dataset(
        "st-vincent", "by-severity", "warehouse",
        "SELECT severity, COUNT(*) AS admissions FROM admissions "
        "GROUP BY severity")
    return platform


def build_dashboard(platform):
    by_department = platform.reporting.adhoc_builder(
        "st-vincent", "by-department")
    by_severity = platform.reporting.adhoc_builder(
        "st-vincent", "by-severity")
    dashboard = Dashboard("healthcare-overview",
                          "Admissions and costs by department")
    dashboard.add_row(
        by_department.bar_chart("admissions-by-department",
                                "department", "admissions"),
        by_severity.pie_chart("admissions-by-severity",
                              "severity", "admissions"))
    dashboard.add_row(
        by_department.data_table(
            "department-detail",
            ["department", "admissions", "total_cost", "avg_stay"],
            sort_by="total_cost", descending=True))
    return dashboard


def test_bench_fig6_dashboard_build(platform, benchmark):
    dashboard = benchmark(build_dashboard, platform)
    assert len(dashboard) == 3

    # Regenerate the dashboard artefact itself (text rendering) and
    # prove the delivery channels work on it.
    text = render_dashboard_text(dashboard)
    html = platform.delivery.deliver_dashboard(dashboard, Channel.WEB)
    mobile = platform.delivery.deliver_dashboard(
        dashboard, Channel.MOBILE)
    emit("E6_fig6_healthcare_dashboard",
         text + "\n\n--- mobile channel ---\n" + mobile
         + f"\n\n--- web channel: {len(html)} chars of HTML ---")

    # The dashboard reflects the workload's built-in structure:
    # emergency is the busiest department by construction.
    chart = dashboard.element("admissions-by-department")
    busiest = max(chart.series, key=lambda pair: pair[1])[0]
    assert busiest == "emergency"
    # Severity distribution is dominated by 'low' cases.
    severity = dashboard.element("admissions-by-severity")
    assert max(severity.series, key=lambda pair: pair[1])[0] == "low"
