"""E2 / Fig. 2 — the MDDWS environment's three layers.

Regenerates the figure: one design request flows through the
*methodology* layer (2TUP project management), the *design* layer
(the MDA model chain) and the *deployment* layer (DDL executed on the
shared technical resources).  The bench measures a full design run.
"""

import pytest

from repro import OdbisPlatform
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
)

from _util import emit, format_table


def retail_cim():
    return CimModel("retail", [
        BusinessRequirement(
            subject="Sales",
            measures=[MeasureSpec("revenue"), MeasureSpec("quantity")],
            dimensions=[
                DimensionSpec("Time", ["year", "quarter", "month"],
                              is_time=True),
                DimensionSpec("Product", ["category", "sku"]),
                DimensionSpec("Store", ["region", "city"]),
            ]),
    ])


def fresh_tenant(tag):
    platform = OdbisPlatform()
    platform.provisioning.provision(tag, tag.title())
    platform.mddws.create_project(tag, f"{tag}-dw")
    return platform


def test_bench_fig2_mddws_design_run(benchmark):
    counter = {"n": 0}

    def design_once():
        counter["n"] += 1
        platform = fresh_tenant(f"t{counter['n']}")
        return platform, platform.mddws.design_warehouse(
            f"t{counter['n']}", retail_cim())

    platform, summary = benchmark(design_once)

    # Regenerate the three-layer view of Fig. 2.
    iteration = platform.mddws.project(
        f"t{counter['n']}").process.iterations[0]
    methodology = (f"2TUP iteration #{iteration.number}: "
                   f"{len(iteration.completed)}/11 disciplines")
    design = (f"PIM: {len(summary['pim'].cubes())} cube(s), "
              f"{len(summary['pim'].dimensions())} dimension(s); "
              f"PSM: {len(summary['psm'].tables())} table(s); "
              f"traces: {len(summary['psm_traces'])}")
    deployment = (f"deployed tables: "
                  f"{', '.join(summary['deployed']['tables'])}; "
                  f"cubes: {', '.join(summary['deployed']['cubes'])}")
    emit("E2_fig2_mddws_layers", format_table(
        ("MDDWS layer", "observed behaviour"),
        [("methodology", methodology),
         ("design", design),
         ("deployment", deployment)]))

    assert iteration.is_complete
    assert len(summary["psm"].tables()) == 4
    assert summary["deployed"]["cubes"] == ["Sales"]
