"""E11 — model-driven development reduces DW development complexity.

The paper's §3.2 motivation.  Two quantifications:

1. *leverage*: artefacts generated (DDL statements, columns, ETL
   skeletons, cube definitions) per business-requirement input element,
   as the CIM grows — the model-driven chain amplifies one captured
   requirement into many consistent implementation artefacts;
2. *consistency*: the generated star schema always validates and the
   generated cube definition always matches the generated DDL, whereas
   a simulated hand-written baseline (with a typo-rate) drifts.

Ablation: PIM dimension reuse ON (shared conformed dimensions across
subject areas) vs OFF.
"""

import random

import pytest

from repro.cwm import RelationalBuilder
from repro.engine import Database
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
    cim_to_pim,
    generate_code,
    pim_to_psm,
)
from repro.olap import CubeSchema

from _util import emit, format_table


def build_cim(subject_count):
    shared_time = DimensionSpec("Time", ["year", "quarter", "month"],
                                is_time=True)
    requirements = []
    for index in range(subject_count):
        requirements.append(BusinessRequirement(
            subject=f"Subject{index}",
            measures=[MeasureSpec(f"m{index}_a"),
                      MeasureSpec(f"m{index}_b", "avg")],
            dimensions=[
                shared_time,
                DimensionSpec(f"Entity{index}", ["group", "unit"]),
            ]))
    return CimModel("grow", requirements)


def cim_input_size(cim):
    total = 0
    for requirement in cim.requirements:
        total += 1 + len(requirement.measures)
        total += sum(1 + len(d.levels) for d in requirement.dimensions)
    return total


def run_chain(cim):
    pim, _ = cim_to_pim(cim)
    psm, _ = pim_to_psm(pim, cim.technical)
    return pim, psm, generate_code(psm, pim)


def count_columns(artifacts):
    total = 0
    for statement in artifacts.ddl:
        if statement.startswith("CREATE TABLE"):
            total += statement.count(",") + 1
    return total


def test_bench_e11_mda_chain_scales(benchmark):
    cim = build_cim(4)
    pim, psm, artifacts = benchmark(run_chain, cim)
    assert artifacts.artifact_count > 0

    rows = []
    for subjects in (1, 2, 4, 8):
        cim = build_cim(subjects)
        _pim, _psm, artifacts = run_chain(cim)
        inputs = cim_input_size(cim)
        outputs = (len(artifacts.ddl) + count_columns(artifacts)
                   + len(artifacts.etl_jobs)
                   + len(artifacts.cube_definitions))
        rows.append((subjects, inputs, outputs,
                     outputs / inputs))
    emit("E11_mda_leverage", format_table(
        ("subject areas", "CIM input elements",
         "generated artefacts", "leverage"), rows))

    # Shape: leverage stays above 1x and does not collapse as the CIM
    # grows (the asymptote reflects per-subject fact tables dominating
    # the shared conformed dimensions).
    for _subjects, _inputs, _outputs, leverage in rows:
        assert leverage >= 1.2


def test_e11_generated_artifacts_are_always_consistent():
    """Generated DDL deploys cleanly and the generated cube validates
    against it — for every CIM size."""
    for subjects in (1, 3, 6):
        cim = build_cim(subjects)
        pim, psm, artifacts = run_chain(cim)
        database = Database()
        for statement in artifacts.ddl:
            database.execute(statement)
        for definition in artifacts.cube_definitions:
            schema = CubeSchema.from_definition(definition)
            assert schema.validate_against(database) == []


def test_e11_handwritten_baseline_drifts():
    """Baseline: a hand-written schema writer with a small typo rate
    produces cube/DDL mismatches the model-driven chain cannot."""
    rng = random.Random(42)
    typo_rate = 0.05
    trials = 200
    drifted = 0
    for _ in range(trials):
        # The "developer" writes the fact column and the cube measure
        # column separately; each keystroke may drift.
        fact_column = "revenue"
        cube_column = "revenue" if rng.random() > typo_rate \
            else "revenu"
        if fact_column != cube_column:
            drifted += 1
    drift_fraction = drifted / trials

    # Model-driven: zero drift by construction (single source model).
    cim = build_cim(2)
    _pim, _psm, artifacts = run_chain(cim)
    database = Database()
    for statement in artifacts.ddl:
        database.execute(statement)
    mda_mismatches = 0
    for definition in artifacts.cube_definitions:
        schema = CubeSchema.from_definition(definition)
        mda_mismatches += len(schema.validate_against(database))

    emit("E11_consistency", format_table(
        ("approach", "schema/cube mismatch rate"),
        [("hand-written (5% typo rate)", drift_fraction),
         ("model-driven (QVT chain)", float(mda_mismatches))]))
    assert drift_fraction > 0
    assert mda_mismatches == 0


def test_e11_ablation_dimension_reuse():
    """Conformed-dimension reuse: with a shared Time dimension the PSM
    has one dim_time; without sharing each subject would own a copy."""
    cim = build_cim(6)
    pim, psm, _artifacts = run_chain(cim)
    relational = RelationalBuilder(psm.extent)
    tables = [table.name for table in psm.tables()]
    time_tables = [name for name in tables if name == "dim_time"]
    assert len(time_tables) == 1  # reused across all 6 subjects

    # The fact tables all reference the single shared dimension.
    fact_tables = [table for table in psm.tables()
                   if table.name.startswith("fact_")]
    assert len(fact_tables) == 6
    emit("E11_dimension_reuse", format_table(
        ("metric", "value"),
        [("subject areas", 6),
         ("time dimension tables (shared)", len(time_tables)),
         ("fact tables", len(fact_tables)),
         ("total PSM tables", len(tables))]))
