"""E15 — durability overhead and recovery time (the PR-5 tentpole).

The write-ahead log buys crash consistency; this experiment prices
it.  The E12 micro workload (autocommit single-row inserts) runs
against the same engine with no WAL, then with each fsync policy, and
the amortized ``batch`` policy must stay within 3x of the no-WAL
engine — the bound that makes durable-by-default tenancy viable.
Recovery is timed against growing logs so the checkpoint story
("snapshot + short tail") stays honest.
"""

import shutil
import time

import pytest

from repro.engine.database import Database

from _util import emit, format_table, write_bench_json

pytestmark = pytest.mark.perfsmoke

N_ROWS = 3_000


def best(fn, repeats=3):
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings) * 1000.0


def insert_workload(db, rows=N_ROWS):
    db.execute("CREATE TABLE micro (id INTEGER PRIMARY KEY, "
               "v INTEGER)")
    for i in range(rows):
        db.execute("INSERT INTO micro (id, v) VALUES (?, ?)",
                   (i, i % 97))


def timed_variant(tmp_path, label, fsync):
    """Best-of-3 wall time of the insert workload for one variant."""
    def run():
        directory = tmp_path / label
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir()
        if fsync is None:
            db = Database("micro")
        else:
            db = Database.recover(directory, "micro", fsync=fsync)
        insert_workload(db)
        db.close()
    return best(run)


def test_bench_e15_commit_overhead(tmp_path):
    cases = {}
    table = []
    baseline = timed_variant(tmp_path, "nowal", None)
    cases["insert_no_wal"] = baseline
    table.append(("no WAL", baseline, 1.0))
    for fsync in ("off", "batch", "always"):
        elapsed = timed_variant(tmp_path, fsync, fsync)
        cases[f"insert_fsync_{fsync}"] = elapsed
        table.append((f"fsync={fsync}", elapsed, elapsed / baseline))

    # Recovery time as the log grows (no snapshot: worst case).
    for transactions in (500, 2_000):
        directory = tmp_path / f"recover{transactions}"
        directory.mkdir()
        db = Database.recover(directory, "micro", fsync="off")
        insert_workload(db, rows=transactions)
        db.close()

        recovered = {}

        def recover():
            again = Database.recover(directory, "micro", fsync="off")
            recovered["info"] = again.recovery_info
            again.close()

        elapsed = best(recover)
        assert recovered["info"]["transactions_replayed"] \
            == transactions + 1  # the CREATE TABLE plus each insert
        cases[f"recover_{transactions}_txns"] = elapsed
        table.append((f"recover {transactions} txns", elapsed,
                      elapsed / baseline))

    # And the checkpoint payoff: the same log after a checkpoint
    # recovers from the snapshot with nothing to replay.
    directory = tmp_path / "recover2000"
    db = Database.recover(directory, "micro", fsync="off")
    db.checkpoint()
    db.close()

    def recover_snapshot():
        again = Database.recover(directory, "micro", fsync="off")
        assert again.recovery_info["transactions_replayed"] == 0
        again.close()

    elapsed = best(recover_snapshot)
    cases["recover_after_checkpoint"] = elapsed
    table.append(("recover after checkpoint", elapsed,
                  elapsed / baseline))

    emit("E15_durability", format_table(
        ("case", "best-of-3 ms", "vs no-WAL"), table))
    write_bench_json("durability", cases)

    # The acceptance bound: amortized batch fsync within 3x of the
    # bare engine on the micro workload.
    assert cases["insert_fsync_batch"] <= 3.0 * baseline, \
        f"batch policy {cases['insert_fsync_batch']:.1f}ms vs " \
        f"no-WAL {baseline:.1f}ms exceeds the 3x E15 bound"
    # Sanity ordering: "off" cannot beat the bare engine by more
    # than noise, and "always" is the most expensive policy.
    assert cases["insert_fsync_always"] >= cases["insert_fsync_off"]


def test_e15_policies_agree_on_state(tmp_path):
    """The fsync knob changes the durability window, not the data."""
    fingerprints = {}
    for fsync in ("off", "batch", "always"):
        directory = tmp_path / fsync
        directory.mkdir()
        db = Database.recover(directory, "micro", fsync=fsync)
        insert_workload(db, rows=200)
        live = db.state_fingerprint()
        db.close()
        recovered = Database.recover(directory, "micro", fsync=fsync)
        assert recovered.state_fingerprint() == live
        fingerprints[fsync] = live
        recovered.close()
    assert len(set(fingerprints.values())) == 1
