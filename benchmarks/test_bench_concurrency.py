"""E13 — concurrent multi-tenant serving (the serving-layer tentpole).

The paper's §2 economics assume one shared backend serving many
tenants *at once*.  This experiment measures the serving layer under
an 8-worker pool:

* ISOLATED-mode parallel reads — 8 private databases, reads overlap
  on each engine's shared lock side;
* SHARED-mode concurrent writes — 8 tenants funneled through one
  operational database, serialized by its exclusive lock side.

Each case also runs with the runtime concurrency sanitizer attached
(``repro.analysis.concurrency``), so ``BENCH_concurrency.json``
records what ``REPRO_SANITIZE=1`` costs — the overhead ratio is the
number to watch before turning the sanitizer on in a long battery.

Timings land in ``benchmarks/out/BENCH_concurrency.json``.  Pure
Python threads share the GIL, so parallel wall time is *not* expected
to beat serial on CPU-bound queries — the assertions pin correctness
under contention and bound the locking overhead, while the recorded
throughput numbers give CI a trend line.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.concurrency import reset_default_sanitizer
from repro.engine import Database

from _util import emit, format_table, write_bench_json

N_TENANTS = 8
ROWS = 1_500
QUERIES_PER_TENANT = 150
READER_PROBES = 200


def tenant_database(tenant_no, sanitize=False):
    database = Database(f"op-t{tenant_no}", sanitize=sanitize)
    database.execute(
        "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    database.executemany(
        "INSERT INTO kv VALUES (?, ?)",
        [(key, key * 3) for key in range(1, ROWS + 1)])
    return database


def read_workload(database):
    total = 0
    for i in range(QUERIES_PER_TENANT):
        key = (i * 37) % ROWS + 1
        total += database.query_value(
            "SELECT v FROM kv WHERE k = ?", (key,))
    return total


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - started) * 1000.0


def serving_layer_timings(sanitize):
    """(serial_ms, parallel_ms, shared_write_ms) for one mode."""
    databases = [tenant_database(n, sanitize=sanitize)
                 for n in range(N_TENANTS)]
    expected = read_workload(databases[0])

    # ISOLATED mode, serial baseline: one tenant after another.
    serial_totals, serial_ms = timed(
        lambda: [read_workload(database) for database in databases])

    # ISOLATED mode, parallel: 8 workers, one per private database.
    with ThreadPoolExecutor(max_workers=N_TENANTS) as pool:
        parallel_totals, parallel_ms = timed(
            lambda: list(pool.map(read_workload, databases)))

    assert serial_totals == [expected] * N_TENANTS
    assert parallel_totals == [expected] * N_TENANTS

    # SHARED mode, concurrent writes: every tenant inserts into one
    # operational database; the exclusive lock serializes them.
    shared = Database("platform", sanitize=sanitize)
    shared.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, tenant TEXT)")

    def write_workload(tenant_no):
        for i in range(QUERIES_PER_TENANT):
            shared.execute(
                "INSERT INTO orders VALUES (?, ?)",
                (tenant_no * 10_000 + i, f"t{tenant_no}"))

    with ThreadPoolExecutor(max_workers=N_TENANTS) as pool:
        _, shared_write_ms = timed(lambda: list(
            pool.map(write_workload, range(N_TENANTS))))
    assert shared.query_value("SELECT COUNT(*) FROM orders") == \
        N_TENANTS * QUERIES_PER_TENANT
    return serial_ms, parallel_ms, shared_write_ms


def read_probe_latencies(database):
    """Per-query wall latencies (ms) for point reads on ``database``."""
    latencies = []
    for i in range(READER_PROBES):
        key = (i * 37) % ROWS + 1
        started = time.perf_counter()
        value = database.query_value(
            "SELECT v FROM kv WHERE k = ?", (key,))
        latencies.append((time.perf_counter() - started) * 1000.0)
        assert value == key * 3  # only committed state is visible
    return latencies


def reader_under_writer_timings():
    """(baseline_ms, under_writer_ms, max_probe_ms) for point reads.

    Before MVCC this scenario could not be *measured*: a reader's
    shared acquisition parked behind the open transaction's exclusive
    hold until COMMIT, so the probe loop below (which must finish
    before the writer is released) deadlocked by construction.  The
    probes completing at all — with the transaction verifiably still
    open — is the tentpole's deterministic no-blocking proof; the
    recorded latencies give CI the collapse trend line.
    """
    database = tenant_database(0)
    baseline = read_probe_latencies(database)

    writer_open = threading.Event()
    release_writer = threading.Event()
    writer_failures = []

    def long_writer():
        database.begin()
        try:
            for key in range(1, ROWS + 1, 3):
                database.execute(
                    "UPDATE kv SET v = v + 1000000 WHERE k = ?",
                    (key,))
            writer_open.set()
            if not release_writer.wait(timeout=120):
                writer_failures.append("probes never finished")
            database.commit()
        except Exception as exc:  # pragma: no cover
            writer_failures.append(repr(exc))
            database.rollback()

    thread = threading.Thread(target=long_writer, name="long-writer")
    thread.start()
    try:
        assert writer_open.wait(timeout=120)
        assert database.in_transaction  # the txn really is open
        under_writer = read_probe_latencies(database)
    finally:
        release_writer.set()
        thread.join(timeout=120)
    assert not thread.is_alive()
    assert writer_failures == []
    # After COMMIT the writer's effects become visible atomically.
    assert database.query_value(
        "SELECT v FROM kv WHERE k = 1") == 1 * 3 + 1_000_000
    baseline_ms = sum(baseline)
    under_writer_ms = sum(under_writer)
    return baseline_ms, under_writer_ms, max(under_writer)


def test_bench_concurrency_serving_layer():
    serial_ms, parallel_ms, shared_write_ms = \
        serving_layer_timings(sanitize=False)

    # Reader-under-writer (the MVCC tentpole case): point-read
    # latency while a long BEGIN..COMMIT transaction is open on
    # another thread.  The probes finishing at all is the
    # no-blocking proof — the writer only commits after they did.
    reader_baseline_ms, reader_under_writer_ms, reader_max_probe_ms = \
        reader_under_writer_timings()

    # The same serving workload with the runtime sanitizer watching
    # every acquisition and storage access.  A fresh sanitizer scopes
    # the lock-order graph to this run; a clean workload must stay
    # clean under observation.
    sanitizer = reset_default_sanitizer()
    _, parallel_sanitized_ms, shared_write_sanitized_ms = \
        serving_layer_timings(sanitize=True)
    sanitizer.assert_clean()
    assert sanitizer.acquisitions > 0
    reset_default_sanitizer()

    total_reads = N_TENANTS * QUERIES_PER_TENANT
    reads_per_s = total_reads / (parallel_ms / 1000.0)
    read_overhead = parallel_sanitized_ms / parallel_ms
    write_overhead = shared_write_sanitized_ms / shared_write_ms
    emit("E13_concurrency", format_table(
        ("case", "wall ms", "ops", "ops/s"),
        [("isolated reads, serial", serial_ms, total_reads,
          total_reads / (serial_ms / 1000.0)),
         (f"isolated reads, {N_TENANTS} workers", parallel_ms,
          total_reads, reads_per_s),
         (f"shared writes, {N_TENANTS} workers", shared_write_ms,
          total_reads, total_reads / (shared_write_ms / 1000.0)),
         (f"isolated reads, {N_TENANTS} workers, sanitized",
          parallel_sanitized_ms, total_reads,
          total_reads / (parallel_sanitized_ms / 1000.0)),
         (f"shared writes, {N_TENANTS} workers, sanitized",
          shared_write_sanitized_ms, total_reads,
          total_reads / (shared_write_sanitized_ms / 1000.0)),
         ("point reads, idle engine", reader_baseline_ms,
          READER_PROBES,
          READER_PROBES / (reader_baseline_ms / 1000.0)),
         ("point reads, open write txn", reader_under_writer_ms,
          READER_PROBES,
          READER_PROBES / (reader_under_writer_ms / 1000.0))]))
    write_bench_json("concurrency", {
        "isolated_read_serial": serial_ms,
        "reader_baseline_ms": reader_baseline_ms,
        "reader_under_open_write_txn_ms": reader_under_writer_ms,
        "reader_under_open_write_txn_max_probe_ms":
            reader_max_probe_ms,
        "reader_under_writer_ratio":
            reader_under_writer_ms / reader_baseline_ms,
        # Pre-MVCC this case deadlocked (readers queued until
        # COMMIT); completing the probes with the transaction open
        # records "blocked on writer: no" as a measured fact.
        "readers_blocked_on_writer": 0.0,
        f"isolated_read_parallel_{N_TENANTS}w": parallel_ms,
        f"shared_write_parallel_{N_TENANTS}w": shared_write_ms,
        "parallel_read_throughput_per_s": reads_per_s,
        f"isolated_read_parallel_{N_TENANTS}w_sanitized":
            parallel_sanitized_ms,
        f"shared_write_parallel_{N_TENANTS}w_sanitized":
            shared_write_sanitized_ms,
        "sanitizer_read_overhead_ratio": read_overhead,
        "sanitizer_write_overhead_ratio": write_overhead,
    })

    # Locking overhead must stay bounded: with the GIL, 8 workers do
    # the same total work as the serial loop — allow 3x for lock and
    # scheduling overhead before calling it a regression.
    assert parallel_ms < serial_ms * 3.0
    # The sanitizer is bookkeeping on top of each acquisition; it may
    # not turn the serving layer pathological.
    assert parallel_sanitized_ms < parallel_ms * 5.0
    assert shared_write_sanitized_ms < shared_write_ms * 5.0
