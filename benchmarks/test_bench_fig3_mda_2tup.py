"""E3 / Fig. 3 — layer construction using MDA + 2TUP.

Regenerates the figure's discipline-by-iteration matrix: each DW layer
is developed by iterations whose disciplines wrap the MDA activities
(BCIM → PIM → PSM → code generation → completion).  The bench measures
the MDA transformation chain itself (CIM→PIM→PSM→code).
"""

import pytest

from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
    TwoTrackProcess,
    cim_to_pim,
    generate_code,
    pim_to_psm,
)
from repro.mda.process import DISCIPLINES

from _util import emit, format_table


def cim_for(subject):
    return CimModel(subject, [
        BusinessRequirement(
            subject=subject,
            measures=[MeasureSpec("amount")],
            dimensions=[
                DimensionSpec("Time", ["year", "month"], is_time=True),
                DimensionSpec("Entity", ["group", "unit"]),
            ]),
    ])


def run_iteration(process, layer, component):
    iteration = process.start_iteration(layer, component)
    cim = cim_for(f"{layer}-{component}")
    iteration.complete("preliminary-study")
    iteration.complete("business-requirements", cim)
    iteration.complete("analysis", cim)
    iteration.complete("technical-requirements", cim.technical)
    iteration.complete("generic-design")
    pim, _ = cim_to_pim(cim)
    iteration.complete("preliminary-design", pim)
    psm, _ = pim_to_psm(pim, cim.technical)
    iteration.complete("detailed-design", psm)
    artifacts = generate_code(psm, pim)
    iteration.complete("coding", artifacts)
    iteration.complete("code-completion",
                       artifacts.completion_points)
    iteration.complete("tests")
    iteration.complete("deployment")
    return iteration


def test_bench_fig3_mda_chain(benchmark):
    cim = cim_for("Sales")

    def mda_chain():
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, cim.technical)
        return generate_code(psm, pim)

    artifacts = benchmark(mda_chain)
    assert artifacts.artifact_count > 0

    # Regenerate the Fig. 3 matrix: disciplines x iterations per layer.
    process = TwoTrackProcess("retail-dw",
                              ["staging", "warehouse", "datamart"])
    run_iteration(process, "staging", "main")
    run_iteration(process, "warehouse", "sales")
    run_iteration(process, "warehouse", "inventory")
    run_iteration(process, "datamart", "finance")

    headers = ["discipline (branch)"] + [
        f"it{entry['iteration']}:{entry['layer'][:5]}"
        for entry in process.discipline_matrix()
    ]
    rows = []
    for discipline in DISCIPLINES:
        label = f"{discipline.name} ({discipline.branch[:4]})"
        marks = []
        for entry in process.discipline_matrix():
            marks.append("x" if entry["disciplines"][discipline.name]
                         else ".")
        rows.append(tuple([label] + marks))
    emit("E3_fig3_mda_2tup", format_table(headers, rows))

    assert process.is_complete
    assert len(process.iterations_for("warehouse")) == 2
