"""Shared helpers for the benchmark/experiment harness.

Every experiment both benchmarks its core operation (pytest-benchmark)
and regenerates the paper artefact as text, written under
``benchmarks/out/`` and echoed to stdout so ``pytest benchmarks/ -s``
shows the reproduced tables/figures inline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

OUT_DIR = Path(__file__).parent / "out"


def emit(experiment: str, text: str) -> None:
    """Persist and print one experiment's regenerated artefact."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 70}\n{experiment}\n{'=' * 70}\n{text}\n")


def write_bench_json(component: str, cases: Dict[str, float]) -> Path:
    """Write machine-readable benchmark timings for one component.

    ``cases`` maps a case name to its best-of-N wall time in
    milliseconds; the payload lands in ``benchmarks/out/
    BENCH_<component>.json`` so downstream tooling (CI trend lines,
    the analysis CLI) can diff runs without scraping text tables.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{component}.json"
    payload = {
        "component": component,
        "unit": "ms",
        "metric": "best-of-N wall time",
        "cases": {name: round(value, 4)
                  for name, value in sorted(cases.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def format_table(headers, rows) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(str(header)) for header in headers]
    text_rows = []
    for row in rows:
        text_row = [f"{value:,.2f}" if isinstance(value, float)
                    else str(value) for value in row]
        text_rows.append(text_row)
        for index, value in enumerate(text_row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(str(header).ljust(width)
                  for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for text_row in text_rows:
        lines.append("  ".join(value.rjust(width)
                               for value, width in zip(text_row, widths)))
    return "\n".join(lines)
