"""Runtime race/deadlock sanitizer battery (``pytest -m sanitize``).

Three layers:

* unit tests for the :class:`ReadWriteLock` introspection API and the
  reentrancy/upgrade semantics the sanitizer leans on;
* unit tests that each sanitizer invariant actually fires on an
  induced violation (a checker that can't fail is no checker);
* full reruns of the PR 3 stress battery and the PR 5 crash-chaos
  battery with ``REPRO_SANITIZE=1``, asserting the sanitizer observed
  real traffic and recorded **zero** violations.
"""

import threading
import time

import pytest

from repro.analysis.concurrency import (
    SANITIZE_ENV,
    ConcurrencySanitizer,
    SanitizedReadWriteLock,
    StorageMonitor,
    default_sanitizer,
    reset_default_sanitizer,
    sanitize_enabled,
)
from repro.engine.database import Database
from repro.engine.locking import EXCLUSIVE, SHARED, ReadWriteLock

import tests.test_concurrency_stress as stress
import tests.test_crash_chaos as chaos

pytestmark = pytest.mark.sanitize

WAIT = 60.0


@pytest.fixture
def sanitized_env(monkeypatch):
    """REPRO_SANITIZE=1 plus a fresh process-wide sanitizer."""
    monkeypatch.setenv(SANITIZE_ENV, "1")
    sanitizer = reset_default_sanitizer()
    yield sanitizer
    reset_default_sanitizer()


# -- ReadWriteLock introspection and semantics --------------------------------------


class TestReadWriteLockIntrospection:
    def test_idle_lock_reports_nothing(self):
        lock = ReadWriteLock()
        assert lock.mode() is None
        assert lock.holders() == ()

    def test_shared_hold_is_visible(self):
        lock = ReadWriteLock()
        with lock.shared():
            assert lock.mode() == SHARED
            assert threading.get_ident() in lock.holders()
        assert lock.mode() is None

    def test_exclusive_hold_is_visible(self):
        lock = ReadWriteLock()
        with lock.exclusive():
            assert lock.mode() == EXCLUSIVE
            assert lock.holders() == (threading.get_ident(),)
        assert lock.holders() == ()

    def test_holders_lists_every_distinct_reader(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3)
        release = threading.Event()
        seen = []

        def reader():
            with lock.shared():
                inside.wait(timeout=WAIT)
                seen.append(lock.holders())
                release.wait(timeout=WAIT)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + WAIT
            while len(seen) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            release.set()
            for thread in threads:
                thread.join(timeout=WAIT)
        assert seen and all(len(holders) == 3 for holders in seen)

    def test_upgrade_attempt_raises_instead_of_deadlocking(self):
        lock = ReadWriteLock()
        with lock.shared():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()
        # The refused upgrade left the shared hold intact and
        # releasable — and the lock ends up idle.
        assert lock.mode() is None

    def test_reader_reentry_while_writer_waits(self):
        """The accounting fix: a thread already inside the shared side
        may re-enter it even though a writer is queued (plain-count
        accounting deadlocked here), and the writer still gets the
        lock afterwards."""
        lock = ReadWriteLock()
        writer_done = threading.Event()

        def writer():
            with lock.exclusive():
                writer_done.set()

        lock.acquire_read()
        thread = threading.Thread(target=writer)
        thread.start()
        deadline = time.monotonic() + WAIT
        while lock._waiting_writers == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lock._waiting_writers == 1, "writer never queued"

        lock.acquire_read()  # re-entry: must not queue behind writer
        assert lock.mode() == SHARED
        lock.release_read()
        lock.release_read()

        thread.join(timeout=WAIT)
        assert writer_done.is_set(), "writer starved after reentry"

    def test_new_readers_still_wait_behind_a_queued_writer(self):
        lock = ReadWriteLock()
        reading = threading.Event()
        release_reader = threading.Event()
        order = []

        def first_reader():
            with lock.shared():
                reading.set()
                release_reader.wait(timeout=WAIT)

        def writer():
            with lock.exclusive():
                order.append("writer")

        def late_reader():
            with lock.shared():
                order.append("late-reader")

        holder = threading.Thread(target=first_reader)
        holder.start()
        assert reading.wait(timeout=WAIT)
        writing = threading.Thread(target=writer)
        writing.start()
        deadline = time.monotonic() + WAIT
        while lock._waiting_writers == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        late = threading.Thread(target=late_reader)
        late.start()
        time.sleep(0.05)  # give the late reader a chance to jump
        assert not order, "someone got in past the first reader"
        release_reader.set()
        for thread in (holder, writing, late):
            thread.join(timeout=WAIT)
        assert order[0] == "writer", order

    def test_release_without_acquire_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


# -- sanitizer invariants fire on induced violations --------------------------------


class TestSanitizerDetections:
    def test_lock_order_inversion_is_reported(self):
        sanitizer = ConcurrencySanitizer()
        lock_a = SanitizedReadWriteLock("A", sanitizer)
        lock_b = SanitizedReadWriteLock("B", sanitizer)
        with lock_a.exclusive():
            with lock_b.exclusive():
                pass
        assert not sanitizer.reports  # one order alone is fine
        with lock_b.exclusive():
            with lock_a.exclusive():
                pass
        kinds = [report.kind for report in sanitizer.reports]
        assert kinds == ["lock-order-inversion"]
        message = sanitizer.reports[0].message
        assert "A" in message and "B" in message
        with pytest.raises(AssertionError):
            sanitizer.assert_clean()

    def test_inversion_reported_once_not_per_acquisition(self):
        sanitizer = ConcurrencySanitizer()
        lock_a = SanitizedReadWriteLock("A", sanitizer)
        lock_b = SanitizedReadWriteLock("B", sanitizer)
        for _ in range(5):
            with lock_a.exclusive(), lock_b.exclusive():
                pass
            with lock_b.exclusive(), lock_a.exclusive():
                pass
        assert len(sanitizer.reports) == 1

    def test_reentrant_holds_do_not_make_edges(self):
        sanitizer = ConcurrencySanitizer()
        lock = SanitizedReadWriteLock("solo", sanitizer)
        with lock.exclusive():
            with lock.exclusive():
                with lock.shared():  # piggyback read
                    pass
        sanitizer.assert_clean()
        assert sanitizer.acquisitions == 3

    def test_unsynchronized_write_is_reported(self, sanitized_env):
        db = Database("rogue-write")
        db.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        sanitized_env.assert_clean()
        db._storages["t"].insert([999, "rogue"])
        kinds = [report.kind for report in sanitized_env.reports]
        assert kinds == ["unsynchronized-write"]
        details = dict(sanitized_env.reports[0].details)
        assert details["table"] == "t"
        assert details["database"] == "rogue-write"

    def test_reader_sees_writer_is_reported(self, sanitized_env):
        db = Database("torn-read")
        db.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'a')")
        sanitized_env.assert_clean()

        holding = threading.Event()
        release = threading.Event()

        def writer():
            with db._lock.exclusive():
                holding.set()
                release.wait(timeout=WAIT)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            assert holding.wait(timeout=WAIT)
            list(db._storages["t"].scan())  # lockless dirty read
        finally:
            release.set()
            thread.join(timeout=WAIT)
        kinds = [report.kind for report in sanitized_env.reports]
        assert "reader-sees-writer" in kinds

    def test_recovery_replay_is_exempt(self, sanitized_env, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x"))
        db.close()
        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.sanitizer is sanitized_env
        assert recovered.query(
            "SELECT COUNT(*) AS n FROM t")[0]["n"] == 10
        recovered.close()
        sanitized_env.assert_clean()


class TestEnvironmentGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitize_enabled()
        db = Database("plain")
        assert db.sanitizer is None
        assert type(db._lock) is ReadWriteLock

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_enabled()

    def test_env_var_sanitizes_databases(self, sanitized_env):
        db = Database("gated")
        assert db.sanitizer is sanitized_env
        assert isinstance(db._lock, SanitizedReadWriteLock)
        db.execute("CREATE TABLE t (id INTEGER)")
        assert db._storages["t"]._monitor is not None

    def test_explicit_flag_beats_environment(self, sanitized_env):
        db = Database("opted-out", sanitize=False)
        assert db.sanitizer is None

    def test_reset_installs_a_fresh_default(self):
        first = reset_default_sanitizer()
        assert default_sanitizer() is first
        second = reset_default_sanitizer()
        assert second is not first
        assert default_sanitizer() is second


# -- the real batteries, sanitized --------------------------------------------------


class TestStressBatterySanitized:
    """PR 3's stress scenarios with every database sanitized."""

    def test_engine_stress_runs_clean(self, sanitized_env):
        battery = stress.TestEngineStress()
        battery.test_mixed_workload_compiled_equals_interpreted()
        battery.test_transaction_scopes_prevent_lost_updates()
        battery.test_plan_and_statement_caches_survive_ddl_churn()
        battery.test_statistics_are_not_lost_under_contention()
        # MVCC reads take no lock, so acquisitions alone would go
        # vacuous; snapshot reads are the read-side liveness signal.
        assert sanitized_env.acquisitions \
            + sanitized_env.snapshot_reads > 1000
        assert sanitized_env.snapshot_reads > 0
        sanitized_env.assert_clean()

    def test_tenant_stress_runs_clean(self, sanitized_env):
        battery = stress.TestTenantStress()
        battery.test_shared_mode_tenants_serialize_writes_correctly()
        battery.test_isolated_mode_tenants_run_in_parallel()
        assert sanitized_env.acquisitions \
            + sanitized_env.snapshot_reads > 100
        sanitized_env.assert_clean()


class TestCrashBatterySanitized:
    """PR 5's crash-chaos scenarios with every database sanitized."""

    def test_golden_runs_are_still_deterministic(self, sanitized_env,
                                                 tmp_path):
        battery = chaos.TestKillAtEveryBoundary()
        battery.test_same_seed_is_byte_identical(tmp_path)
        assert sanitized_env.acquisitions > 100
        sanitized_env.assert_clean()

    def test_live_crash_injection_runs_clean(self, sanitized_env,
                                             tmp_path):
        battery = chaos.TestLiveCrashInjection()
        battery.test_injected_crash_recovers_committed_prefix(
            tmp_path, crash_offset=2_000)
        sanitized_env.assert_clean()

    def test_concurrent_round_trip_runs_clean(self, sanitized_env,
                                              tmp_path):
        battery = chaos.TestConcurrentWorkloadRoundTrip()
        battery.test_recovery_round_trips_the_live_state(
            tmp_path, compile=True)
        assert sanitized_env.acquisitions > 100
        sanitized_env.assert_clean()
