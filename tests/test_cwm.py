"""Tests for the CWM metamodel packages and their builders."""

import pytest

from repro.cwm import (
    BusinessBuilder,
    OlapBuilder,
    RelationalBuilder,
    TransformationBuilder,
    WarehouseProcessBuilder,
    cwm_metamodel,
)
from repro.errors import ModelConstraintError
from repro.mof import ModelExtent, read_xmi, write_xmi


@pytest.fixture(scope="module")
def metamodel():
    return cwm_metamodel()


@pytest.fixture
def extent(metamodel):
    return ModelExtent(metamodel, "warehouse")


class TestMetamodelAssembly:
    def test_all_packages_present(self, metamodel):
        for name in ("Package", "Table", "Column", "Cube", "Dimension",
                     "Transformation", "WarehouseProcess", "Term"):
            assert name in metamodel

    def test_inheritance_reaches_foundation(self, metamodel):
        assert metamodel.is_kind_of("Table", "Classifier")
        assert metamodel.is_kind_of("Column", "Feature")
        assert metamodel.is_kind_of("Cube", "ModelElement")

    def test_metamodel_is_versioned(self, metamodel):
        assert metamodel.name == "CWM"
        assert metamodel.version == "1.1"


class TestRelationalBuilder:
    def test_star_schema_construction(self, extent):
        builder = RelationalBuilder(extent)
        catalog = builder.catalog("dw")
        schema = builder.schema("sales", catalog)
        fact = builder.table(schema, "fact_sales")
        amount = builder.column(fact, "amount", "REAL", nullable=False)
        product_id = builder.column(fact, "product_id", "INTEGER")
        product = builder.table(schema, "dim_product")
        product_key = builder.column(product, "id", "INTEGER",
                                     nullable=False)
        primary = builder.primary_key(product, "pk_product", [product_key])
        builder.foreign_key(fact, "fk_product", [product_id], primary)

        assert builder.tables_of(schema) == [fact, product]
        assert builder.columns_of(fact) == [amount, product_id]
        assert builder.primary_key_of(product) is primary
        assert builder.primary_key_of(fact) is None
        foreign = builder.foreign_keys_of(fact)[0]
        assert foreign.ref("uniqueKey") is primary
        assert extent.validate() == []

    def test_key_over_foreign_column_rejected(self, extent):
        builder = RelationalBuilder(extent)
        schema = builder.schema("s")
        first = builder.table(schema, "a")
        second = builder.table(schema, "b")
        column = builder.column(first, "x", "INTEGER")
        with pytest.raises(ModelConstraintError):
            builder.primary_key(second, "pk", [column])

    def test_index_construction(self, extent):
        builder = RelationalBuilder(extent)
        schema = builder.schema("s")
        table = builder.table(schema, "t")
        column = builder.column(table, "x", "INTEGER")
        index = builder.index(table, "ix", [column], unique=True)
        assert index.get("isUnique") is True
        assert index.ref("spannedClass") is table


class TestOlapBuilder:
    def test_cube_with_dimensions_and_measures(self, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("s")
        fact = relational.table(schema, "fact")
        amount = relational.column(fact, "amount", "REAL")

        olap = OlapBuilder(extent)
        olap_schema = olap.olap_schema("sales-olap")
        cube = olap.cube(olap_schema, "Sales", fact_table=fact)
        time = olap.dimension(olap_schema, "Time", is_time=True)
        olap.hierarchy(time, "calendar", ["year", "quarter", "month"])
        geo = olap.dimension(olap_schema, "Geography")
        olap.associate(cube, time)
        olap.associate(cube, geo)
        olap.measure(cube, "revenue", aggregator="sum", column=amount)

        assert [d.name for d in olap.dimensions_of(cube)] == \
            ["Time", "Geography"]
        measures = olap.measures_of(cube)
        assert measures[0].get("aggregator") == "sum"
        levels = olap.levels_of(time)
        assert [level.name for level in levels] == \
            ["year", "quarter", "month"]
        assert cube.ref("factTable") is fact
        assert extent.validate() == []

    def test_time_dimension_flag(self, extent):
        olap = OlapBuilder(extent)
        schema = olap.olap_schema("s")
        time = olap.dimension(schema, "Time", is_time=True)
        other = olap.dimension(schema, "Product")
        assert time.get("isTime") is True
        assert other.get("isTime") is False


class TestTransformationBuilder:
    def test_activity_with_ordered_steps(self, extent):
        builder = TransformationBuilder(extent)
        activity = builder.activity("nightly-load")
        extract = builder.task("extract")
        load = builder.task("load")
        first = builder.step(activity, "step-extract", extract)
        second = builder.step(activity, "step-load", load, after=[first])
        assert second.refs("precedence") == [first]
        assert activity.refs("step") == [first, second]

    def test_classifier_and_feature_maps(self, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("s")
        source = relational.table(schema, "src")
        target = relational.table(schema, "dst")
        source_col = relational.column(source, "a", "TEXT")
        target_col = relational.column(target, "b", "TEXT")

        builder = TransformationBuilder(extent)
        cmap = builder.classifier_map("src->dst", source, target)
        fmap = builder.feature_map(cmap, "a->b", source_col, target_col,
                                   function="UPPER")
        assert cmap.refs("featureMap") == [fmap]
        assert fmap.get("function") == "UPPER"
        assert extent.validate() == []

    def test_transformation_source_target(self, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("s")
        source = relational.table(schema, "src")
        target = relational.table(schema, "dst")
        builder = TransformationBuilder(extent)
        transformation = builder.transformation(
            "t", sources=[source], targets=[target], function="copy")
        assert transformation.refs("source") == [source]
        assert transformation.get("function") == "copy"


class TestWarehouseProcessBuilder:
    def test_scheduled_process(self, extent):
        transformation = TransformationBuilder(extent)
        activity = transformation.activity("nightly")
        builder = WarehouseProcessBuilder(extent)
        process = builder.process("load-dw", activity)
        event = builder.schedule(process, "daily", start_time="02:00")
        assert event.get("frequency") == "daily"
        assert process.refs("event") == [event]

    def test_cascade_event(self, extent):
        builder = WarehouseProcessBuilder(extent)
        upstream = builder.process("stage")
        downstream = builder.process("aggregate")
        event = builder.cascade(downstream, triggered_by=upstream)
        assert event.ref("triggeringProcess") is upstream

    def test_executions_are_numbered(self, extent):
        builder = WarehouseProcessBuilder(extent)
        process = builder.process("p")
        first = builder.execution(process)
        second = builder.execution(process, status="running")
        assert first.name.endswith("run-1")
        assert second.name.endswith("run-2")
        assert second.get("status") == "running"


class TestBusinessBuilder:
    def test_glossary_terms_map_to_technical_elements(self, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("s")
        table = relational.table(schema, "fact_admissions")

        business = BusinessBuilder(extent)
        glossary = business.glossary("healthcare")
        taxonomy = business.taxonomy("care")
        concept = business.concept(taxonomy, "patient-flow")
        term = business.term(glossary, "Admission",
                             definition="A patient entering care",
                             concept=concept)
        business.relate(term, table)

        assert business.terms_of(glossary) == [term]
        assert term.refs("relatedElement") == [table]
        assert term.ref("concept") is concept

    def test_concept_hierarchy(self, extent):
        business = BusinessBuilder(extent)
        taxonomy = business.taxonomy("t")
        broad = business.concept(taxonomy, "care")
        narrow = business.concept(taxonomy, "acute-care", broader=broad)
        assert broad.refs("narrower") == [narrow]


class TestCwmXmiInterchange:
    def test_full_warehouse_model_roundtrips(self, extent, metamodel):
        relational = RelationalBuilder(extent)
        schema = relational.schema("sales")
        fact = relational.table(schema, "fact_sales")
        amount = relational.column(fact, "amount", "REAL", nullable=False)
        olap = OlapBuilder(extent)
        olap_schema = olap.olap_schema("olap")
        cube = olap.cube(olap_schema, "Sales", fact_table=fact)
        olap.measure(cube, "revenue", column=amount)

        document = write_xmi(extent)
        restored = read_xmi(document, metamodel)

        cube_again = restored.find_by_name("Cube", "Sales")
        assert cube_again.ref("factTable").name == "fact_sales"
        measure = [feature for feature in cube_again.refs("feature")
                   if feature.class_name == "Measure"][0]
        assert measure.ref("column").get("sqlType") == "REAL"
