"""Grand integration tests: the full ODBIS story across all layers.

These tests intentionally cross every module boundary: provisioning →
model-driven design → integration (incl. SCD2 and scheduling) →
analysis → reporting → delivery → metering → invoicing, for multiple
tenants at once, plus orchestration via BPM + rules and ESB events.
"""

import datetime

import pytest

from repro import OdbisPlatform, TenancyMode
from repro.bpm import (
    ExclusiveGateway,
    ProcessDefinition,
    ProcessEngine,
    RuleTask,
    ServiceTask,
)
from repro.core import Channel
from repro.core.resources import EVENTS_CHANNEL
from repro.etl import RowsSource, Schedule, SurrogateKey
from repro.etl.scd import ScdType2Load
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
)
from repro.reporting import Dashboard
from repro.rules import Fact, parse_rules


def sales_cim():
    return CimModel("retail", [
        BusinessRequirement(
            subject="Sales",
            measures=[MeasureSpec("revenue")],
            dimensions=[
                DimensionSpec("Time", ["year", "month"], is_time=True),
                DimensionSpec("Store", ["region", "city"]),
            ]),
    ])


class TestFullPlatformStory:
    @pytest.fixture
    def platform(self):
        return OdbisPlatform(mode=TenancyMode.SHARED)

    def test_design_load_analyse_report_bill(self, platform):
        """One tenant, the complete on-demand BI loop."""
        # 1. Provision + project + model-driven design.
        platform.provisioning.provision("acme", "Acme", plan="team")
        platform.mddws.create_project("acme", "dw")
        summary = platform.mddws.design_warehouse("acme", sales_cim())
        assert summary["deployed"]["cubes"] == ["Sales"]

        # 2. Integration: load dimensions and facts on a schedule.
        platform.integration.define_job(
            "acme", "load-time",
            RowsSource([{"year": "2009", "month": "Jan"},
                        {"year": "2009", "month": "Feb"}]),
            [SurrogateKey("time_key")], target_table="dim_time")
        platform.integration.define_job(
            "acme", "load-store",
            RowsSource([{"region": "North", "city": "Lille"},
                        {"region": "South", "city": "Nice"}]),
            [SurrogateKey("store_key")], target_table="dim_store")
        platform.integration.define_job(
            "acme", "load-fact",
            RowsSource([
                {"time_key": 1, "store_key": 1, "revenue": 100.0},
                {"time_key": 1, "store_key": 2, "revenue": 50.0},
                {"time_key": 2, "store_key": 1, "revenue": 70.0},
            ]),
            target_table="fact_sales")
        platform.integration.run_graph("acme", {
            "load-time": [], "load-store": [],
            "load-fact": ["load-time", "load-store"],
        })

        # 3. Analysis: MDX over the generated cube.
        cells = platform.analysis.execute_mdx(
            "acme",
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[Store].[region].Members} ON ROWS FROM [Sales]")
        assert cells.cell(["North"], "revenue") == 170.0
        assert cells.cell(["South"], "revenue") == 50.0

        # 4. Reporting: dataset -> dashboard -> delivery channels.
        platform.metadata.create_dataset(
            "acme", "by-region", "warehouse",
            "SELECT s.region AS region, SUM(f.revenue) AS revenue "
            "FROM fact_sales f "
            "JOIN dim_store s ON f.store_key = s.store_key "
            "GROUP BY s.region")
        builder = platform.reporting.adhoc_builder("acme", "by-region")
        dashboard = Dashboard("exec")
        dashboard.add_row(
            builder.bar_chart("rev", "region", "revenue"))
        platform.reporting.save_dashboard("acme", dashboard)
        delivered = platform.delivery.deliver_dashboard(
            dashboard, Channel.WEB_SERVICE)
        series = {entry["category"]: entry["value"]
                  for entry in delivered["elements"][0]["series"]}
        assert series == {"North": 170.0, "South": 50.0}

        # 5. Everything was metered; the invoice reflects it.
        usage = platform.billing.usage("acme")
        assert usage["etl_rows"] == 7
        assert usage["query"] >= 2
        assert usage["dashboard"] == 1
        invoice = platform.billing.invoice("acme", "team")
        assert invoice.total >= 249.0

    def test_two_tenants_full_isolation(self, platform):
        """Same design for two tenants; data never crosses."""
        for tenant, revenue in (("acme", 100.0), ("globex", 999.0)):
            platform.provisioning.provision(tenant, tenant.title())
            platform.mddws.create_project(tenant, f"{tenant}-dw")
            platform.mddws.design_warehouse(tenant, sales_cim())
            platform.integration.define_job(
                tenant, "load-time",
                RowsSource([{"year": "2009", "month": "Jan"}]),
                [SurrogateKey("time_key")], target_table="dim_time")
            platform.integration.define_job(
                tenant, "load-store",
                RowsSource([{"region": "R", "city": "C"}]),
                [SurrogateKey("store_key")], target_table="dim_store")
            platform.integration.define_job(
                tenant, "load-fact",
                RowsSource([{"time_key": 1, "store_key": 1,
                             "revenue": revenue}]),
                target_table="fact_sales")
            platform.integration.run_graph(tenant, {
                "load-time": [], "load-store": [],
                "load-fact": ["load-time", "load-store"],
            })
        acme_total = platform.analysis.engine(
            "acme", "Sales").grand_total("revenue")
        globex_total = platform.analysis.engine(
            "globex", "Sales").grand_total("revenue")
        assert acme_total == 100.0
        assert globex_total == 999.0
        # Shared operational DB, separate warehouses.
        assert platform.tenants.context("acme").operational_db is \
            platform.tenants.context("globex").operational_db
        assert platform.tenants.context("acme").warehouse_db is not \
            platform.tenants.context("globex").warehouse_db

    def test_scd2_history_in_designed_warehouse(self, platform):
        """History tracking from TCIM through to SCD2 loads."""
        from repro.mda import TechnicalRequirement

        platform.provisioning.provision("acme", "Acme")
        platform.mddws.create_project("acme", "dw")
        cim = sales_cim()
        cim.technical = TechnicalRequirement(history_tracking=True)
        platform.mddws.design_warehouse("acme", cim)
        warehouse = platform.tenants.context("acme").warehouse_db
        # The PSM emitted validity columns; add the SCD2 housekeeping
        # columns the load strategy needs.
        warehouse.execute(
            "ALTER TABLE dim_store ADD COLUMN is_current BOOLEAN")
        warehouse.execute(
            "ALTER TABLE dim_store ADD COLUMN city_id INTEGER")

        def scd_load(rows, when):
            from repro.etl import EtlJob, JobRunner

            job = EtlJob("scd", RowsSource(rows),
                         load=ScdType2Load(
                             warehouse, "dim_store",
                             natural_key=["city_id"],
                             tracked=["region", "city"],
                             effective_date=when,
                             surrogate="store_key"))
            return JobRunner().run(job)

        scd_load([{"city_id": 1, "region": "North", "city": "Lille"}],
                 datetime.date(2009, 1, 1))
        scd_load([{"city_id": 1, "region": "North", "city": "Dunkerque"}],
                 datetime.date(2009, 6, 1))
        history = warehouse.query(
            "SELECT city, is_current FROM dim_store "
            "WHERE city_id = 1 ORDER BY valid_from")
        assert [row["city"] for row in history] == \
            ["Lille", "Dunkerque"]
        assert [row["is_current"] for row in history] == [False, True]

    def test_scheduled_loads_keep_cube_fresh_after_invalidation(
            self, platform):
        platform.provisioning.provision("acme", "Acme")
        platform.mddws.create_project("acme", "dw")
        platform.mddws.design_warehouse("acme", sales_cim())
        warehouse = platform.tenants.context("acme").warehouse_db
        warehouse.execute(
            "INSERT INTO dim_time (time_key, year, month) "
            "VALUES (1, '2009', 'Jan')")
        warehouse.execute(
            "INSERT INTO dim_store (store_key, region, city) "
            "VALUES (1, 'North', 'Lille')")

        platform.integration.define_job(
            "acme", "nightly-fact",
            RowsSource([{"time_key": 1, "store_key": 1,
                         "revenue": 10.0}]),
            target_table="fact_sales")
        platform.integration.schedule_job(
            "acme", "nightly-fact", Schedule(daily_at="02:00"))
        platform.integration.advance_clock(3 * 24 * 60)  # 3 nights

        engine = platform.analysis.engine("acme", "Sales")
        stale = engine.grand_total("revenue")
        platform.analysis.invalidate_cube("acme", "Sales")
        fresh = engine.grand_total("revenue")
        assert fresh == 30.0
        assert stale in (30.0, None) or stale <= fresh

    def test_esb_carries_platform_events(self, platform):
        events = []
        platform.resources.bus.wiretap(
            EVENTS_CHANNEL, lambda message: events.append(
                (message.payload["tenant"], message.payload["kind"])))
        platform.provisioning.provision("acme", "Acme")
        platform.mddws.create_project("acme", "dw")
        platform.mddws.design_warehouse("acme", sales_cim())
        kinds = [kind for _tenant, kind in events]
        assert "provisioned" in kinds
        assert "cube-defined" in kinds
        assert "dw-deployed" in kinds


class TestBpmOrchestration:
    def test_plan_upgrade_process_with_rules_decision(self):
        """BPM defines the process logic, BRM the decision logic —
        the paper's §3.3 split, used to upgrade heavy tenants."""
        platform = OdbisPlatform()
        platform.provisioning.provision("acme", "Acme", plan="starter")
        platform.billing.meter("acme", "query", 50_000)

        upgrade_rules = parse_rules('''
rule "needs-upgrade"
when
    usage: Usage(queries > 10000)
then
    insert(Upgrade(plan="team"))
end
''')

        def read_usage(variables):
            variables["queries"] = platform.billing.usage(
                "acme").get("query", 0)

        def apply_upgrade(variables):
            context = platform.tenants.context("acme")
            context.plan = variables["new_plan"]

        definition = ProcessDefinition("plan-review", [
            ServiceTask("read-usage", read_usage,
                        next_node="decide"),
            RuleTask(
                "decide", upgrade_rules,
                publish=lambda v: [Fact("Usage",
                                        queries=v["queries"])],
                harvest=lambda memory, v: v.update(
                    new_plan=(memory.by_type("Upgrade")[0]["plan"]
                              if memory.by_type("Upgrade")
                              else None)),
                next_node="route"),
            ExclusiveGateway("route", [
                (lambda v: v["new_plan"] is not None, "apply"),
            ], default="done"),
            ServiceTask("apply", apply_upgrade, next_node="done"),
            ServiceTask("done", lambda v: None),
        ], "read-usage")

        instance = ProcessEngine().start(definition)
        assert instance.history == [
            "read-usage", "decide", "route", "apply", "done"]
        assert platform.tenants.context("acme").plan == "team"
        # The new plan's invoice absorbs the usage overage better.
        starter = platform.billing.invoice("acme", "starter").total
        team = platform.billing.invoice("acme", "team").total
        assert team < starter
