"""Unit tests for the MOF kernel, registry, constraints and XMI."""

import pytest

from repro.errors import MetamodelError, ModelConstraintError, XmiError
from repro.mof import (
    Constraint,
    ConstraintChecker,
    MetaAttribute,
    MetaClass,
    MetaReference,
    Metamodel,
    MetamodelRegistry,
    ModelExtent,
    read_xmi,
    write_xmi,
)


@pytest.fixture
def metamodel():
    return Metamodel("Zoo", [
        MetaClass("Named", abstract=True, attributes=[
            MetaAttribute("name", "string", required=True),
        ]),
        MetaClass("Animal", superclass="Named", attributes=[
            MetaAttribute("legs", "integer", default=4),
            MetaAttribute("weight", "float"),
            MetaAttribute("tame", "boolean", default=False),
        ]),
        MetaClass("Bird", superclass="Animal"),
        MetaClass("Enclosure", superclass="Named", references=[
            MetaReference("resident", "Animal", many=True, composite=True),
            MetaReference("keeper", "Keeper"),
        ]),
        MetaClass("Keeper", superclass="Named"),
    ])


@pytest.fixture
def extent(metamodel):
    return ModelExtent(metamodel, "zoo-1")


class TestMetamodelDefinition:
    def test_duplicate_class_rejected(self):
        with pytest.raises(MetamodelError):
            Metamodel("M", [MetaClass("A"), MetaClass("A")])

    def test_unknown_superclass_rejected(self):
        with pytest.raises(MetamodelError):
            Metamodel("M", [MetaClass("A", superclass="Ghost")])

    def test_unknown_reference_target_rejected(self):
        with pytest.raises(MetamodelError):
            Metamodel("M", [MetaClass("A", references=[
                MetaReference("r", "Ghost")])])

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(MetamodelError):
            Metamodel("M", [
                MetaClass("A", superclass="B"),
                MetaClass("B", superclass="A"),
            ])

    def test_bad_attribute_type_rejected(self):
        with pytest.raises(MetamodelError):
            MetaAttribute("x", "quaternion")

    def test_attribute_inheritance(self, metamodel):
        attributes = metamodel.all_attributes("Bird")
        assert set(attributes) == {"name", "legs", "weight", "tame"}

    def test_is_kind_of_walks_lineage(self, metamodel):
        assert metamodel.is_kind_of("Bird", "Named")
        assert not metamodel.is_kind_of("Keeper", "Animal")


class TestReflectiveInstances:
    def test_create_with_defaults(self, extent):
        animal = extent.create("Animal", name="rex")
        assert animal.get("legs") == 4
        assert animal.get("tame") is False

    def test_abstract_class_cannot_be_instantiated(self, extent):
        with pytest.raises(ModelConstraintError):
            extent.create("Named", name="x")

    def test_unknown_class_raises(self, extent):
        with pytest.raises(MetamodelError):
            extent.create("Ghost")

    def test_attribute_type_checked(self, extent):
        animal = extent.create("Animal", name="rex")
        with pytest.raises(ModelConstraintError):
            animal.set("legs", "four")

    def test_unknown_attribute_raises(self, extent):
        animal = extent.create("Animal", name="rex")
        with pytest.raises(MetamodelError):
            animal.set("wings", 2)

    def test_float_attribute_accepts_int(self, extent):
        animal = extent.create("Animal", name="rex")
        animal.set("weight", 10)
        assert animal.get("weight") == 10

    def test_link_enforces_target_class(self, extent):
        enclosure = extent.create("Enclosure", name="cage")
        keeper = extent.create("Keeper", name="joe")
        with pytest.raises(ModelConstraintError):
            enclosure.link("resident", keeper)

    def test_link_accepts_subclass_instances(self, extent):
        enclosure = extent.create("Enclosure", name="aviary")
        bird = extent.create("Bird", name="tweety")
        enclosure.link("resident", bird)
        assert enclosure.refs("resident") == [bird]

    def test_single_valued_reference_replaces(self, extent):
        enclosure = extent.create("Enclosure", name="cage")
        joe = extent.create("Keeper", name="joe")
        ann = extent.create("Keeper", name="ann")
        enclosure.link("keeper", joe)
        enclosure.link("keeper", ann)
        assert enclosure.ref("keeper") is ann

    def test_unlink(self, extent):
        enclosure = extent.create("Enclosure", name="cage")
        rex = extent.create("Animal", name="rex")
        enclosure.link("resident", rex)
        enclosure.unlink("resident", rex)
        assert enclosure.refs("resident") == []

    def test_duplicate_element_id_rejected(self, extent):
        extent.create("Animal", element_id="a1", name="rex")
        with pytest.raises(ModelConstraintError):
            extent.create("Animal", element_id="a1", name="dup")

    def test_delete_removes_incoming_links(self, extent):
        enclosure = extent.create("Enclosure", name="cage")
        rex = extent.create("Animal", name="rex")
        enclosure.link("resident", rex)
        extent.delete(rex)
        assert enclosure.refs("resident") == []
        assert len(extent) == 1


class TestExtentQueries:
    def test_instances_of_includes_subclasses(self, extent):
        extent.create("Animal", name="rex")
        extent.create("Bird", name="tweety")
        assert len(extent.instances_of("Animal")) == 2
        assert len(extent.instances_of("Animal", exact=True)) == 1

    def test_find_by_name(self, extent):
        extent.create("Animal", name="rex")
        assert extent.find_by_name("Animal", "rex") is not None
        assert extent.find_by_name("Animal", "ghost") is None

    def test_element_lookup_by_id(self, extent):
        animal = extent.create("Animal", element_id="a1", name="rex")
        assert extent.element("a1") is animal
        with pytest.raises(ModelConstraintError):
            extent.element("missing")


class TestValidation:
    def test_missing_required_attribute_reported(self, extent):
        animal = extent.create("Animal")
        problems = extent.validate()
        assert any("name" in problem for problem in problems)

    def test_two_composite_owners_reported(self, extent):
        first = extent.create("Enclosure", name="e1")
        second = extent.create("Enclosure", name="e2")
        rex = extent.create("Animal", name="rex")
        first.link("resident", rex)
        second.link("resident", rex)
        problems = extent.validate()
        assert any("composite" in problem for problem in problems)

    def test_valid_extent_has_no_problems(self, extent):
        enclosure = extent.create("Enclosure", name="cage")
        rex = extent.create("Animal", name="rex")
        enclosure.link("resident", rex)
        assert extent.validate() == []
        extent.check_valid()

    def test_check_valid_raises(self, extent):
        extent.create("Animal")
        with pytest.raises(ModelConstraintError):
            extent.check_valid()


class TestRegistry:
    def test_install_and_create_extent(self, metamodel):
        registry = MetamodelRegistry()
        registry.install(metamodel)
        extent = registry.create_extent("Zoo", "z1")
        assert extent.metamodel is metamodel
        assert registry.names() == ["Zoo"]

    def test_double_install_rejected(self, metamodel):
        registry = MetamodelRegistry()
        registry.install(metamodel)
        with pytest.raises(MetamodelError):
            registry.install(metamodel)

    def test_unknown_metamodel_raises(self):
        registry = MetamodelRegistry()
        with pytest.raises(MetamodelError):
            registry.get("Ghost")

    def test_uninstall(self, metamodel):
        registry = MetamodelRegistry()
        registry.install(metamodel)
        registry.uninstall("Zoo")
        assert registry.names() == []
        with pytest.raises(MetamodelError):
            registry.uninstall("Zoo")


class TestConstraints:
    def test_violations_are_reported_per_element(self, extent):
        extent.create("Animal", name="rex", legs=4)
        extent.create("Animal", name="wobbler", legs=3)
        checker = ConstraintChecker([
            Constraint("even-legs", "Animal",
                       lambda animal: animal.get("legs") % 2 == 0,
                       "animals must have an even number of legs"),
        ])
        violations = checker.check(extent)
        assert len(violations) == 1
        assert "even-legs" in str(violations[0])

    def test_constraint_covers_subclasses(self, extent):
        extent.create("Bird", name="tweety", legs=3)
        checker = ConstraintChecker().add(
            Constraint("even-legs", "Animal",
                       lambda animal: animal.get("legs") % 2 == 0,
                       "bad legs"))
        assert not checker.is_satisfied(extent)


class TestXmi:
    def test_roundtrip_preserves_everything(self, extent, metamodel):
        enclosure = extent.create("Enclosure", name="cage")
        rex = extent.create("Animal", name="rex", weight=12.5, tame=True)
        keeper = extent.create("Keeper", name="joe")
        enclosure.link("resident", rex)
        enclosure.link("keeper", keeper)

        document = write_xmi(extent)
        restored = read_xmi(document, metamodel)

        assert len(restored) == 3
        cage = restored.find_by_name("Enclosure", "cage")
        assert cage.ref("keeper").get("name") == "joe"
        resident = cage.refs("resident")[0]
        assert resident.get("weight") == 12.5
        assert resident.get("tame") is True
        assert resident.get("legs") == 4

    def test_wrong_metamodel_rejected(self, extent):
        other = Metamodel("Other", [MetaClass("X")])
        document = write_xmi(extent)
        with pytest.raises(XmiError):
            read_xmi(document, other)

    def test_malformed_document_rejected(self, metamodel):
        with pytest.raises(XmiError):
            read_xmi("<not-closed", metamodel)

    def test_non_xmi_root_rejected(self, metamodel):
        with pytest.raises(XmiError):
            read_xmi("<zoo/>", metamodel)

    def test_unknown_attribute_in_document_rejected(self, metamodel):
        document = (
            '<xmi version="2.1" metamodel="Zoo" extent="e">'
            '<Animal xmi.id="a1" name="rex" wings="2"/></xmi>')
        with pytest.raises(XmiError):
            read_xmi(document, metamodel)
