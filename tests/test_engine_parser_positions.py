"""Negative-path parser tests: malformed SQL must fail *with* a
position (line/column/offset) pointing at the offending token."""

import pytest

from repro.engine.parser import line_column, parse_sql, tokenize
from repro.errors import SqlSyntaxError


def error_for(sql: str) -> SqlSyntaxError:
    with pytest.raises(SqlSyntaxError) as excinfo:
        parse_sql(sql)
    return excinfo.value


class TestLineColumn:
    def test_first_character(self):
        assert line_column("SELECT 1", 0) == (1, 1)

    def test_after_newlines(self):
        assert line_column("a\nbc\ndef", 5) == (3, 1)

    def test_tokens_carry_line_and_column(self):
        tokens = tokenize("SELECT\n  name")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestMalformedJoins:
    def test_join_without_on(self):
        error = error_for("SELECT * FROM a JOIN b WHERE x = 1")
        assert error.line == 1
        assert error.column is not None
        assert "ON" in str(error).upper()

    def test_join_missing_right_table(self):
        error = error_for("SELECT * FROM a LEFT JOIN ON a.id = 1")
        assert error.line == 1

    def test_multiline_error_points_at_later_line(self):
        error = error_for("SELECT *\nFROM a\nJOIN b\nWHERE x = 1")
        assert error.line == 4


class TestUnterminatedStrings:
    def test_unterminated_string_literal(self):
        error = error_for("SELECT 'oops FROM t")
        assert "unterminated" in str(error)
        assert error.line == 1
        assert error.column == 8

    def test_unterminated_string_on_second_line(self):
        error = error_for("SELECT 1;\n".replace(";", "") +
                          "FROM t WHERE name = 'bad")
        assert error.line == 2


class TestBadInsertArity:
    def test_explicit_columns_vs_values_mismatch(self):
        error = error_for(
            "INSERT INTO t (a, b) VALUES (1, 2, 3)")
        message = str(error)
        assert "2" in message and "3" in message
        assert error.line == 1

    def test_second_tuple_mismatch_is_positioned(self):
        error = error_for(
            "INSERT INTO t (a, b) VALUES (1, 2),\n(3)")
        assert error.line == 2

    def test_matching_arity_parses(self):
        parse_sql("INSERT INTO t (a, b) VALUES (1, 2)")


class TestGeneralPositions:
    def test_trailing_garbage(self):
        error = error_for("SELECT 1 )")
        assert error.column == 10

    def test_offset_maps_back_to_line_column(self):
        sql = "SELECT *\nFROM"
        error = error_for(sql)
        assert error.offset is not None
        assert line_column(sql, error.offset) == \
            (error.line, error.column)

    def test_error_message_carries_position_suffix(self):
        error = error_for("SELECT FROM t")
        assert f"line {error.line}" in str(error)
