"""Artifact validation wired into the platform services.

Every analyzer error class must cause provisioning to reject the
artifact; the opt-out flag must let all of them through.
"""

import pytest

from repro.core import OdbisPlatform
from repro.cwm import TransformationBuilder, cwm_metamodel
from repro.errors import CubeDefinitionError, ProvisioningError, \
    ServiceError
from repro.mof import ModelExtent
from repro.reporting import DashboardDefinition


@pytest.fixture
def platform():
    platform = OdbisPlatform()
    platform.provisioning.provision("acme", "Acme Corp", plan="team")
    context = platform.tenants.context("acme")
    context.warehouse_db.execute(
        "CREATE TABLE sales (id INTEGER NOT NULL, region TEXT, "
        "region_id INTEGER, amount REAL, quantity INTEGER, "
        "sold_on DATE)")
    context.warehouse_db.execute(
        "CREATE TABLE dim_region (region_id INTEGER, region TEXT, "
        "country TEXT)")
    return platform


def register(platform, kind, payload, **kwargs):
    return platform.provisioning.register_artifact(
        "acme", kind, payload, **kwargs)


REJECTED_SQL = {
    "unknown-table": "SELECT * FROM ghosts",
    "unknown-column": "SELECT colour FROM sales",
    "ambiguous-column":
        "SELECT region FROM sales "
        "JOIN dim_region ON sales.id = dim_region.region_id",
    "type-mismatched-comparison":
        "SELECT id FROM sales WHERE region = 5",
    "aggregate-in-where":
        "SELECT id FROM sales WHERE SUM(amount) > 10",
    "insert-arity":
        "INSERT INTO sales VALUES (1, 'east')",
}


class TestSqlArtifacts:
    @pytest.mark.parametrize("label", sorted(REJECTED_SQL))
    def test_each_sql_error_class_is_rejected(self, platform, label):
        with pytest.raises(ProvisioningError):
            register(platform, "sql", REJECTED_SQL[label])

    def test_clean_sql_is_accepted(self, platform):
        collector = register(
            platform, "sql",
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region", name="totals.sql")
        assert not collector.has_errors()
        assert platform.provisioning.artifact_log[-1]["name"] == \
            "totals.sql"

    def test_opt_out_flag_accepts_broken_sql(self, platform):
        collector = register(platform, "sql", "SELECT * FROM ghosts",
                             validate=False)
        assert collector.has_errors()  # reported but not enforced

    def test_platform_wide_opt_out(self, platform):
        platform.provisioning.validate_artifacts = False
        collector = register(platform, "sql", "SELECT * FROM ghosts")
        assert collector.has_errors()

    def test_unknown_kind_is_rejected(self, platform):
        with pytest.raises(ProvisioningError, match="artifact kind"):
            register(platform, "spreadsheet", "A1=B2")


class TestModelArtifacts:
    def test_dangling_reference_is_rejected(self, platform):
        extent = ModelExtent(cwm_metamodel(), "broken")
        other = ModelExtent(cwm_metamodel(), "elsewhere")
        TransformationBuilder(extent).transformation(
            "load", sources=[other.create("Package", name="alien")])
        with pytest.raises(ProvisioningError, match="ODB201"):
            register(platform, "model", extent)

    def test_transformation_cycle_is_rejected(self, platform):
        extent = ModelExtent(cwm_metamodel(), "cyclic")
        builder = TransformationBuilder(extent)
        activity = builder.activity("nightly")
        task = builder.task("load")
        first = builder.step(activity, "s1", task)
        second = builder.step(activity, "s2", task, after=[first])
        first.link("precedence", second)
        with pytest.raises(ProvisioningError, match="ODB203"):
            register(platform, "model", extent)

    def test_clean_model_is_accepted(self, platform):
        extent = ModelExtent(cwm_metamodel(), "clean")
        builder = TransformationBuilder(extent)
        activity = builder.activity("nightly")
        builder.step(activity, "extract", builder.task("load"))
        collector = register(platform, "model", extent)
        assert not collector.has_errors()


class TestRuleArtifacts:
    def test_unbound_variable_is_rejected(self, platform):
        text = ('rule "r"\nwhen\n    u: Usage()\nthen\n'
                '    retract(ghost)\nend')
        with pytest.raises(ProvisioningError, match="ODB301"):
            register(platform, "rules", text)

    def test_clean_rules_are_accepted(self, platform):
        text = ('rule "r"\nwhen\n    u: Usage(amount > 10)\nthen\n'
                '    retract(u)\nend')
        collector = register(platform, "rules", text)
        assert not collector.has_errors()


class TestCubeArtifacts:
    def test_unresolved_cube_is_rejected(self, platform):
        definition = {
            "name": "sales",
            "fact_table": "fact_ghost",
            "measures": [{"name": "revenue", "column": "amount",
                          "aggregator": "sum"}],
            "dimensions": [{"name": "region", "table": "dim_region",
                            "key": "region_id",
                            "levels": ["country"]}],
        }
        with pytest.raises(ProvisioningError, match="ODB204"):
            register(platform, "cube", definition)


class TestDashboardArtifacts:
    def make_dataset(self, platform):
        platform.metadata.create_dataset(
            "acme", "totals", "warehouse",
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region")

    def test_missing_column_is_rejected(self, platform):
        self.make_dataset(platform)
        definition = DashboardDefinition("revenue")
        definition.add_row(definition.chart(
            "totals", "by-region", "bar", "region", "profit"))
        with pytest.raises(ProvisioningError, match="ODB402"):
            register(platform, "dashboard", definition)

    def test_valid_dashboard_is_accepted(self, platform):
        self.make_dataset(platform)
        definition = DashboardDefinition("revenue")
        definition.add_row(definition.chart(
            "totals", "by-region", "bar", "region", "total"))
        collector = register(platform, "dashboard", definition)
        assert not collector.has_errors()


class TestServiceGates:
    def test_dataset_sql_is_validated(self, platform):
        with pytest.raises(ServiceError, match="ODB102"):
            platform.metadata.create_dataset(
                "acme", "bad", "warehouse",
                "SELECT colour FROM sales")

    def test_dataset_opt_out(self, platform):
        platform.metadata.create_dataset(
            "acme", "bad", "warehouse", "SELECT colour FROM sales",
            validate=False)
        assert [d["name"] for d in platform.metadata.datasets("acme")
                ] == ["bad"]

    def test_parameterized_dataset_sql_is_accepted(self, platform):
        platform.metadata.create_dataset(
            "acme", "by-region", "warehouse",
            "SELECT id FROM sales WHERE region = ?")

    def test_dashboard_columns_validated_at_definition(self, platform):
        platform.metadata.create_dataset(
            "acme", "totals", "warehouse",
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region")
        definition = DashboardDefinition("revenue")
        definition.add_row(definition.chart(
            "totals", "by-region", "bar", "region", "profit"))
        with pytest.raises(ServiceError, match="ODB402"):
            platform.reporting.define_dashboard("acme", definition)
        # opt-out still stores it
        platform.reporting.define_dashboard("acme", definition,
                                            validate=False)
        assert platform.reporting.dashboard_definitions("acme") == \
            ["revenue"]

    def test_cube_validated_at_definition(self, platform):
        definition = {
            "name": "sales",
            "fact_table": "sales",
            "measures": [{"name": "revenue", "column": "profit",
                          "aggregator": "sum"}],
            "dimensions": [{"name": "region", "table": "dim_region",
                            "key": "region_id",
                            "levels": ["country"]}],
        }
        with pytest.raises(ServiceError, match="ODB204"):
            platform.analysis.define_cube("acme", definition)
        # Opting out falls through to the engine's own runtime check.
        with pytest.raises(CubeDefinitionError):
            platform.analysis.define_cube("acme", definition,
                                          validate=False)
        definition["measures"][0]["column"] = "amount"
        platform.analysis.define_cube("acme", definition)
        assert platform.analysis.cubes("acme") == ["sales"]
