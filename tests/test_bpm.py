"""Tests for the BPM process engine and its rules integration."""

import pytest

from repro.bpm import (
    ExclusiveGateway,
    ProcessDefinition,
    ProcessEngine,
    ServiceTask,
    RuleTask,
)
from repro.errors import BpmError
from repro.rules import Condition, Fact, Rule


def bump(variables):
    variables["n"] = variables.get("n", 0) + 1


class TestDefinitionValidation:
    def test_empty_process_rejected(self):
        with pytest.raises(BpmError):
            ProcessDefinition("p", [], "start")

    def test_unknown_start_rejected(self):
        with pytest.raises(BpmError):
            ProcessDefinition("p", [ServiceTask("a", bump)], "ghost")

    def test_duplicate_node_rejected(self):
        with pytest.raises(BpmError):
            ProcessDefinition("p", [
                ServiceTask("a", bump), ServiceTask("a", bump)], "a")

    def test_dangling_successor_rejected(self):
        with pytest.raises(BpmError):
            ProcessDefinition("p", [
                ServiceTask("a", bump, next_node="ghost")], "a")

    def test_gateway_needs_branches(self):
        with pytest.raises(BpmError):
            ExclusiveGateway("g", [])


class TestExecution:
    def test_linear_process(self):
        definition = ProcessDefinition("lin", [
            ServiceTask("one", bump, next_node="two"),
            ServiceTask("two", bump),
        ], "one")
        instance = ProcessEngine().start(definition)
        assert instance.completed
        assert instance.variables["n"] == 2
        assert instance.history == ["one", "two"]

    def test_gateway_branching(self):
        definition = ProcessDefinition("branch", [
            ExclusiveGateway("check", [
                (lambda v: v["amount"] > 100, "premium"),
            ], default="standard"),
            ServiceTask("premium",
                        lambda v: v.update(path="premium")),
            ServiceTask("standard",
                        lambda v: v.update(path="standard")),
        ], "check")
        engine = ProcessEngine()
        high = engine.start(definition, {"amount": 500})
        low = engine.start(definition, {"amount": 10})
        assert high.variables["path"] == "premium"
        assert low.variables["path"] == "standard"

    def test_gateway_without_match_or_default_fails(self):
        definition = ProcessDefinition("nobranch", [
            ExclusiveGateway("check", [
                (lambda v: False, "never"),
            ]),
            ServiceTask("never", bump),
        ], "check")
        with pytest.raises(BpmError):
            ProcessEngine().start(definition)

    def test_cycle_guard(self):
        definition = ProcessDefinition("loop", [
            ServiceTask("a", bump, next_node="a"),
        ], "a")
        with pytest.raises(BpmError):
            ProcessEngine(max_steps=10).start(definition)

    def test_engine_records_completed_instances(self):
        definition = ProcessDefinition("p", [ServiceTask("a", bump)], "a")
        engine = ProcessEngine()
        engine.start(definition)
        engine.start(definition)
        assert len(engine.completed_instances) == 2


class TestRuleTask:
    def test_rules_decide_then_process_continues(self):
        discount_rule = Rule(
            "discount",
            [Condition("o", "Order", lambda f, b: f["total"] > 100)],
            lambda ctx: ctx.insert(Fact("Discount", percent=10)))

        definition = ProcessDefinition("order", [
            RuleTask(
                "decide",
                [discount_rule],
                publish=lambda v: [Fact("Order", total=v["total"])],
                harvest=lambda memory, v: v.update(
                    discount=(memory.by_type("Discount")[0]["percent"]
                              if memory.by_type("Discount") else 0)),
                next_node="apply"),
            ServiceTask("apply", lambda v: v.update(
                final=v["total"] * (100 - v["discount"]) / 100)),
        ], "decide")

        engine = ProcessEngine()
        big = engine.start(definition, {"total": 200})
        small = engine.start(definition, {"total": 50})
        assert big.variables["final"] == 180.0
        assert small.variables["final"] == 50.0
