"""Tests for the ETL substrate: sources, operators, jobs, scheduling."""

import datetime

import pytest

from repro.engine import Database
from repro.errors import (
    EtlError,
    JobExecutionError,
    JobValidationError,
    SchedulerError,
)
from repro.etl import (
    Aggregate,
    CallableSource,
    CsvSource,
    Deduplicate,
    Derive,
    EtlJob,
    Filter,
    JobGraph,
    JobRunner,
    Load,
    Lookup,
    Project,
    Rename,
    RowError,
    RowsSource,
    Schedule,
    Scheduler,
    Sort,
    SurrogateKey,
    TableSource,
    TypeCast,
    Validate,
)


def run_ops(rows, *operators):
    """Push rows through operators without a job wrapper."""
    stream = iter([dict(row) for row in rows])
    for operator in operators:
        stream = operator.process(stream)
    return list(stream)


class TestSources:
    def test_rows_source_is_reiterable_and_isolated(self):
        source = RowsSource([{"a": 1}])
        first = list(source.rows())
        first[0]["a"] = 999
        assert list(source.rows()) == [{"a": 1}]

    def test_table_source_reads_table(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert len(list(TableSource(db, "t").rows())) == 2

    def test_table_source_accepts_query(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        source = TableSource(db, query="SELECT x FROM t WHERE x > ?",
                             params=(1,))
        assert len(list(source.rows())) == 2

    def test_table_source_requires_exactly_one_input(self):
        db = Database()
        with pytest.raises(EtlError):
            TableSource(db)
        with pytest.raises(EtlError):
            TableSource(db, table="t", query="SELECT 1")

    def test_csv_source(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name,age\nada,36\nbob,41\n")
        rows = list(CsvSource(path).rows())
        assert rows == [{"name": "ada", "age": "36"},
                        {"name": "bob", "age": "41"}]

    def test_csv_source_missing_file(self, tmp_path):
        with pytest.raises(EtlError):
            list(CsvSource(tmp_path / "ghost.csv").rows())

    def test_callable_source(self):
        source = CallableSource(lambda: ({"n": i} for i in range(3)))
        assert len(list(source.rows())) == 3
        assert len(list(source.rows())) == 3  # re-iterable


class TestOperators:
    def test_project_keeps_listed_columns(self):
        rows = run_ops([{"a": 1, "b": 2}], Project(["a"]))
        assert rows == [{"a": 1}]

    def test_project_missing_column_raises_by_default(self):
        with pytest.raises(RowError):
            run_ops([{"a": 1}], Project(["z"]))

    def test_project_requires_columns(self):
        with pytest.raises(EtlError):
            Project([])

    def test_rename(self):
        rows = run_ops([{"old": 1}], Rename({"old": "new"}))
        assert rows == [{"new": 1}]

    def test_filter(self):
        rows = run_ops([{"x": 1}, {"x": 5}],
                       Filter(lambda row: row["x"] > 2, "x>2"))
        assert rows == [{"x": 5}]

    def test_derive(self):
        rows = run_ops([{"x": 2}], Derive("y", lambda row: row["x"] * 10))
        assert rows == [{"x": 2, "y": 20}]

    def test_typecast_converts_values(self):
        rows = run_ops(
            [{"n": "3", "f": "2.5", "b": "yes", "d": "2020-01-02"}],
            TypeCast({"n": "int", "f": "float", "b": "bool", "d": "date"}))
        assert rows == [{"n": 3, "f": 2.5, "b": True,
                         "d": datetime.date(2020, 1, 2)}]

    def test_typecast_empty_becomes_null(self):
        rows = run_ops([{"n": ""}], TypeCast({"n": "int"}))
        assert rows == [{"n": None}]

    def test_typecast_bad_value_raises(self):
        with pytest.raises(RowError):
            run_ops([{"n": "abc"}], TypeCast({"n": "int"}))

    def test_typecast_unknown_type_rejected_at_build(self):
        with pytest.raises(EtlError):
            TypeCast({"n": "complex"})

    def test_lookup_enriches(self):
        rows = run_ops(
            [{"code": "fr"}, {"code": "xx"}],
            Lookup("code", {"fr": {"country": "France"}},
                   default={"country": "unknown"}))
        assert rows[0]["country"] == "France"
        assert rows[1]["country"] == "unknown"

    def test_lookup_required_raises_on_miss(self):
        with pytest.raises(RowError):
            run_ops([{"code": "xx"}],
                    Lookup("code", {"fr": {}}, required=True))

    def test_deduplicate(self):
        rows = run_ops(
            [{"k": 1, "v": "a"}, {"k": 1, "v": "b"}, {"k": 2, "v": "c"}],
            Deduplicate(["k"]))
        assert [row["v"] for row in rows] == ["a", "c"]

    def test_sort_multi_key_with_descending(self):
        rows = run_ops(
            [{"a": 1, "b": 2}, {"a": 1, "b": 9}, {"a": 0, "b": 5}],
            Sort(["a", "-b"]))
        assert rows == [{"a": 0, "b": 5}, {"a": 1, "b": 9},
                        {"a": 1, "b": 2}]

    def test_sort_nones_last(self):
        rows = run_ops([{"a": None}, {"a": 1}], Sort(["a"]))
        assert rows == [{"a": 1}, {"a": None}]

    def test_surrogate_key(self):
        rows = run_ops([{"v": "a"}, {"v": "b"}],
                       SurrogateKey("id", start=100))
        assert [row["id"] for row in rows] == [100, 101]

    def test_aggregate_group_sums(self):
        rows = run_ops(
            [{"g": "x", "v": 1}, {"g": "x", "v": 2}, {"g": "y", "v": 5}],
            Aggregate(["g"], {"total": ("sum", "v"),
                              "n": ("count", "v"),
                              "mean": ("avg", "v")}))
        by_group = {row["g"]: row for row in rows}
        assert by_group["x"]["total"] == 3
        assert by_group["x"]["n"] == 2
        assert by_group["y"]["mean"] == 5

    def test_aggregate_unknown_function_rejected(self):
        with pytest.raises(EtlError):
            Aggregate(["g"], {"out": ("median", "v")})

    def test_validate_passes_good_rows(self):
        rows = run_ops([{"x": 5}],
                       Validate({"positive": lambda row: row["x"] > 0}))
        assert rows == [{"x": 5}]

    def test_validate_raises_on_bad_row(self):
        with pytest.raises(RowError):
            run_ops([{"x": -1}],
                    Validate({"positive": lambda row: row["x"] > 0}))


class TestJobs:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute(
            "CREATE TABLE target (id INTEGER, name TEXT, amount REAL)")
        return database

    def test_probe_job_returns_rows(self):
        job = EtlJob("probe", RowsSource([{"x": 1}, {"x": 2}]),
                     [Filter(lambda row: row["x"] > 1)])
        result = JobRunner().run(job)
        assert result.rows_read == 2
        assert result.output == [{"x": 2}]

    def test_load_appends_rows(self, db):
        job = EtlJob(
            "load", RowsSource([{"id": 1, "name": "a", "amount": 2.0}]),
            load=Load(db, "target"))
        result = JobRunner().run(job)
        assert result.rows_written == 1
        assert db.query_value("SELECT COUNT(*) FROM target") == 1

    def test_load_replace_mode(self, db):
        db.execute("INSERT INTO target VALUES (9, 'old', 0.0)")
        job = EtlJob("reload", RowsSource([{"id": 1, "name": "new"}]),
                     load=Load(db, "target", mode="replace"))
        JobRunner().run(job)
        assert db.query("SELECT id FROM target") == [{"id": 1}]

    def test_load_ignores_extra_columns(self, db):
        job = EtlJob("load", RowsSource([{"id": 1, "junk": "x"}]),
                     load=Load(db, "target"))
        JobRunner().run(job)
        assert db.query_value("SELECT id FROM target") == 1

    def test_load_into_missing_table_fails(self, db):
        job = EtlJob("bad", RowsSource([{"id": 1}]),
                     load=Load(db, "ghost"))
        with pytest.raises(JobExecutionError):
            JobRunner().run(job)

    def test_invalid_load_mode_rejected(self, db):
        with pytest.raises(JobValidationError):
            Load(db, "target", mode="merge")

    def test_fail_policy_aborts_and_rolls_back(self, db):
        rows = [{"id": 1, "amount": "10"},
                {"id": 2, "amount": "oops"},
                {"id": 3, "amount": "30"}]
        job = EtlJob("cast", RowsSource(rows),
                     [TypeCast({"amount": "float"})],
                     load=Load(db, "target"))
        with pytest.raises(JobExecutionError):
            JobRunner(error_policy="fail").run(job)
        assert db.query_value("SELECT COUNT(*) FROM target") == 0

    def test_skip_policy_counts_rejects(self, db):
        rows = [{"id": 1, "amount": "10"},
                {"id": 2, "amount": "oops"},
                {"id": 3, "amount": "30"}]
        job = EtlJob("cast", RowsSource(rows),
                     [TypeCast({"amount": "float"})],
                     load=Load(db, "target"))
        result = JobRunner(error_policy="skip").run(job)
        assert result.rows_read == 3
        assert result.rows_written == 2
        assert result.rows_rejected == 1
        assert "oops" in result.errors[0]

    def test_bad_error_policy_rejected(self):
        with pytest.raises(JobValidationError):
            JobRunner(error_policy="yolo")

    def test_job_validates_operator_types(self):
        with pytest.raises(JobValidationError):
            EtlJob("bad", RowsSource([]), ["not-an-operator"])

    def test_job_describe_lists_steps(self, db):
        job = EtlJob("j", RowsSource([], name="mem"),
                     [Filter(lambda row: True, "all")],
                     load=Load(db, "target"))
        assert job.describe() == [
            "extract(mem)", "filter(all)", "load(target, append)"]

    def test_runner_keeps_history(self):
        runner = JobRunner()
        runner.run(EtlJob("a", RowsSource([{"x": 1}])))
        runner.run(EtlJob("b", RowsSource([])))
        assert [result.job for result in runner.history] == ["a", "b"]


class TestJobGraph:
    def _job(self, name):
        return EtlJob(name, RowsSource([{"n": 1}]))

    def test_execution_order_respects_dependencies(self):
        graph = JobGraph()
        graph.add(self._job("load_fact"), depends_on=["load_dim"])
        graph.add(self._job("load_dim"))
        order = graph.execution_order()
        assert order.index("load_dim") < order.index("load_fact")

    def test_cycle_detected(self):
        graph = JobGraph()
        graph.add(self._job("a"), depends_on=["b"])
        graph.add(self._job("b"), depends_on=["a"])
        with pytest.raises(JobValidationError):
            graph.execution_order()

    def test_unknown_dependency_detected(self):
        graph = JobGraph()
        graph.add(self._job("a"), depends_on=["ghost"])
        with pytest.raises(JobValidationError):
            graph.execution_order()

    def test_duplicate_job_rejected(self):
        graph = JobGraph()
        graph.add(self._job("a"))
        with pytest.raises(JobValidationError):
            graph.add(self._job("a"))

    def test_run_all(self):
        graph = JobGraph()
        graph.add(self._job("a"))
        graph.add(self._job("b"), depends_on=["a"])
        results = graph.run_all(JobRunner())
        assert set(results) == {"a", "b"}


class TestScheduler:
    def _job(self, name="tick"):
        return EtlJob(name, RowsSource([{"n": 1}]))

    def test_schedule_validation(self):
        with pytest.raises(SchedulerError):
            Schedule()
        with pytest.raises(SchedulerError):
            Schedule(every_minutes=5, daily_at="02:00")
        with pytest.raises(SchedulerError):
            Schedule(every_minutes=0)
        with pytest.raises(SchedulerError):
            Schedule(daily_at="25:00")
        with pytest.raises(SchedulerError):
            Schedule(daily_at="2am")

    def test_interval_schedule_runs_repeatedly(self):
        scheduler = Scheduler()
        scheduler.add(self._job(), Schedule(every_minutes=10))
        executed = scheduler.advance(35)
        assert len(executed) == 3
        assert [record.minute for record in executed] == [10, 20, 30]

    def test_daily_schedule(self):
        scheduler = Scheduler()
        scheduler.add(self._job(), Schedule(daily_at="02:00"))
        executed = scheduler.advance(3 * 24 * 60)
        assert len(executed) == 3
        assert executed[0].minute == 2 * 60

    def test_duplicate_job_rejected(self):
        scheduler = Scheduler()
        scheduler.add(self._job(), Schedule(every_minutes=5))
        with pytest.raises(SchedulerError):
            scheduler.add(self._job(), Schedule(every_minutes=5))

    def test_remove(self):
        scheduler = Scheduler()
        scheduler.add(self._job(), Schedule(every_minutes=5))
        scheduler.remove("tick")
        assert scheduler.scheduled_jobs() == []
        with pytest.raises(SchedulerError):
            scheduler.remove("tick")

    def test_negative_advance_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(SchedulerError):
            scheduler.advance(-1)

    def test_fairness_across_owners(self):
        scheduler = Scheduler()
        for tenant in ("t1", "t2", "t3"):
            scheduler.add(self._job(f"{tenant}-job"),
                          Schedule(every_minutes=10), owner=tenant)
        scheduler.advance(100)
        counts = scheduler.runs_by_owner()
        assert counts == {"t1": 10, "t2": 10, "t3": 10}

    def test_round_robin_rotates_first_position(self):
        scheduler = Scheduler()
        scheduler.add(self._job("a-job"), Schedule(every_minutes=10),
                      owner="a")
        scheduler.add(self._job("b-job"), Schedule(every_minutes=10),
                      owner="b")
        scheduler.advance(20)
        first_tick = [record.owner for record in scheduler.log
                      if record.minute == 10]
        second_tick = [record.owner for record in scheduler.log
                       if record.minute == 20]
        assert first_tick != second_tick  # rotation happened


class TestTimeDimensionRows:
    def test_calendar_attributes(self):
        from repro.etl import time_dimension_rows

        rows = list(time_dimension_rows(
            datetime.date(2009, 12, 30), days=4))
        assert [row["time_key"] for row in rows] == [1, 2, 3, 4]
        assert rows[0]["year"] == 2009
        assert rows[0]["quarter"] == "Q4"
        assert rows[2]["year"] == 2010  # crosses the year boundary
        assert rows[2]["month"] == "2010-01"
        assert rows[0]["weekday"] == "wednesday"

    def test_loadable_through_a_job(self):
        from repro.etl import CallableSource, time_dimension_rows

        db = Database()
        db.execute(
            "CREATE TABLE dim_time (time_key INTEGER PRIMARY KEY, "
            "year INTEGER, quarter TEXT, month TEXT, day DATE, "
            "weekday TEXT)")
        job = EtlJob(
            "seed-time",
            CallableSource(lambda: time_dimension_rows(
                datetime.date(2009, 1, 1), days=31)),
            load=Load(db, "dim_time"))
        result = JobRunner().run(job)
        assert result.rows_written == 31
        assert db.query_value(
            "SELECT COUNT(DISTINCT weekday) FROM dim_time") == 7

    def test_days_must_be_positive(self):
        from repro.etl import time_dimension_rows

        with pytest.raises(EtlError):
            list(time_dimension_rows(datetime.date(2009, 1, 1), 0))
