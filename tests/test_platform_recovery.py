"""Platform-wide crash recovery: the data-directory mode.

An :class:`OdbisPlatform` built with ``data_dir=`` persists every
tenant database through a WAL and every platform-state stream (tenant
registry, ETL scheduler, ESB dead letters) through a journal.
Constructing a second platform over the same directory *is* crash
recovery — these tests kill platforms (politely and mid-write) and
assert the successor serves the same tenants, data, views, quarantine
postures and dead letters.

Also hosts the gateway stale-cache LRU tests (satellite b): the
degraded-serving cache is bounded, evicts least-recently-used, and a
stale hit counts as a use.
"""

import pytest

from repro.core import OdbisPlatform, RequestGateway, TenancyMode
from repro.core.gateway import DEFAULT_STALE_CACHE_CAPACITY
from repro.core.tenancy import TenantManager
from repro.etl import CallableSource, RowsSource, Schedule
from repro.web import JsonResponse, WebApplication

TENANT = "acme"


def build_platform(data_dir, fsync="off"):
    return OdbisPlatform(mode=TenancyMode.ISOLATED, data_dir=data_dir,
                         fsync=fsync)


def populate(platform):
    """Exercise every durable stream; return the facts to re-check."""
    platform.provisioning.provision(TENANT, "Acme Corp", plan="team")
    platform.provisioning.provision("globex", "Globex", plan="starter")
    warehouse = platform.tenants.context(TENANT).warehouse_db
    warehouse.execute("CREATE TABLE sales (id INTEGER PRIMARY KEY, "
                      "region TEXT, amount INTEGER)")
    warehouse.executemany(
        "INSERT INTO sales (id, region, amount) VALUES (?, ?, ?)",
        [(i, "emea" if i % 2 else "apac", i * 10)
         for i in range(1, 21)])
    warehouse.execute("CREATE VIEW big_sales AS SELECT id, amount "
                      "FROM sales WHERE amount > 100")

    # A dead letter: a broken channel handler.
    bus = platform.resources.bus
    bus.create_channel("orders")

    def broken(message):
        raise RuntimeError("handler down")

    bus.service_activator("orders", broken)
    bus.send("orders", {"order": 1})

    # ETL: one healthy scheduled job, one that quarantines.
    integration = platform.integration
    warehouse.execute("CREATE TABLE ticks (x INTEGER)")
    integration.define_job(TENANT, "tick", RowsSource([{"x": 1}]),
                           target_table="ticks")
    integration.schedule_job(TENANT, "tick", Schedule(every_minutes=30))

    def always_down():
        raise OSError("upstream gone")

    integration.define_job(TENANT, "doomed",
                           CallableSource(always_down),
                           target_table="ticks")
    integration.schedule_job(TENANT, "doomed",
                             Schedule(every_minutes=10))
    integration.advance_clock(60)  # quarantines "doomed", runs "tick"
    assert integration.quarantined_jobs(TENANT) == ["doomed"]

    # A platform operator account (to hit /admin/health later).
    platform.admin.create_account("root", "s3cret",
                                  roles=["platform-admin"])
    return {
        "warehouse_fingerprint": warehouse.state_fingerprint(),
        "dead_letter_ids": [message.message_id
                            for message in bus.dead_letters],
        "run_history": integration.run_history(TENANT),
        "clock": integration.scheduler.now,
    }


def redefine_jobs(platform):
    """Re-register the job *code* after a restart (callables cannot be
    journaled); recovered scheduler state re-attaches by name."""
    integration = platform.integration
    integration.define_job(TENANT, "tick", RowsSource([{"x": 1}]),
                           target_table="ticks")
    integration.schedule_job(TENANT, "tick", Schedule(every_minutes=30))

    def always_down():
        raise OSError("upstream gone")

    integration.define_job(TENANT, "doomed",
                           CallableSource(always_down),
                           target_table="ticks")
    integration.schedule_job(TENANT, "doomed",
                             Schedule(every_minutes=10))


class TestPlatformRoundTrip:
    def test_everything_survives_a_restart(self, tmp_path):
        first = build_platform(tmp_path)
        facts = populate(first)
        first.close()
        first.gateway.shutdown()

        second = build_platform(tmp_path)
        try:
            # Tenants, plans and their warehouse state.
            assert sorted(second.tenants.tenant_ids()) \
                == ["acme", "globex"]
            assert second.tenants.context(TENANT).plan == "team"
            warehouse = second.tenants.context(TENANT).warehouse_db
            assert warehouse.state_fingerprint() \
                == facts["warehouse_fingerprint"]
            assert warehouse.query_value(
                "SELECT COUNT(*) FROM big_sales") == 10

            # Dead letters, identity preserved.
            recovered_ids = [message.message_id for message
                             in second.resources.bus.dead_letters]
            assert recovered_ids == facts["dead_letter_ids"]

            # ETL: clock, run history and quarantine posture.
            integration = second.integration
            assert integration.scheduler.now == facts["clock"]
            assert integration.run_history(TENANT) \
                == facts["run_history"]
            redefine_jobs(second)
            assert integration.quarantined_jobs(TENANT) == ["doomed"]

            # The recovered security store authenticates both the
            # tenant admin and the operator account.
            second.admin.login(f"admin@{TENANT}", "changeme")
            second.admin.login("root", "s3cret")
        finally:
            second.close()
            second.gateway.shutdown()

    def test_unquarantine_survives_a_restart(self, tmp_path):
        first = build_platform(tmp_path)
        populate(first)
        first.integration.unquarantine_job(TENANT, "doomed")
        first.close()
        first.gateway.shutdown()

        second = build_platform(tmp_path)
        try:
            redefine_jobs(second)
            assert second.integration.quarantined_jobs(TENANT) == []
        finally:
            second.close()
            second.gateway.shutdown()

    def test_checkpoint_then_snapshot_recovery(self, tmp_path):
        first = build_platform(tmp_path)
        facts = populate(first)
        ordinals = first.checkpoint()
        assert ordinals["dw-acme"] == 1
        # Post-checkpoint delta: one more committed row.
        warehouse = first.tenants.context(TENANT).warehouse_db
        warehouse.execute("INSERT INTO sales (id, region, amount) "
                          "VALUES (99, 'apac', 990)")
        delta_fingerprint = warehouse.state_fingerprint()
        first.close()
        first.gateway.shutdown()

        second = build_platform(tmp_path)
        try:
            recovered = second.tenants.context(TENANT).warehouse_db
            assert recovered.recovery_info["snapshot_loaded"] is True
            assert recovered.recovery_info[
                "transactions_replayed"] == 1
            assert recovered.state_fingerprint() == delta_fingerprint
        finally:
            second.close()
            second.gateway.shutdown()

    def test_checkpoint_requires_a_data_dir(self):
        platform = OdbisPlatform(mode=TenancyMode.ISOLATED)
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            platform.checkpoint()
        platform.gateway.shutdown()

    def test_repeated_restarts_are_stable(self, tmp_path):
        """Recovery replay must be idempotent: three generations of
        the same platform converge, never duplicating defaults,
        datasources, accounts or journal records."""
        first = build_platform(tmp_path)
        facts = populate(first)
        first.close()
        first.gateway.shutdown()
        for _ in range(2):
            platform = build_platform(tmp_path)
            warehouse = platform.tenants.context(TENANT).warehouse_db
            assert warehouse.state_fingerprint() \
                == facts["warehouse_fingerprint"]
            sources = platform.metadata.datasources(TENANT)
            assert [entry["name"] for entry in sources] \
                == ["warehouse"]
            accounts = platform.admin.accounts_of_tenant(TENANT)
            assert accounts.count(f"admin@{TENANT}") == 1
            platform.close()
            platform.gateway.shutdown()


class TestTornPlatformLogs:
    def setup_dir(self, tmp_path):
        platform = build_platform(tmp_path)
        platform.provisioning.provision(TENANT, "Acme", plan="team")
        warehouse = platform.tenants.context(TENANT).warehouse_db
        warehouse.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        warehouse.execute("INSERT INTO t (id, v) VALUES (1, 'safe')")
        committed = warehouse.wal.commit_offsets[-1]
        warehouse.execute("INSERT INTO t (id, v) VALUES (2, 'torn')")
        platform.close()
        platform.gateway.shutdown()
        return tmp_path / "tenants" / "dw-acme.wal", committed

    def test_truncated_wal_tail_rolls_back_to_the_commit(
            self, tmp_path):
        wal_path, _ = self.setup_dir(tmp_path)
        wal_path.write_bytes(wal_path.read_bytes()[:-5])

        platform = build_platform(tmp_path)
        try:
            warehouse = platform.tenants.context(TENANT).warehouse_db
            assert warehouse.recovery_info["tail_reason"] in (
                "torn-header", "torn-record")
            rows = warehouse.query("SELECT id, v FROM t ORDER BY id")
            assert rows == [{"id": 1, "v": "safe"}]
        finally:
            platform.close()
            platform.gateway.shutdown()

    def test_bad_checksum_mid_log_keeps_the_prefix(self, tmp_path):
        wal_path, committed = self.setup_dir(tmp_path)
        data = bytearray(wal_path.read_bytes())
        data[committed + 9] ^= 0xFF  # corrupt the next frame's bytes
        wal_path.write_bytes(bytes(data))

        platform = build_platform(tmp_path)
        try:
            warehouse = platform.tenants.context(TENANT).warehouse_db
            assert warehouse.recovery_info["tail_reason"] \
                == "bad-checksum"
            assert warehouse.query_value("SELECT COUNT(*) FROM t") == 1
            # The healed log keeps accepting commits.
            warehouse.execute(
                "INSERT INTO t (id, v) VALUES (3, 'after')")
        finally:
            platform.close()
            platform.gateway.shutdown()


class TestHealthEndpoint:
    def test_admin_health_reports_wal_lag_and_checkpoints(
            self, tmp_path):
        platform = build_platform(tmp_path)
        try:
            populate(platform)
            session = platform.admin.login("root", "s3cret")
            headers = {"X-Auth-Token": session.token}

            response = platform.web.request("GET", "/admin/health",
                                            headers=headers)
            assert response.status == 200
            before = response.json()["tenants"][TENANT]
            assert before["wal_lag"] > 0
            assert before["last_checkpoint"] is None

            platform.checkpoint()
            response = platform.web.request("GET", "/admin/health",
                                            headers=headers)
            after = response.json()["tenants"][TENANT]
            assert after["wal_lag"] == 0
            assert after["last_checkpoint"] == 1
        finally:
            platform.close()
            platform.gateway.shutdown()

    def test_health_omits_wal_fields_without_a_data_dir(self):
        platform = OdbisPlatform(mode=TenancyMode.ISOLATED)
        try:
            platform.provisioning.provision(TENANT, "Acme",
                                            plan="team")
            report = platform.health_report().to_dict()
            entry = report["tenants"].get(TENANT, {})
            assert "wal_lag" not in entry
        finally:
            platform.gateway.shutdown()


class TestStaleCacheLru:
    """Satellite (b): the degraded-serving cache is LRU-bounded."""

    def build(self, capacity):
        web = WebApplication("lru")
        for i in range(5):
            path, n = f"/tenants/{TENANT}/item{i}", i
            web.get(path,
                    (lambda n: lambda request:
                     JsonResponse({"n": n}))(n))
        tenants = TenantManager()
        tenants.register(TENANT, "Acme", "team")
        return RequestGateway(web, tenants, max_workers=2,
                              stale_cache_capacity=capacity)

    def fetch(self, gateway, i):
        response = gateway.submit(
            "GET", f"/tenants/{TENANT}/item{i}").result(30)
        assert response.status == 200
        return response

    def degraded(self, gateway, i):
        return gateway.submit(
            "GET", f"/tenants/{TENANT}/item{i}").result(30)

    def test_default_capacity(self):
        assert DEFAULT_STALE_CACHE_CAPACITY == 1024
        gateway = self.build(3)
        assert gateway.stale_cache_capacity == 3
        gateway.shutdown()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            self.build(0)

    def test_oldest_entry_is_evicted(self):
        gateway = self.build(3)
        for i in range(4):
            self.fetch(gateway, i)   # item0 filled first, evicted last
        breaker = gateway.breaker(TENANT)
        for _ in range(gateway.breaker_threshold):
            breaker.record_failure()
        assert breaker.state == "open"
        # item0 fell off the LRU end: degraded serving has no body
        # for it, but items 1-3 still serve stale.
        assert not self.degraded(gateway, 0).stale
        for i in (1, 2, 3):
            response = self.degraded(gateway, i)
            assert response.stale
            assert response.json()["data"] == {"n": i}
        gateway.shutdown()

    def test_a_stale_hit_counts_as_a_use(self):
        gateway = self.build(3)
        for i in range(3):
            self.fetch(gateway, i)
        breaker = gateway.breaker(TENANT)
        for _ in range(gateway.breaker_threshold):
            breaker.record_failure()
        # Hitting item0 while degraded refreshes its recency...
        assert self.degraded(gateway, 0).stale
        breaker.record_success()
        # ...so the next insertion evicts item1, not item0.
        self.fetch(gateway, 3)
        for _ in range(gateway.breaker_threshold):
            breaker.record_failure()
        assert self.degraded(gateway, 0).stale
        assert not self.degraded(gateway, 1).stale
        assert self.degraded(gateway, 3).stale
        gateway.shutdown()
