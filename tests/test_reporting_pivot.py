"""Tests for pivot (crosstab) rendering and MDX member enumeration."""

import pytest

from repro.engine import Database
from repro.errors import MdxSyntaxError, ReportDefinitionError
from repro.olap import (
    CubeDimension,
    CubeSchema,
    Measure,
    OlapEngine,
    parse_mdx,
)
from repro.reporting import pivot_cellset
from repro.reporting.render import render_table_text


@pytest.fixture
def engine():
    db = Database()
    db.execute(
        "CREATE TABLE dim_t (t_key INTEGER PRIMARY KEY, year INTEGER)")
    db.executemany("INSERT INTO dim_t VALUES (?, ?)",
                   [(1, 2020), (2, 2021), (3, 2022)])
    db.execute(
        "CREATE TABLE dim_s (s_key INTEGER PRIMARY KEY, region TEXT)")
    db.executemany("INSERT INTO dim_s VALUES (?, ?)",
                   [(1, "N"), (2, "S")])
    db.execute(
        "CREATE TABLE f (t_key INTEGER, s_key INTEGER, revenue REAL)")
    db.executemany(
        "INSERT INTO f VALUES (?, ?, ?)",
        [(1, 1, 10.0), (1, 2, 20.0), (2, 1, 5.0), (3, 2, 7.0)])
    schema = CubeSchema(
        "C", "f", [Measure("revenue", "revenue")],
        [CubeDimension("T", "dim_t", "t_key", ["year"]),
         CubeDimension("S", "dim_s", "s_key", ["region"])])
    return OlapEngine(db, schema)


class TestPivot:
    def test_crosstab_shape(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        table = pivot_cellset(cells, "revenue")
        assert table.spec.columns == ["T.year", "N", "S", "TOTAL"]
        assert len(table.rows) == 4  # 3 years + TOTAL row

    def test_cell_values_and_gaps(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        table = pivot_cellset(cells, "revenue")
        by_year = {row["T.year"]: row for row in table.rows}
        assert by_year[2020]["N"] == 10.0
        assert by_year[2020]["S"] == 20.0
        assert by_year[2021]["S"] is None  # no facts for that cell

    def test_totals(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        table = pivot_cellset(cells, "revenue")
        by_year = {row["T.year"]: row for row in table.rows}
        assert by_year[2020]["TOTAL"] == 30.0
        assert by_year["TOTAL"]["N"] == 15.0
        assert by_year["TOTAL"]["TOTAL"] == 42.0

    def test_totals_can_be_disabled(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        table = pivot_cellset(cells, "revenue", totals=False)
        assert "TOTAL" not in table.spec.columns
        assert len(table.rows) == 3

    def test_renderable_as_text(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        text = render_table_text(pivot_cellset(cells, "revenue"))
        assert "TOTAL" in text
        assert "2020" in text

    def test_requires_two_axes(self, engine):
        cells = engine.query(["revenue"], [("T", "year")])
        with pytest.raises(ReportDefinitionError):
            pivot_cellset(cells, "revenue")

    def test_unknown_measure_rejected(self, engine):
        cells = engine.query(["revenue"],
                             [("T", "year"), ("S", "region")])
        with pytest.raises(ReportDefinitionError):
            pivot_cellset(cells, "profit")


class TestMdxMemberEnumeration:
    def test_explicit_members_restrict_rows(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[T].[year].[2020], [T].[year].[2021]} ON ROWS FROM [C]")
        cells = query.execute(engine)
        assert [row["T.year"] for row in cells.rows] == [2020, 2021]

    def test_text_literal_coerced_to_numeric_member(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[T].[year].[2022]} ON ROWS FROM [C]")
        cells = query.execute(engine)
        assert cells.rows == [{"T.year": 2022, "revenue": 7.0}]

    def test_members_and_enumeration_mix(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[S].[region].Members, [T].[year].[2020]} ON ROWS "
            "FROM [C]")
        cells = query.execute(engine)
        # Region expands fully; year restricted to 2020.
        assert {row["S.region"] for row in cells.rows} == {"N", "S"}
        assert all(row["T.year"] == 2020 for row in cells.rows)

    def test_unknown_member_text_passes_through_and_matches_nothing(
            self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[T].[year].[1999]} ON ROWS FROM [C]")
        assert query.execute(engine).rows == []

    def test_two_segment_row_entry_still_rejected(self):
        with pytest.raises(MdxSyntaxError):
            parse_mdx("SELECT {[Measures].[x]} ON COLUMNS, "
                      "{[T].[year]} ON ROWS FROM [C]")
