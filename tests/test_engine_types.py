"""Unit tests for SQL value types and coercion."""

import datetime

import pytest

from repro.engine.types import SqlType, coerce_value, is_comparable, sort_key
from repro.errors import TypeMismatch


class TestTypeResolution:
    def test_resolves_canonical_names(self):
        assert SqlType.from_sql("INTEGER") is SqlType.INTEGER
        assert SqlType.from_sql("TEXT") is SqlType.TEXT

    def test_resolves_aliases(self):
        assert SqlType.from_sql("int") is SqlType.INTEGER
        assert SqlType.from_sql("VARCHAR") is SqlType.TEXT
        assert SqlType.from_sql("double") is SqlType.REAL
        assert SqlType.from_sql("bool") is SqlType.BOOLEAN
        assert SqlType.from_sql("datetime") is SqlType.TIMESTAMP

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatch):
            SqlType.from_sql("BLOBFISH")


class TestCoercion:
    def test_none_passes_through_every_type(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_integer_accepts_int(self):
        assert coerce_value(7, SqlType.INTEGER) == 7

    def test_integer_accepts_integral_float(self):
        assert coerce_value(7.0, SqlType.INTEGER) == 7

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatch):
            coerce_value(7.5, SqlType.INTEGER)

    def test_integer_rejects_text(self):
        with pytest.raises(TypeMismatch):
            coerce_value("7", SqlType.INTEGER)

    def test_real_widens_int(self):
        value = coerce_value(3, SqlType.REAL)
        assert value == 3.0
        assert isinstance(value, float)

    def test_real_rejects_bool(self):
        with pytest.raises(TypeMismatch):
            coerce_value(True, SqlType.REAL)

    def test_text_only_accepts_str(self):
        assert coerce_value("x", SqlType.TEXT) == "x"
        with pytest.raises(TypeMismatch):
            coerce_value(1, SqlType.TEXT)

    def test_boolean_accepts_zero_one(self):
        assert coerce_value(1, SqlType.BOOLEAN) is True
        assert coerce_value(0, SqlType.BOOLEAN) is False

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(TypeMismatch):
            coerce_value(2, SqlType.BOOLEAN)

    def test_date_parses_iso_string(self):
        assert coerce_value("2020-01-31", SqlType.DATE) == \
            datetime.date(2020, 1, 31)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeMismatch):
            coerce_value("not-a-date", SqlType.DATE)

    def test_date_truncates_datetime(self):
        stamp = datetime.datetime(2020, 5, 4, 12, 30)
        assert coerce_value(stamp, SqlType.DATE) == datetime.date(2020, 5, 4)

    def test_timestamp_parses_iso_string(self):
        assert coerce_value("2020-01-31T10:00:00", SqlType.TIMESTAMP) == \
            datetime.datetime(2020, 1, 31, 10)

    def test_timestamp_widens_date(self):
        assert coerce_value(datetime.date(2020, 1, 2), SqlType.TIMESTAMP) == \
            datetime.datetime(2020, 1, 2)


class TestComparability:
    def test_numbers_are_comparable(self):
        assert is_comparable(1, 2.5)

    def test_null_is_never_comparable(self):
        assert not is_comparable(None, 1)
        assert not is_comparable("a", None)

    def test_mixed_types_are_not_comparable(self):
        assert not is_comparable("a", 1)

    def test_bools_compare_only_with_bools(self):
        assert is_comparable(True, False)
        assert not is_comparable(True, 1)


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_dates_order_chronologically(self):
        dates = [datetime.date(2021, 1, 1), datetime.date(2020, 6, 1)]
        assert sorted(dates, key=sort_key)[0] == datetime.date(2020, 6, 1)

    def test_mixed_numeric_orders_by_value(self):
        assert sorted([2, 1.5, 3], key=sort_key) == [1.5, 2, 3]
