"""Regression tests for the failure paths the resilience PR hardened.

Each test here failed before the fix it covers:

* ``JobRunner`` let non-``RowError`` exceptions (operator bugs,
  load-step write errors) escape raw instead of normalizing them into
  :class:`JobExecutionError`,
* ``Scheduler.advance`` aborted the whole round-robin tick when one
  job raised, silently starving later owners of their due runs,
* ``RequestGateway.shutdown`` let new submissions race the pool
  teardown instead of rejecting them with a typed error,
* the ESB dead-letter path was untested for handlers that fail *while
  dead-lettering*, for retry-exhausted publishes, and for correlation
  survival through retry → dead-letter.
"""

import threading

import pytest

from repro.core.gateway import RequestGateway
from repro.core.resilience import FakeClock, RetryPolicy
from repro.core.tenancy import TenantManager
from repro.engine.database import Database
from repro.errors import (
    EsbError,
    GatewayShutdownError,
    JobExecutionError,
)
from repro.esb import MessageBus
from repro.etl import (
    Derive,
    EtlJob,
    JobRunner,
    Load,
    RowsSource,
    Schedule,
    Scheduler,
)
from repro.etl.sources import CallableSource
from repro.web import JsonResponse, WebApplication


def warehouse():
    database = Database("wh")
    database.execute(
        "CREATE TABLE facts (id INTEGER PRIMARY KEY, amount INTEGER)")
    return database


class TestJobFailureNormalization:
    def test_throwing_operator_is_wrapped_not_raw(self):
        def explode(row):
            raise ValueError("operator bug")

        job = EtlJob("boom", RowsSource([{"id": 1}]),
                     operators=[Derive("x", explode)])
        with pytest.raises(JobExecutionError) as info:
            JobRunner().run(job)
        assert "'boom' failed" in str(info.value)
        assert isinstance(info.value.__cause__, ValueError)

    def test_load_write_error_is_wrapped_not_raw(self):
        database = warehouse()
        # Second row violates the PRIMARY KEY: the write step raises
        # a ConstraintViolation, which must surface as a chained
        # JobExecutionError, and the transaction must roll back.
        job = EtlJob("dup", RowsSource([{"id": 1, "amount": 10},
                                        {"id": 1, "amount": 20}]),
                     load=Load(database, "facts"))
        with pytest.raises(JobExecutionError) as info:
            JobRunner().run(job)
        assert "'dup' failed" in str(info.value)
        assert info.value.__cause__ is not None
        assert database.query("SELECT * FROM facts") == []

    def test_throwing_source_is_wrapped_not_raw(self):
        def bad_source():
            raise OSError("source system down")

        job = EtlJob("down", CallableSource(bad_source))
        with pytest.raises(JobExecutionError) as info:
            JobRunner().run(job)
        assert isinstance(info.value.__cause__, OSError)

    def test_retry_policy_reruns_the_whole_job(self):
        calls = []

        def flaky_rows():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient extract failure")
            return [{"id": 1, "amount": 5}]

        database = warehouse()
        job = EtlJob("flaky", CallableSource(flaky_rows),
                     load=Load(database, "facts"))
        runner = JobRunner(clock=FakeClock())
        result = runner.run(job, retry_policy=RetryPolicy(
            attempts=3, base_delay=1.0))
        assert result.attempts == 3
        assert result.rows_written == 1
        # Failed attempts rolled back; exactly one row landed.
        assert len(database.query("SELECT * FROM facts")) == 1

    def test_retry_exhaustion_is_still_a_job_execution_error(self):
        def always_down():
            raise OSError("hard down")

        job = EtlJob("dead", CallableSource(always_down))
        runner = JobRunner(clock=FakeClock())
        with pytest.raises(JobExecutionError) as info:
            runner.run(job, retry_policy=RetryPolicy(attempts=2))
        assert "after 2 attempts" in str(info.value)


class TestSchedulerTickIsolation:
    def failing_job(self, name="bad"):
        def explode():
            raise OSError("mid-tick failure")
        return EtlJob(name, CallableSource(explode))

    def healthy_job(self, name="good"):
        return EtlJob(name, RowsSource([{"x": 1}]))

    def test_failed_job_records_and_tick_continues(self):
        scheduler = Scheduler()
        scheduler.add(self.failing_job(), Schedule(every_minutes=10),
                      owner="acme")
        scheduler.add(self.healthy_job(), Schedule(every_minutes=10),
                      owner="globex")
        records = scheduler.advance(10)
        # Both owners got their due run: the failure did not abort
        # the round-robin.
        assert {record.owner for record in records} == \
            {"acme", "globex"}
        by_job = {record.job: record for record in records}
        assert by_job["bad"].status == "failed"
        assert by_job["bad"].result is None
        assert "mid-tick failure" in by_job["bad"].error
        assert by_job["good"].status == "ok"
        assert by_job["good"].result.rows_written == 1

    def test_later_ticks_keep_running_after_failures(self):
        scheduler = Scheduler()
        scheduler.add(self.failing_job(), Schedule(every_minutes=10),
                      owner="acme")
        scheduler.add(self.healthy_job(), Schedule(every_minutes=10),
                      owner="globex")
        scheduler.advance(30)
        good_runs = [record for record in scheduler.log
                     if record.job == "good"
                     and record.status == "ok"]
        assert len(good_runs) == 3  # minutes 10, 20, 30 all served

    def test_quarantine_after_consecutive_failures(self):
        scheduler = Scheduler(quarantine_after=2)
        scheduler.add(self.failing_job(), Schedule(every_minutes=10),
                      owner="acme")
        scheduler.advance(40)
        statuses = [record.status for record in scheduler.log]
        # Two real failures, then skipped-and-reported — never dropped.
        assert statuses == ["failed", "failed",
                            "quarantined", "quarantined"]
        assert scheduler.quarantined_jobs() == ["bad"]

    def test_unquarantine_readmits_the_job(self):
        scheduler = Scheduler(quarantine_after=1)
        scheduler.add(self.failing_job(), Schedule(every_minutes=10),
                      owner="acme")
        scheduler.advance(20)
        assert scheduler.quarantined_jobs() == ["bad"]
        scheduler.unquarantine("bad")
        assert scheduler.quarantined_jobs() == []
        scheduler.advance(10)
        assert scheduler.log[-1].status == "failed"  # ran again

    def test_success_resets_the_consecutive_failure_count(self):
        flag = {"fail": True}

        def sometimes():
            if flag["fail"]:
                raise OSError("flaky")
            return [{"x": 1}]

        scheduler = Scheduler(quarantine_after=2)
        scheduler.add(EtlJob("flappy", CallableSource(sometimes)),
                      Schedule(every_minutes=10), owner="acme")
        scheduler.advance(10)   # failure #1
        flag["fail"] = False
        scheduler.advance(10)   # success: counter resets
        flag["fail"] = True
        scheduler.advance(10)   # failure #1 again, not #2
        assert scheduler.quarantined_jobs() == []


class TestGatewayShutdown:
    def build(self):
        web = WebApplication("test")
        web.get("/ping", lambda r: JsonResponse({"status": "up"}))
        return RequestGateway(web, TenantManager(), max_workers=2)

    def test_submit_during_shutdown_raises_typed_error(self):
        gateway = self.build()
        release = threading.Event()
        entered = threading.Event()

        def slow(request):
            entered.set()
            release.wait(30)
            return JsonResponse({"status": "done"})

        gateway.web.get("/slow", slow)
        inflight = gateway.submit("GET", "/slow")
        assert entered.wait(30)

        closer = threading.Thread(target=gateway.shutdown)
        closer.start()
        try:
            # The drain flag is visible before the pool is touched:
            # this submit can no longer race the teardown.
            deadline = threading.Event()
            raised = []
            while not raised and not deadline.wait(0.01):
                try:
                    gateway.submit("GET", "/ping")
                except GatewayShutdownError:
                    raised.append(True)
            assert raised
        finally:
            release.set()
            closer.join(30)
        # The in-flight request drained to completion, not cancelled.
        assert inflight.result(30).json() == {"status": "done"}

    def test_gateway_serves_again_after_clean_shutdown(self):
        gateway = self.build()
        assert gateway.submit("GET", "/ping").result(30).ok
        gateway.shutdown()
        assert gateway.submit("GET", "/ping").result(30).ok
        gateway.shutdown()


class TestEsbDeadLetterPaths:
    def test_failing_dead_letter_handler_is_bounded(self):
        bus = MessageBus(max_hops=5)
        bus.create_channel("orders")

        def broken(message):
            raise ValueError("handler down")

        bus.service_activator("orders", broken)
        bus.service_activator("dead-letter", broken)
        # The failing dead-letter handler consumes the hop budget and
        # trips the loop guard — bounded, never infinite recursion.
        with pytest.raises(EsbError):
            bus.send("orders", {"id": 1})
        # Every hop still parked its message on the dead-letter queue,
        # and every dead letter correlates with the one origin.
        assert 1 <= len(bus.dead_letters) <= bus.max_hops + 1
        origins = {dead.correlation_id for dead in bus.dead_letters}
        assert len(origins) == 1

    def test_failing_dead_letter_handler_bounded_under_retry(self):
        bus = MessageBus(
            max_hops=3,
            retry_policy=RetryPolicy(attempts=2,
                                     non_retryable=(EsbError,)),
            clock=FakeClock())
        bus.create_channel("orders")
        calls = []

        def broken(message):
            calls.append(1)
            raise ValueError("handler down")

        bus.service_activator("orders", broken)
        bus.service_activator("dead-letter", broken)
        with pytest.raises(EsbError):
            bus.send("orders", {"id": 1})
        # Retries multiply the handler invocations but the recursion
        # is still capped by the hop budget.
        assert len(calls) <= 2 * (bus.max_hops + 2)

    def test_retry_exhausted_publish_dead_letters_with_attempts(self):
        clock = FakeClock()
        bus = MessageBus(
            retry_policy=RetryPolicy(attempts=3, base_delay=1.0,
                                     non_retryable=(EsbError,)),
            clock=clock)
        bus.create_channel("orders")
        calls = []

        def always_down(message):
            calls.append(1)
            raise ValueError("endpoint down")

        bus.service_activator("orders", always_down)
        bus.send("orders", {"id": 7})
        assert len(calls) == 3  # retried, then gave up
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.headers["attempts"] == 3
        assert dead.headers["error"] == "endpoint down"
        assert dead.headers["failed_channel"] == "orders"
        # Backoff went through the injected clock, not time.sleep.
        assert clock.slept == [1.0, 2.0]
        assert bus.retry_log == [("orders", dead.correlation_id, 3)]

    def test_transient_failure_recovers_within_retry_budget(self):
        bus = MessageBus(
            retry_policy=RetryPolicy(attempts=3,
                                     non_retryable=(EsbError,)),
            clock=FakeClock())
        bus.create_channel("orders")
        calls = []

        def flaky(message):
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("transient")

        bus.service_activator("orders", flaky)
        bus.send("orders", {"id": 1})
        assert len(calls) == 2
        assert bus.dead_letters == []  # recovered, nothing parked

    def test_correlation_survives_retry_then_dead_letter(self):
        bus = MessageBus(
            retry_policy=RetryPolicy(attempts=2,
                                     non_retryable=(EsbError,)),
            clock=FakeClock())
        bus.create_channel("raw")
        bus.create_channel("cooked")
        bus.transformer("raw", lambda payload: {**payload,
                                                "cooked": True},
                        "cooked")

        def always_down(message):
            raise ValueError("sink down")

        bus.service_activator("cooked", always_down)
        origin = bus.send("raw", {"id": 9})
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        # The dead letter correlates with the *originating* message,
        # across the transformer hop, the retries and the failure.
        assert dead.correlation_id == origin.message_id
        assert dead.payload == {"id": 9, "cooked": True}
        assert dead.headers["attempts"] == 2

    def test_unknown_channel_still_raises_esb_error(self):
        bus = MessageBus(
            retry_policy=RetryPolicy(attempts=3,
                                     non_retryable=(EsbError,)),
            clock=FakeClock())
        with pytest.raises(EsbError):
            bus.send("nope", {})
