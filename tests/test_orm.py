"""Unit and integration tests for the ORM persistence layer."""

import pytest

from repro.engine import Database
from repro.errors import (
    ConstraintViolation,
    EntityNotFound,
    MappingError,
    OrmError,
    StaleSessionError,
)
from repro.orm import (
    Entity,
    FieldSpec,
    Repository,
    Session,
    create_schema,
    entity,
    mapping_of,
)


@entity(table="users", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("username", "TEXT", nullable=False, unique=True),
    FieldSpec("email", "TEXT"),
    FieldSpec("active", "BOOLEAN", default=True),
])
class User(Entity):
    pass


@entity(table="projects", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("name", "TEXT", nullable=False),
    FieldSpec("owner_id", "INTEGER"),
])
class Project(Entity):
    pass


@pytest.fixture
def db():
    database = Database()
    create_schema(database, [User, Project])
    return database


@pytest.fixture
def session(db):
    return Session(db)


class TestMapping:
    def test_ddl_generation(self):
        ddl = mapping_of(User).ddl()
        assert ddl.startswith("CREATE TABLE users")
        assert "id INTEGER PRIMARY KEY" in ddl
        assert "username TEXT NOT NULL UNIQUE" in ddl
        assert "active BOOLEAN DEFAULT TRUE" in ddl

    def test_unmapped_class_raises(self):
        class Plain:
            pass

        with pytest.raises(MappingError):
            mapping_of(Plain)

    def test_entity_requires_single_primary_key(self):
        with pytest.raises(MappingError):
            @entity(table="bad", fields=[FieldSpec("a", "INTEGER")])
            class NoKey(Entity):
                pass

    def test_duplicate_fields_rejected(self):
        with pytest.raises(MappingError):
            @entity(table="bad", fields=[
                FieldSpec("id", "INTEGER", primary_key=True),
                FieldSpec("id", "INTEGER"),
            ])
            class Duplicated(Entity):
                pass

    def test_generated_non_key_rejected(self):
        with pytest.raises(MappingError):
            FieldSpec("x", "INTEGER", generated=True)

    def test_constructor_rejects_unknown_fields(self):
        with pytest.raises(MappingError):
            User(username="a", shoe_size=42)

    def test_constructor_applies_defaults(self):
        user = User(username="ada")
        assert user.active is True
        assert user.email is None

    def test_create_schema_if_not_exists(self, db):
        create_schema(db, [User], if_not_exists=True)  # no error

    def test_repr_shows_identity(self):
        user = User(username="ada")
        user.id = 7
        assert "id=7" in repr(user)


class TestSessionBasics:
    def test_insert_assigns_generated_key(self, session):
        user = session.add(User(username="ada"))
        session.flush()
        assert user.id == 1
        second = session.add(User(username="bob"))
        session.flush()
        assert second.id == 2

    def test_get_returns_loaded_instance(self, session):
        user = session.add(User(username="ada", email="a@x"))
        session.flush()
        found = session.get(User, user.id)
        assert found.username == "ada"
        assert found.email == "a@x"

    def test_get_missing_returns_none(self, session):
        assert session.get(User, 999) is None

    def test_require_raises_when_missing(self, session):
        with pytest.raises(EntityNotFound):
            session.require(User, 999)

    def test_identity_map_returns_same_object(self, session):
        user = session.add(User(username="ada"))
        session.flush()
        assert session.get(User, user.id) is user

    def test_two_sessions_have_distinct_identity_maps(self, db):
        first = Session(db)
        user = first.add(User(username="ada"))
        first.flush()
        second = Session(db)
        other = second.get(User, user.id)
        assert other is not user
        assert other.username == user.username

    def test_closed_session_raises(self, session):
        session.close()
        with pytest.raises(StaleSessionError):
            session.get(User, 1)

    def test_add_loaded_instance_raises(self, session):
        user = session.add(User(username="ada"))
        session.flush()
        with pytest.raises(OrmError):
            session.add(user)

    def test_add_is_idempotent_before_flush(self, session):
        user = User(username="ada")
        session.add(user)
        session.add(user)
        session.flush()
        assert session.database.query_value(
            "SELECT COUNT(*) FROM users") == 1


class TestDirtyTracking:
    def test_update_on_flush(self, session, db):
        user = session.add(User(username="ada"))
        session.flush()
        user.email = "ada@lovelace.org"
        session.flush()
        assert db.query_value(
            "SELECT email FROM users WHERE id = ?", (user.id,)) == \
            "ada@lovelace.org"

    def test_clean_instances_issue_no_updates(self, session, db):
        user = session.add(User(username="ada"))
        session.flush()
        statements_before = db.statistics["statements"]
        session.flush()
        # Only MAX()-key probes and no UPDATE should have run; in fact a
        # flush with no dirty state runs zero statements.
        assert db.statistics["statements"] == statements_before

    def test_rollback_reverts_in_memory_changes(self, session):
        user = session.add(User(username="ada"))
        session.flush()
        user.email = "changed@x"
        session.rollback()
        assert user.email is None

    def test_rollback_discards_pending_new(self, session, db):
        session.add(User(username="ghost"))
        session.rollback()
        session.flush()
        assert db.query_value("SELECT COUNT(*) FROM users") == 0


class TestDelete:
    def test_delete_removes_row(self, session, db):
        user = session.add(User(username="ada"))
        session.flush()
        session.delete(user)
        session.flush()
        assert db.query_value("SELECT COUNT(*) FROM users") == 0

    def test_delete_unloaded_instance_raises(self, session):
        with pytest.raises(OrmError):
            session.delete(User(username="never-saved"))

    def test_delete_pending_new_just_unregisters(self, session, db):
        user = User(username="ada")
        session.add(user)
        session.delete(user)
        session.flush()
        assert db.query_value("SELECT COUNT(*) FROM users") == 0

    def test_deleted_entity_not_in_identity_map(self, session):
        user = session.add(User(username="ada"))
        session.flush()
        key = user.id
        session.delete(user)
        session.flush()
        assert session.get(User, key) is None


class TestFlushTransactionality:
    def test_failed_flush_rolls_back_everything(self, session, db):
        session.add(User(username="ada"))
        session.add(User(username="ada"))  # duplicate username
        with pytest.raises(ConstraintViolation):
            session.flush()
        assert db.query_value("SELECT COUNT(*) FROM users") == 0

    def test_context_manager_commits(self, db):
        with Session(db) as session:
            session.add(User(username="ada"))
        assert db.query_value("SELECT COUNT(*) FROM users") == 1

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with Session(db) as session:
                session.add(User(username="ada"))
                raise RuntimeError("boom")
        assert db.query_value("SELECT COUNT(*) FROM users") == 0


class TestCriteriaQuery:
    @pytest.fixture
    def populated(self, session):
        session.add_all([
            User(username="ada", email="a@x", active=True),
            User(username="bob", email="b@x", active=False),
            User(username="cy", email=None, active=True),
        ])
        session.flush()
        return session

    def test_filter_by_equality(self, populated):
        users = populated.find(User).filter_by(active=True).list()
        assert {user.username for user in users} == {"ada", "cy"}

    def test_filter_by_none_becomes_is_null(self, populated):
        users = populated.find(User).filter_by(email=None).list()
        assert [user.username for user in users] == ["cy"]

    def test_filter_by_unknown_field_raises(self, populated):
        with pytest.raises(OrmError):
            populated.find(User).filter_by(nope=1)

    def test_raw_where_with_params(self, populated):
        users = populated.find(User) \
            .where("username LIKE ?", ("%b%",)).list()
        assert [user.username for user in users] == ["bob"]

    def test_order_by_descending(self, populated):
        users = populated.find(User).order_by("-username").list()
        assert [user.username for user in users] == ["cy", "bob", "ada"]

    def test_order_by_unknown_field_raises(self, populated):
        with pytest.raises(OrmError):
            populated.find(User).order_by("nope")

    def test_limit_offset(self, populated):
        users = populated.find(User).order_by("username") \
            .limit(1).offset(1).list()
        assert [user.username for user in users] == ["bob"]

    def test_first_returns_none_on_empty(self, populated):
        assert populated.find(User).filter_by(username="zz").first() is None

    def test_one_raises_on_many(self, populated):
        with pytest.raises(OrmError):
            populated.find(User).filter_by(active=True).one()

    def test_count_and_exists(self, populated):
        query = populated.find(User).filter_by(active=True)
        assert query.count() == 2
        assert query.exists()
        assert not populated.find(User).filter_by(username="zz").exists()

    def test_queried_instances_enter_identity_map(self, populated):
        ada_by_query = populated.find(User).filter_by(username="ada").one()
        ada_by_get = populated.get(User, ada_by_query.id)
        assert ada_by_query is ada_by_get


class TestRepository:
    def test_save_and_find(self, session):
        repo = Repository(session, User)
        user = repo.save(User(username="ada"))
        assert repo.find_by_id(user.id).username == "ada"

    def test_save_flushes_updates(self, session, db):
        repo = Repository(session, User)
        user = repo.save(User(username="ada"))
        user.email = "new@x"
        repo.save(user)
        assert db.query_value(
            "SELECT email FROM users WHERE id = ?", (user.id,)) == "new@x"

    def test_find_by_and_count(self, session):
        repo = Repository(session, User)
        repo.save(User(username="ada", active=True))
        repo.save(User(username="bob", active=False))
        assert len(repo.find_by(active=True)) == 1
        assert repo.count() == 2

    def test_delete_by_id(self, session):
        repo = Repository(session, User)
        user = repo.save(User(username="ada"))
        assert repo.delete_by_id(user.id)
        assert not repo.delete_by_id(999)
        assert repo.count() == 0

    def test_find_all(self, session):
        repo = Repository(session, Project)
        repo.save(Project(name="alpha"))
        repo.save(Project(name="beta"))
        assert {p.name for p in repo.find_all()} == {"alpha", "beta"}
