"""Property-based tests for SCD2 history and security resolution."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.etl import EtlJob, JobRunner, RowsSource
from repro.etl.scd import ScdType2Load
from repro.security import AuthenticationManager, SecurityStore

cities = st.sampled_from(["paris", "lyon", "nice", "lille"])


class TestScd2Properties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(cities, min_size=1, max_size=12))
    def test_history_tracks_every_change_exactly_once(self, updates):
        """For one natural key fed a sequence of city values:

        * versions created == number of value *changes* (+1 initial),
        * exactly one current version, holding the last value,
        * validity intervals chain without gaps or overlaps.
        """
        db = Database()
        db.execute(
            "CREATE TABLE d (row_key INTEGER PRIMARY KEY, "
            "nk INTEGER, city TEXT, valid_from DATE, valid_to DATE, "
            "is_current BOOLEAN)")
        changes = 0
        previous = None
        for offset, city in enumerate(updates):
            job = EtlJob(
                "scd", RowsSource([{"nk": 1, "city": city}]),
                load=ScdType2Load(
                    db, "d", ["nk"], ["city"],
                    datetime.date(2009, 1, 1)
                    + datetime.timedelta(days=offset)))
            JobRunner().run(job)
            if city != previous:
                changes += 1
                previous = city

        versions = db.query(
            "SELECT city, valid_from, valid_to, is_current FROM d "
            "WHERE nk = 1 ORDER BY valid_from")
        assert len(versions) == changes
        current = [v for v in versions if v["is_current"]]
        assert len(current) == 1
        assert current[0]["city"] == updates[-1]
        assert current[0]["valid_to"] is None
        # Interval chaining: each closed version ends where the next
        # begins.
        for older, newer in zip(versions, versions[1:]):
            assert older["valid_to"] == newer["valid_from"]

    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.integers(min_value=1, max_value=6),
                           cities, min_size=1, max_size=6))
    def test_keys_are_independent(self, assignment):
        db = Database()
        db.execute(
            "CREATE TABLE d (row_key INTEGER PRIMARY KEY, "
            "nk INTEGER, city TEXT, valid_from DATE, valid_to DATE, "
            "is_current BOOLEAN)")
        rows = [{"nk": key, "city": city}
                for key, city in assignment.items()]
        job = EtlJob("scd", RowsSource(rows),
                     load=ScdType2Load(db, "d", ["nk"], ["city"],
                                       datetime.date(2009, 1, 1)))
        JobRunner().run(job)
        for key, city in assignment.items():
            row = db.query(
                "SELECT city FROM d WHERE nk = ? AND "
                "is_current = TRUE", (key,))
            assert row == [{"city": city}]


role_names = st.sampled_from(["r1", "r2", "r3"])


class TestSecurityProperties:
    @settings(max_examples=20, deadline=None)
    @given(direct=st.sets(role_names, max_size=3),
           via_group=st.sets(role_names, max_size=3))
    def test_effective_authorities_are_exact_union(self, direct,
                                                   via_group):
        """A principal's authorities are exactly the union of the
        authorities of its direct roles and its groups' roles."""
        store = SecurityStore(Database())
        authority_map = {"r1": {"A1"}, "r2": {"A2", "A3"},
                         "r3": {"A3", "A4"}}
        for authority in ("A1", "A2", "A3", "A4"):
            store.create_authority(authority)
        for role, authorities in authority_map.items():
            store.create_role(role, sorted(authorities))
        store.create_group("g", roles=sorted(via_group))
        store.create_user("u", "hash", roles=sorted(direct),
                          groups=["g"])

        principal = store.resolve_principal("u")
        expected_roles = set(direct) | set(via_group)
        expected_authorities = set()
        for role in expected_roles:
            expected_authorities |= authority_map[role]
        assert principal.roles == expected_roles
        assert principal.authorities == expected_authorities

    @settings(max_examples=10, deadline=None)
    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=12))
    def test_authentication_roundtrip_for_any_password(self, password):
        store = SecurityStore(Database())
        manager = AuthenticationManager(store)
        manager.encoder.iterations = 10  # keep the property fast
        manager.register_user("u", password)
        session = manager.authenticate("u", password)
        assert manager.validate(session.token).username == "u"
        with pytest.raises(Exception):
            manager.authenticate("u", password + "x")
