"""The resilience kernel: retry, breaker, deadline, bulkhead, faults.

Everything here runs on injectable clocks — no test ever sleeps for
real — and every stochastic element (retry jitter, fault injection) is
seeded, so the assertions are about *exact* sequences, not
distributions.
"""

import pytest

from repro.core.resilience import (
    Bulkhead,
    CircuitBreaker,
    Deadline,
    DegradedResult,
    FakeClock,
    FaultInjector,
    HealthReport,
    RetryPolicy,
    TenantHealth,
)
from repro.errors import (
    BulkheadRejectedError,
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFault,
    ResilienceError,
    RetryExhaustedError,
)


class TestRetryPolicy:
    def test_succeeds_first_try_without_sleeping(self):
        clock = FakeClock()
        policy = RetryPolicy(attempts=5, base_delay=1.0)
        assert policy.call(lambda: 42, clock=clock) == 42
        assert clock.slept == []

    def test_retries_until_success(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=1.0)
        assert policy.call(flaky, clock=clock) == "ok"
        assert len(calls) == 3
        # Exponential backoff on the fake clock: 1s then 2s.
        assert clock.slept == [1.0, 2.0]

    def test_exhaustion_raises_with_last_error_chained(self):
        clock = FakeClock()
        policy = RetryPolicy(attempts=3, base_delay=0.5)

        def always_fails():
            raise ValueError("broken")

        with pytest.raises(RetryExhaustedError) as info:
            policy.call(always_fails, clock=clock)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ValueError)
        assert isinstance(info.value.__cause__, ValueError)
        assert len(clock.slept) == 2  # no sleep after the final try

    def test_seeded_jitter_is_deterministic(self):
        first = RetryPolicy(attempts=5, base_delay=1.0, jitter=0.5,
                            seed=7)
        second = RetryPolicy(attempts=5, base_delay=1.0, jitter=0.5,
                             seed=7)
        other = RetryPolicy(attempts=5, base_delay=1.0, jitter=0.5,
                            seed=8)
        assert first.delays() == second.delays()
        assert first.delays() == first.delays()  # re-seeded per call
        assert first.delays() != other.delays()

    def test_backoff_is_capped_by_max_delay(self):
        policy = RetryPolicy(attempts=6, base_delay=1.0,
                             multiplier=10.0, max_delay=5.0)
        assert policy.delays() == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_non_retryable_errors_propagate_raw(self):
        policy = RetryPolicy(attempts=5,
                             non_retryable=(KeyError,))
        calls = []

        def fails():
            calls.append(1)
            raise KeyError("fatal")

        with pytest.raises(KeyError):
            policy.call(fails, clock=FakeClock())
        assert len(calls) == 1

    def test_retryable_filter(self):
        policy = RetryPolicy(attempts=3, retryable=(ValueError,))
        with pytest.raises(TypeError):
            policy.call(lambda: (_ for _ in ()).throw(TypeError()),
                        clock=FakeClock())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay=-1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 cooldown=cooldown, clock=clock,
                                 name="test")
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_opens_after_cooldown_on_injected_clock(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens_for_full_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_call_raises_typed_error_while_open(self):
        breaker, _ = self.make(threshold=1, cooldown=10.0)
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError()))
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: "never runs")
        assert info.value.retry_after == pytest.approx(10.0)


class TestDeadline:
    def test_budget_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        deadline.check()  # still inside budget
        clock.advance(2.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.check("report render")

    def test_negative_budget_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(-1.0, clock=FakeClock())


class TestBulkhead:
    def test_caps_concurrency_and_sheds_excess(self):
        bulkhead = Bulkhead(2, name="acme")
        assert bulkhead.try_acquire()
        assert bulkhead.try_acquire()
        assert not bulkhead.try_acquire()
        bulkhead.release()
        assert bulkhead.try_acquire()

    def test_context_manager_raises_typed_error_when_full(self):
        bulkhead = Bulkhead(1)
        with bulkhead:
            with pytest.raises(BulkheadRejectedError):
                with bulkhead:
                    pass
        assert bulkhead.in_use == 0

    def test_over_release_is_a_programming_error(self):
        bulkhead = Bulkhead(1)
        with pytest.raises(ResilienceError):
            bulkhead.release()


class TestFaultInjector:
    def test_no_rules_is_a_noop(self):
        faults = FaultInjector()
        for _ in range(100):
            faults.fire("storage.write")
        assert faults.history == []

    def test_rate_one_always_fires_with_typed_error(self):
        faults = FaultInjector()
        faults.inject("storage.write", rate=1.0, seed=1)
        with pytest.raises(InjectedFault) as info:
            faults.fire("storage.write")
        assert info.value.site == "storage.write"
        assert faults.history == [("storage.write", 1)]

    def test_same_seed_same_decision_sequence(self):
        def run(seed):
            faults = FaultInjector()
            faults.inject("esb.deliver", rate=0.3, seed=seed)
            outcomes = []
            for _ in range(200):
                try:
                    faults.fire("esb.deliver")
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
            return outcomes, list(faults.history)

        first = run(42)
        second = run(42)
        different = run(43)
        assert first == second
        assert first != different
        # Rate is honoured approximately even at n=200.
        faults_fired = first[0].count("fault")
        assert 30 <= faults_fired <= 90

    def test_site_targeting_and_wildcards(self):
        faults = FaultInjector()
        faults.inject("storage.*", rate=1.0, seed=0)
        faults.fire("esb.publish")  # no match, no fault
        with pytest.raises(InjectedFault):
            faults.fire("storage.write")
        with pytest.raises(InjectedFault):
            faults.fire("storage.read")

    def test_limit_caps_total_faults(self):
        faults = FaultInjector()
        faults.inject("etl.job", rate=1.0, seed=0, limit=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fire("etl.job")
        faults.fire("etl.job")  # limit reached: passes
        assert len(faults.history) == 2

    def test_custom_error_factory(self):
        faults = FaultInjector()
        faults.inject("storage.write", rate=1.0, seed=0,
                      error=lambda site, seq: IOError(
                          f"disk gone at {site}"))
        with pytest.raises(IOError):
            faults.fire("storage.write")

    def test_disabled_injector_never_fires(self):
        faults = FaultInjector()
        faults.inject("storage.write", rate=1.0, seed=0)
        faults.enabled = False
        faults.fire("storage.write")
        assert faults.history == []

    def test_summary_counts_per_site(self):
        faults = FaultInjector()
        faults.inject("a", rate=1.0, seed=0, limit=2)
        faults.inject("b", rate=1.0, seed=0, limit=1)
        for site in ("a", "a", "b"):
            with pytest.raises(InjectedFault):
                faults.fire(site)
        assert faults.summary() == {"a": 2, "b": 1}


class TestDegradedAndHealth:
    def test_degraded_result_is_first_class(self):
        degraded = DegradedResult(payload={"rows": []},
                                  reason="breaker open", stale=True,
                                  stale_as_of=12.5)
        assert degraded.degraded
        assert degraded.stale
        assert degraded.stale_as_of == 12.5

    def test_health_report_aggregates_and_serializes(self):
        report = HealthReport(dead_letters=2,
                              fault_sites={"esb.deliver": 3})
        report.tenants["acme"] = TenantHealth(
            tenant="acme", breaker_state=CircuitBreaker.OPEN,
            consecutive_failures=5, bulkhead_in_use=1,
            bulkhead_capacity=4, quarantined_jobs=["nightly"])
        report.tenant("globex")  # healthy default entry
        assert not report.healthy
        assert not report.tenants["acme"].healthy
        assert report.tenants["globex"].healthy
        payload = report.to_dict()
        assert payload["dead_letters"] == 2
        assert payload["tenants"]["acme"]["breaker"] == "open"
        assert payload["tenants"]["acme"]["quarantined_jobs"] == \
            ["nightly"]
