"""Tests for MDDWS (model-driven DW design) and the assembled platform."""

import pytest

from repro.core import OdbisPlatform
from repro.errors import ServiceError
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
)
from repro.workloads import RetailWorkload


def retail_cim():
    return CimModel("retail", [
        BusinessRequirement(
            subject="Sales",
            goal="analyse revenue by product, store and time",
            measures=[MeasureSpec("revenue"), MeasureSpec("quantity")],
            dimensions=[
                DimensionSpec("Time", ["year", "quarter", "month"],
                              is_time=True),
                DimensionSpec("Product", ["category", "sku"]),
                DimensionSpec("Store", ["region", "city"]),
            ]),
    ])


@pytest.fixture
def platform():
    platform = OdbisPlatform()
    platform.provisioning.provision("acme", "Acme Corp", plan="team")
    return platform


class TestMddws:
    def test_project_lifecycle(self, platform):
        project = platform.mddws.create_project("acme", "retail-dw")
        assert project.open_risks()
        status = platform.mddws.project_status("acme")
        assert status["complete"] is False
        with pytest.raises(ServiceError):
            platform.mddws.create_project("acme", "second")

    def test_project_required_before_design(self, platform):
        with pytest.raises(ServiceError):
            platform.mddws.design_warehouse("acme", retail_cim())

    def test_design_runs_full_2tup_iteration(self, platform):
        platform.mddws.create_project("acme", "retail-dw")
        summary = platform.mddws.design_warehouse("acme", retail_cim())
        iteration = platform.mddws.project("acme") \
            .process.iterations[0]
        assert iteration.is_complete
        assert summary["layer"] == "warehouse"
        assert len(summary["pim"].cubes()) == 1
        assert len(summary["psm"].tables()) == 4  # 3 dims + 1 fact

    def test_design_deploys_tables_and_cubes(self, platform):
        platform.mddws.create_project("acme", "retail-dw")
        summary = platform.mddws.design_warehouse("acme", retail_cim())
        warehouse = platform.tenants.context("acme").warehouse_db
        assert "fact_sales" in warehouse.table_names()
        assert "dim_time" in warehouse.table_names()
        assert summary["deployed"]["cubes"] == ["Sales"]
        assert platform.analysis.cubes("acme") == ["Sales"]

    def test_designed_cube_answers_queries_after_etl(self, platform):
        """Full on-demand loop: design -> deploy -> load -> analyse."""
        from repro.etl import RowsSource

        platform.mddws.create_project("acme", "retail-dw")
        platform.mddws.design_warehouse("acme", retail_cim())

        platform.integration.define_job(
            "acme", "load-time",
            RowsSource([{"time_key": 1, "year": "2009",
                         "quarter": "Q1", "month": "Jan"}]),
            target_table="dim_time")
        platform.integration.define_job(
            "acme", "load-product",
            RowsSource([{"product_key": 1, "category": "Food",
                         "sku": "bread"}]),
            target_table="dim_product")
        platform.integration.define_job(
            "acme", "load-store",
            RowsSource([{"store_key": 1, "region": "North",
                         "city": "Lille"}]),
            target_table="dim_store")
        platform.integration.define_job(
            "acme", "load-fact",
            RowsSource([{"time_key": 1, "product_key": 1,
                         "store_key": 1, "revenue": 99.0,
                         "quantity": 3}]),
            target_table="fact_sales")
        platform.integration.run_graph("acme", {
            "load-time": [], "load-product": [], "load-store": [],
            "load-fact": ["load-time", "load-product", "load-store"],
        })
        cells = platform.analysis.query(
            "acme", "Sales", ["revenue"], [("Store", "region")])
        assert cells.cell(["North"], "revenue") == 99.0

    def test_artifacts_registered_on_project(self, platform):
        platform.mddws.create_project("acme", "retail-dw")
        platform.mddws.design_warehouse("acme", retail_cim())
        project = platform.mddws.project("acme")
        assert "warehouse/iter1/pim" in project.artifacts
        assert "warehouse/iter1/psm" in project.artifacts
        assert "warehouse/iter1/code" in project.artifacts

    def test_multiple_layers_multiple_iterations(self, platform):
        platform.mddws.create_project("acme", "retail-dw")
        platform.mddws.design_warehouse(
            "acme", retail_cim(), layer="warehouse")
        datamart_cim = CimModel("datamart", [
            BusinessRequirement(
                subject="TopStores",
                measures=[MeasureSpec("revenue")],
                dimensions=[DimensionSpec("Region", ["region"])]),
        ])
        platform.mddws.design_warehouse(
            "acme", datamart_cim, layer="datamart")
        process = platform.mddws.project("acme").process
        assert process.layer_complete("warehouse")
        assert process.layer_complete("datamart")
        assert not process.layer_complete("staging")


class TestPlatformWebApi:
    @pytest.fixture
    def client(self, platform):
        workload = RetailWorkload()
        workload.build(
            platform.tenants.context("acme").warehouse_db,
            fact_rows=200)
        platform.analysis.define_cube(
            "acme", workload.cube_definition())
        platform.metadata.create_dataset(
            "acme", "stores", "warehouse",
            "SELECT region, city FROM dim_store")
        response = platform.web.request(
            "POST", "/login",
            body={"username": "admin@acme", "password": "changeme"})
        token = response.json()["token"]
        return platform, {"X-Auth-Token": token}

    def test_ping_is_public(self, platform):
        assert platform.web.request("GET", "/ping").json() == \
            {"status": "up"}

    def test_login_failure_is_401(self, platform):
        response = platform.web.request(
            "POST", "/login",
            body={"username": "admin@acme", "password": "wrong"})
        assert response.status == 401

    def test_missing_token_is_401(self, platform):
        response = platform.web.request("GET", "/tenants/acme/cubes")
        assert response.status == 401

    def test_cubes_endpoint(self, client):
        platform, headers = client
        response = platform.web.request(
            "GET", "/tenants/acme/cubes", headers=headers)
        assert response.json() == ["RetailSales"]

    def test_dataset_rows_endpoint(self, client):
        platform, headers = client
        response = platform.web.request(
            "GET", "/tenants/acme/datasets/stores/rows",
            headers=headers)
        assert len(response.json()["rows"]) == 6

    def test_mdx_endpoint(self, client):
        platform, headers = client
        response = platform.web.request(
            "POST", "/tenants/acme/mdx",
            body={"statement":
                  "SELECT {[Measures].[revenue]} ON COLUMNS "
                  "FROM [RetailSales]"},
            headers=headers)
        assert response.status == 200
        assert response.json()["rows"][0]["revenue"] > 0

    def test_mdx_requires_statement(self, client):
        platform, headers = client
        response = platform.web.request(
            "POST", "/tenants/acme/mdx", body={}, headers=headers)
        assert response.status == 400

    def test_cross_tenant_access_is_403(self, client):
        platform, headers = client
        platform.provisioning.provision("globex", "Globex")
        response = platform.web.request(
            "GET", "/tenants/globex/cubes", headers=headers)
        assert response.status == 403

    def test_usage_endpoint_needs_platform_admin(self, client):
        platform, headers = client
        response = platform.web.request(
            "GET", "/admin/usage", headers=headers)
        assert response.status == 403

        platform.admin.create_account(
            "root", "s3cret", roles=["platform-admin"])
        session = platform.admin.login("root", "s3cret")
        response = platform.web.request(
            "GET", "/admin/usage",
            headers={"X-Auth-Token": session.token})
        assert response.status == 200
        assert response.json()["tenants"] == 1

    def test_layer_trace_covers_fig1_path(self, client):
        platform, headers = client
        platform.web.request(
            "GET", "/tenants/acme/datasets/stores/rows",
            headers=headers)
        assert platform.last_trace[0] == "end-user-access"
        assert "administration" in platform.last_trace
        assert "core-bi-services" in platform.last_trace
        assert "technical-resources" in platform.last_trace

    def test_dashboard_delivery_channels(self, client):
        from repro.reporting import Dashboard

        platform, headers = client
        builder = platform.reporting.adhoc_builder("acme", "stores")
        dashboard = Dashboard("geo")
        dashboard.add_row(
            builder.data_table("cities", ["region", "city"]))
        platform.reporting.save_dashboard("acme", dashboard)

        web = platform.web.request(
            "GET", "/tenants/acme/dashboards/geo",
            headers=headers, query={"channel": "web"})
        assert web.body.startswith("<!DOCTYPE html>")

        ws = platform.web.request(
            "GET", "/tenants/acme/dashboards/geo", headers=headers)
        assert ws.json()["dashboard"] == "geo"

        bad = platform.web.request(
            "GET", "/tenants/acme/dashboards/geo",
            headers=headers, query={"channel": "fax"})
        assert bad.status == 400

    def test_admin_usage_reflects_metering(self, client):
        platform, headers = client
        platform.web.request(
            "GET", "/tenants/acme/datasets/stores/rows",
            headers=headers)
        report = platform.admin.usage_report()
        assert report["usage"]["acme"]["query"] >= 1
        assert report["invoice_totals"]["acme"] >= 249.0


class TestDesignEndpoint:
    """POST /tenants/{t}/design — the MDDWS web design environment."""

    @pytest.fixture
    def ready(self, platform):
        platform.mddws.create_project("acme", "dw")
        response = platform.web.request(
            "POST", "/login",
            body={"username": "admin@acme", "password": "changeme"})
        return platform, {"X-Auth-Token": response.json()["token"]}

    CIM_PAYLOAD = {
        "cim": {
            "name": "retail",
            "requirements": [{
                "subject": "Sales",
                "measures": [{"name": "revenue"}],
                "dimensions": [
                    {"name": "Time", "levels": ["year", "month"],
                     "is_time": True},
                    {"name": "Store", "levels": ["region"]},
                ],
            }],
        },
        "layer": "warehouse",
    }

    def test_design_via_web_creates_warehouse(self, ready):
        platform, headers = ready
        response = platform.web.request(
            "POST", "/tenants/acme/design", headers=headers,
            body=self.CIM_PAYLOAD)
        assert response.status == 201
        body = response.json()
        assert body["cubes"] == ["Sales"]
        assert "fact_sales" in body["tables"]
        warehouse = platform.tenants.context("acme").warehouse_db
        assert "fact_sales" in warehouse.table_names()
        assert "design-management" in platform.last_trace

    def test_design_requires_dw_design_authority(self, ready):
        platform, _headers = ready
        platform.admin.create_account(
            "viewer@acme", "pw", tenant="acme", roles=["viewer"])
        session = platform.admin.login("viewer@acme", "pw")
        response = platform.web.request(
            "POST", "/tenants/acme/design",
            headers={"X-Auth-Token": session.token},
            body=self.CIM_PAYLOAD)
        assert response.status == 403

    def test_bad_cim_payload_is_400(self, ready):
        platform, headers = ready
        response = platform.web.request(
            "POST", "/tenants/acme/design", headers=headers,
            body={"cim": {"no_name": True}})
        assert response.status == 400

    def test_designed_cube_queryable_via_mdx_endpoint(self, ready):
        platform, headers = ready
        platform.web.request("POST", "/tenants/acme/design",
                             headers=headers, body=self.CIM_PAYLOAD)
        warehouse = platform.tenants.context("acme").warehouse_db
        warehouse.execute(
            "INSERT INTO dim_time (time_key, year, month) "
            "VALUES (1, '2009', 'Jan')")
        warehouse.execute(
            "INSERT INTO dim_store (store_key, region) "
            "VALUES (1, 'North')")
        warehouse.execute(
            "INSERT INTO fact_sales VALUES (1, 1, 42.0)")
        response = platform.web.request(
            "POST", "/tenants/acme/mdx", headers=headers,
            body={"statement":
                  "SELECT {[Measures].[revenue]} ON COLUMNS "
                  "FROM [Sales]"})
        assert response.json()["rows"][0]["revenue"] == 42.0
