"""Regression tests for the serving-layer correctness fixes.

Each test here fails on the pre-fix code:

* ``Database.executemany`` left rows 1..N-1 applied when row N failed;
* ``Database.load`` reset the ``compile`` flag and statistics and
  never revalidated views against the restored catalog;
* ``Message.with_payload`` minted a fresh ``message_id`` with no
  correlation back to the originating message;
* a handler failure on the final permitted hop raised the
  routing-loop ``EsbError`` from the nested dead-letter delivery
  instead of recording the original error.
"""

import pickle

import pytest

from repro.engine import Database
from repro.esb import MessageBus
from repro.esb.bus import DEAD_LETTER_CHANNEL
from repro.errors import CatalogError, ConstraintViolation, EsbError


def _inventory_db(compile=True):
    database = Database("inv", compile=compile)
    database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)")
    database.execute("INSERT INTO items VALUES (1, 'widget')")
    return database


class TestExecutemanyAtomicity:
    def test_failed_batch_applies_no_rows(self):
        database = _inventory_db()
        # Row 3 collides with the existing primary key 1: the whole
        # batch must roll back, not stop with rows 10 and 11 applied.
        with pytest.raises(ConstraintViolation):
            database.executemany(
                "INSERT INTO items VALUES (?, ?)",
                [(10, "a"), (11, "b"), (1, "dup"), (12, "c")])
        assert database.query_value("SELECT COUNT(*) FROM items") == 1
        assert not database.in_transaction

    def test_successful_batch_commits_as_a_unit(self):
        database = _inventory_db()
        total = database.executemany(
            "INSERT INTO items VALUES (?, ?)",
            [(2, "a"), (3, "b"), (4, "c")])
        assert total == 3
        assert database.query_value("SELECT COUNT(*) FROM items") == 4
        assert not database.in_transaction

    def test_batch_joins_open_transaction(self):
        """Inside a caller's transaction the caller owns the boundary."""
        database = _inventory_db()
        database.begin()
        database.executemany(
            "INSERT INTO items VALUES (?, ?)", [(2, "a"), (3, "b")])
        assert database.in_transaction
        database.rollback()
        assert database.query_value("SELECT COUNT(*) FROM items") == 1

    def test_failure_in_open_transaction_leaves_it_to_caller(self):
        database = _inventory_db()
        database.begin()
        database.execute("INSERT INTO items VALUES (2, 'kept')")
        with pytest.raises(ConstraintViolation):
            database.executemany(
                "INSERT INTO items VALUES (?, ?)",
                [(3, "a"), (1, "dup")])
        # The surrounding transaction is still open; the caller
        # decides whether its earlier work survives.
        assert database.in_transaction
        database.rollback()
        assert database.query_value("SELECT COUNT(*) FROM items") == 1


class TestSnapshotLoad:
    def _saved(self, tmp_path, compile=True):
        database = Database("snap", compile=compile)
        database.execute(
            "CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT "
            "UNIQUE)")
        database.executemany(
            "INSERT INTO users VALUES (?, ?)",
            [(key, f"u{key}@x.io") for key in range(1, 6)])
        database.execute(
            "CREATE VIEW mails AS SELECT email FROM users")
        database.query("SELECT email FROM users WHERE id = 3")
        path = tmp_path / "snap.db"
        database.save(path)
        return database, path

    def test_compile_flag_survives_the_round_trip(self, tmp_path):
        _, path = self._saved(tmp_path, compile=False)
        loaded = Database.load(path)
        assert loaded._compile_enabled is False
        _, path = self._saved(tmp_path, compile=True)
        assert Database.load(path)._compile_enabled is True

    def test_statistics_survive_the_round_trip(self, tmp_path):
        original, path = self._saved(tmp_path)
        loaded = Database.load(path)
        assert loaded.statistics == original.statistics

    def test_loaded_db_rejects_unique_duplicates(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        with pytest.raises(ConstraintViolation):
            loaded.execute(
                "INSERT INTO users VALUES (9, 'u3@x.io')")
        with pytest.raises(ConstraintViolation):
            loaded.execute(
                "INSERT INTO users VALUES (3, 'new@x.io')")

    def test_loaded_db_serves_compiled_point_scans(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        plan = loaded.query(
            "EXPLAIN SELECT email FROM users WHERE id = ?")
        text = " ".join(line["plan"] for line in plan)
        assert "interpreted execution" not in text
        rows = loaded.query(
            "SELECT email FROM users WHERE id = ?", (4,))
        assert rows == [{"email": "u4@x.io"}]

    def test_views_survive_and_are_revalidated(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        assert len(loaded.query("SELECT email FROM mails")) == 5
        # Tamper with the snapshot so the view's table is gone: the
        # load itself must fail, not the view's first use.
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["tables"] = []
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(CatalogError):
            Database.load(path)


class TestEsbMessageIdentity:
    def test_transformed_message_carries_correlation_id(self):
        bus = MessageBus()
        bus.create_channel("in")
        bus.create_channel("out")
        bus.transformer("in", str.upper, "out")
        seen = []
        bus.service_activator("out", seen.append)
        origin = bus.send("in", "payload")
        assert len(seen) == 1
        transformed = seen[0]
        assert transformed.message_id != origin.message_id
        assert transformed.headers["correlation_id"] == origin.message_id
        assert transformed.correlation_id == origin.message_id

    def test_correlation_id_preserved_across_hops(self):
        bus = MessageBus()
        for name in ("a", "b", "c"):
            bus.create_channel(name)
        bus.transformer("a", lambda p: p + 1, "b")
        bus.transformer("b", lambda p: p * 2, "c")
        seen = []
        bus.service_activator("c", seen.append)
        origin = bus.send("a", 1)
        assert seen[0].payload == 4
        # The second hop must keep the *origin's* id, not rebase the
        # correlation onto the intermediate message.
        assert seen[0].headers["correlation_id"] == origin.message_id

    def test_dead_letter_correlates_with_origin(self):
        bus = MessageBus()
        bus.create_channel("in")
        bus.create_channel("out")
        bus.transformer("in", str.upper, "out")

        def explode(message):
            raise ValueError("boom")

        bus.service_activator("out", explode)
        origin = bus.send("in", "payload")
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.headers["error"] == "boom"
        assert dead.headers["correlation_id"] == origin.message_id


class TestEsbDeadLetterAtHopBudget:
    def test_failure_on_final_hop_reaches_dead_letters(self):
        bus = MessageBus(max_hops=1)
        bus.create_channel("a")
        bus.create_channel("b")
        bus.transformer("a", str.upper, "b")

        def explode(message):
            raise ValueError("boom at the budget")

        bus.service_activator("b", explode)
        # Pre-fix this raised the routing-loop EsbError out of the
        # nested dead-letter delivery instead of recording the error.
        bus.send("a", "payload")
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.headers["error"] == "boom at the budget"
        assert dead.headers["failed_channel"] == "b"

    def test_routing_loops_still_trip_the_guard(self):
        bus = MessageBus(max_hops=5)
        bus.create_channel("loop")
        bus.router("loop", lambda message: "loop")
        with pytest.raises(EsbError):
            bus.send("loop", "spin")

    def test_failing_dead_letter_handler_cannot_recurse_forever(self):
        bus = MessageBus(max_hops=3)
        bus.create_channel("in")

        def explode(message):
            raise ValueError("always")

        bus.service_activator("in", explode)
        bus.service_activator(DEAD_LETTER_CHANNEL, explode)
        # The dead-letter handler fails too; nested failures consume
        # the hop budget instead of recursing unboundedly.
        with pytest.raises(EsbError):
            bus.send("in", "payload")
        assert len(bus.dead_letters) >= 1
