"""Regression tests for the serving-layer correctness fixes.

Each test here fails on the pre-fix code:

* ``Database.executemany`` left rows 1..N-1 applied when row N failed;
* ``Database.load`` reset the ``compile`` flag and statistics and
  never revalidated views against the restored catalog;
* ``Message.with_payload`` minted a fresh ``message_id`` with no
  correlation back to the originating message;
* a handler failure on the final permitted hop raised the
  routing-loop ``EsbError`` from the nested dead-letter delivery
  instead of recording the original error.
"""

import pickle

import pytest

from repro.engine import Database
from repro.esb import MessageBus
from repro.esb.bus import DEAD_LETTER_CHANNEL
from repro.errors import CatalogError, ConstraintViolation, EsbError


def _inventory_db(compile=True):
    database = Database("inv", compile=compile)
    database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT)")
    database.execute("INSERT INTO items VALUES (1, 'widget')")
    return database


class TestExecutemanyAtomicity:
    def test_failed_batch_applies_no_rows(self):
        database = _inventory_db()
        # Row 3 collides with the existing primary key 1: the whole
        # batch must roll back, not stop with rows 10 and 11 applied.
        with pytest.raises(ConstraintViolation):
            database.executemany(
                "INSERT INTO items VALUES (?, ?)",
                [(10, "a"), (11, "b"), (1, "dup"), (12, "c")])
        assert database.query_value("SELECT COUNT(*) FROM items") == 1
        assert not database.in_transaction

    def test_successful_batch_commits_as_a_unit(self):
        database = _inventory_db()
        total = database.executemany(
            "INSERT INTO items VALUES (?, ?)",
            [(2, "a"), (3, "b"), (4, "c")])
        assert total == 3
        assert database.query_value("SELECT COUNT(*) FROM items") == 4
        assert not database.in_transaction

    def test_batch_joins_open_transaction(self):
        """Inside a caller's transaction the caller owns the boundary."""
        database = _inventory_db()
        database.begin()
        database.executemany(
            "INSERT INTO items VALUES (?, ?)", [(2, "a"), (3, "b")])
        assert database.in_transaction
        database.rollback()
        assert database.query_value("SELECT COUNT(*) FROM items") == 1

    def test_failure_in_open_transaction_leaves_it_to_caller(self):
        database = _inventory_db()
        database.begin()
        database.execute("INSERT INTO items VALUES (2, 'kept')")
        with pytest.raises(ConstraintViolation):
            database.executemany(
                "INSERT INTO items VALUES (?, ?)",
                [(3, "a"), (1, "dup")])
        # The surrounding transaction is still open; the caller
        # decides whether its earlier work survives.
        assert database.in_transaction
        database.rollback()
        assert database.query_value("SELECT COUNT(*) FROM items") == 1


class TestSnapshotLoad:
    def _saved(self, tmp_path, compile=True):
        database = Database("snap", compile=compile)
        database.execute(
            "CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT "
            "UNIQUE)")
        database.executemany(
            "INSERT INTO users VALUES (?, ?)",
            [(key, f"u{key}@x.io") for key in range(1, 6)])
        database.execute(
            "CREATE VIEW mails AS SELECT email FROM users")
        database.query("SELECT email FROM users WHERE id = 3")
        path = tmp_path / "snap.db"
        database.save(path)
        return database, path

    def test_compile_flag_survives_the_round_trip(self, tmp_path):
        _, path = self._saved(tmp_path, compile=False)
        loaded = Database.load(path)
        assert loaded._compile_enabled is False
        _, path = self._saved(tmp_path, compile=True)
        assert Database.load(path)._compile_enabled is True

    def test_statistics_survive_the_round_trip(self, tmp_path):
        original, path = self._saved(tmp_path)
        loaded = Database.load(path)
        assert loaded.statistics == original.statistics

    def test_loaded_db_rejects_unique_duplicates(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        with pytest.raises(ConstraintViolation):
            loaded.execute(
                "INSERT INTO users VALUES (9, 'u3@x.io')")
        with pytest.raises(ConstraintViolation):
            loaded.execute(
                "INSERT INTO users VALUES (3, 'new@x.io')")

    def test_loaded_db_serves_compiled_point_scans(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        plan = loaded.query(
            "EXPLAIN SELECT email FROM users WHERE id = ?")
        text = " ".join(line["plan"] for line in plan)
        assert "interpreted execution" not in text
        rows = loaded.query(
            "SELECT email FROM users WHERE id = ?", (4,))
        assert rows == [{"email": "u4@x.io"}]

    def test_views_survive_and_are_revalidated(self, tmp_path):
        _, path = self._saved(tmp_path)
        loaded = Database.load(path)
        assert len(loaded.query("SELECT email FROM mails")) == 5
        # Tamper with the snapshot so the view's table is gone: the
        # load itself must fail, not the view's first use.
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["tables"] = []
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(CatalogError):
            Database.load(path)


class TestEsbMessageIdentity:
    def test_transformed_message_carries_correlation_id(self):
        bus = MessageBus()
        bus.create_channel("in")
        bus.create_channel("out")
        bus.transformer("in", str.upper, "out")
        seen = []
        bus.service_activator("out", seen.append)
        origin = bus.send("in", "payload")
        assert len(seen) == 1
        transformed = seen[0]
        assert transformed.message_id != origin.message_id
        assert transformed.headers["correlation_id"] == origin.message_id
        assert transformed.correlation_id == origin.message_id

    def test_correlation_id_preserved_across_hops(self):
        bus = MessageBus()
        for name in ("a", "b", "c"):
            bus.create_channel(name)
        bus.transformer("a", lambda p: p + 1, "b")
        bus.transformer("b", lambda p: p * 2, "c")
        seen = []
        bus.service_activator("c", seen.append)
        origin = bus.send("a", 1)
        assert seen[0].payload == 4
        # The second hop must keep the *origin's* id, not rebase the
        # correlation onto the intermediate message.
        assert seen[0].headers["correlation_id"] == origin.message_id

    def test_dead_letter_correlates_with_origin(self):
        bus = MessageBus()
        bus.create_channel("in")
        bus.create_channel("out")
        bus.transformer("in", str.upper, "out")

        def explode(message):
            raise ValueError("boom")

        bus.service_activator("out", explode)
        origin = bus.send("in", "payload")
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.headers["error"] == "boom"
        assert dead.headers["correlation_id"] == origin.message_id


class TestEsbDeadLetterAtHopBudget:
    def test_failure_on_final_hop_reaches_dead_letters(self):
        bus = MessageBus(max_hops=1)
        bus.create_channel("a")
        bus.create_channel("b")
        bus.transformer("a", str.upper, "b")

        def explode(message):
            raise ValueError("boom at the budget")

        bus.service_activator("b", explode)
        # Pre-fix this raised the routing-loop EsbError out of the
        # nested dead-letter delivery instead of recording the error.
        bus.send("a", "payload")
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.headers["error"] == "boom at the budget"
        assert dead.headers["failed_channel"] == "b"

    def test_routing_loops_still_trip_the_guard(self):
        bus = MessageBus(max_hops=5)
        bus.create_channel("loop")
        bus.router("loop", lambda message: "loop")
        with pytest.raises(EsbError):
            bus.send("loop", "spin")

    def test_failing_dead_letter_handler_cannot_recurse_forever(self):
        bus = MessageBus(max_hops=3)
        bus.create_channel("in")

        def explode(message):
            raise ValueError("always")

        bus.service_activator("in", explode)
        bus.service_activator(DEAD_LETTER_CHANNEL, explode)
        # The dead-letter handler fails too; nested failures consume
        # the hop budget instead of recursing unboundedly.
        with pytest.raises(EsbError):
            bus.send("in", "payload")
        assert len(bus.dead_letters) >= 1


# -- PR 8 serving-path regressions ------------------------------------------------
#
# * the gateway's stale-response cache was keyed by ``(tenant, path)``
#   alone and cached *every* OK payload, so while a breaker was open a
#   request with a different method/query/body could be answered with
#   another request's payload as a 200;
# * ``OdbisPlatform.close()`` closed WALs and journals while gateway
#   workers could still be mid-dispatch, so an accepted in-flight write
#   could die against a closed log and be lost;
# * ``TenantRegistry.deactivate`` flipped ``context.active`` without
#   the registry lock that ``register`` uses.

import textwrap
import threading

from repro.analysis.concurrency import analyze_concurrency
from repro.core import OdbisPlatform, RequestGateway
from repro.core.tenancy import TenantManager
from repro.errors import GatewayShutdownError, TenantError
from repro.web import JsonResponse, WebApplication

TENANT = "acme"


def _tripped_gateway(web):
    """A gateway for ``TENANT`` whose breaker can be tripped at will."""
    tenants = TenantManager()
    tenants.register(TENANT, "Acme", "team")
    return RequestGateway(web, tenants, max_workers=2)


def _trip(gateway):
    breaker = gateway.breaker(TENANT)
    for _ in range(gateway.breaker_threshold):
        breaker.record_failure()
    assert breaker.state == "open"


class TestStaleCacheKeying:
    """Degraded serving must never alias distinct requests."""

    def _web(self):
        web = WebApplication("cachekey")
        web.get(f"/tenants/{TENANT}/rows",
                lambda request: JsonResponse(
                    {"table": request.query.get("table", "none")}))
        web.post(f"/tenants/{TENANT}/rows",
                 lambda request: JsonResponse(
                     {"written": "mutation-result"}))
        web.post(f"/tenants/{TENANT}/jobs",
                 lambda request: JsonResponse({"job": "started"}))
        return web

    def test_mutation_responses_are_never_cached(self):
        gateway = _tripped_gateway(self._web())
        ok = gateway.submit(
            "POST", f"/tenants/{TENANT}/jobs").result(30)
        assert ok.status == 200
        _trip(gateway)
        degraded = gateway.submit(
            "POST", f"/tenants/{TENANT}/jobs").result(30)
        assert degraded.degraded
        # A POST is not an idempotent read: replaying its old payload
        # as a fresh 200 would fake a mutation that never ran.
        assert not degraded.stale
        assert degraded.status == 503
        gateway.shutdown()

    def test_distinct_queries_do_not_share_payloads(self):
        gateway = _tripped_gateway(self._web())
        path = f"/tenants/{TENANT}/rows"
        ok = gateway.submit("GET", path,
                            query={"table": "ledger"}).result(30)
        assert ok.json() == {"table": "ledger"}
        _trip(gateway)
        other = gateway.submit("GET", path,
                               query={"table": "audit"}).result(30)
        assert other.degraded
        assert not other.stale, \
            "a different query string was served another query's payload"
        same = gateway.submit("GET", path,
                              query={"table": "ledger"}).result(30)
        assert same.stale
        assert same.json()["data"] == {"table": "ledger"}
        gateway.shutdown()

    def test_method_does_not_alias_into_the_read_cache(self):
        gateway = _tripped_gateway(self._web())
        path = f"/tenants/{TENANT}/rows"
        ok = gateway.submit("POST", path).result(30)
        assert ok.json() == {"written": "mutation-result"}
        _trip(gateway)
        read = gateway.submit("GET", path).result(30)
        assert read.degraded
        assert not read.stale, \
            "a GET was served a cached POST payload"
        gateway.shutdown()

    def test_query_order_is_canonicalized(self):
        gateway = _tripped_gateway(self._web())
        path = f"/tenants/{TENANT}/rows"
        gateway.submit("GET", path,
                       query={"table": "ledger", "limit": 5}).result(30)
        _trip(gateway)
        hit = gateway.submit(
            "GET", path,
            query={"limit": 5, "table": "ledger"}).result(30)
        assert hit.stale  # same request, different dict order
        gateway.shutdown()


class TestShutdownDrainsBeforeDurableClose:
    """close() must drain the gateway before closing WALs/journals."""

    def _login(self, platform):
        response = platform.web.request(
            "POST", "/login",
            body={"username": f"admin@{TENANT}",
                  "password": "changeme"})
        assert response.status == 200
        return {"x-auth-token": response.json()["token"]}

    def test_in_flight_write_completes_and_survives_recovery(
            self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path)
        platform.provisioning.provision(TENANT, "Acme", plan="team")
        database = platform.tenants.context(TENANT).operational_db
        database.execute(
            "CREATE TABLE audit (id INTEGER PRIMARY KEY, note TEXT)")
        headers = self._login(platform)
        started = threading.Event()
        release = threading.Event()

        def slow_write(request):
            started.set()
            assert release.wait(30)
            database.execute(
                "INSERT INTO audit VALUES (1, 'inflight')")
            return JsonResponse({"ok": True})

        platform.web.post(f"/tenants/{TENANT}/slow-write", slow_write)
        future = platform.gateway.submit(
            "POST", f"/tenants/{TENANT}/slow-write", headers=headers)
        assert started.wait(30)
        # Release the worker shortly *after* close() begins: a close
        # that does not drain first will have shut the WAL underneath
        # the still-running commit.
        releaser = threading.Timer(0.2, release.set)
        releaser.start()
        try:
            platform.close()
        finally:
            releaser.join()
        response = future.result(30)
        assert response.status == 200, response.body
        # The accepted write is durable: recovery sees it.
        recovered = OdbisPlatform(data_dir=tmp_path)
        try:
            rows = recovered.tenants.context(
                TENANT).operational_db.query(
                    "SELECT note FROM audit WHERE id = 1")
            assert rows == [{"note": "inflight"}]
        finally:
            recovered.close()

    def test_submissions_after_close_are_rejected_not_lost(
            self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path)
        platform.provisioning.provision(TENANT, "Acme", plan="team")
        platform.close()
        with pytest.raises(GatewayShutdownError):
            platform.gateway.submit("GET", "/ping")


class TestDeactivateHoldsRegistryLock:
    """deactivate must serialize with register/require_active."""

    class _RecordingLock:
        def __init__(self, inner):
            self._inner = inner
            self.acquisitions = 0

        def __enter__(self):
            self.acquisitions += 1
            return self._inner.__enter__()

        def __exit__(self, exc_type, exc, tb):
            return self._inner.__exit__(exc_type, exc, tb)

        def acquire(self, *args, **kwargs):
            self.acquisitions += 1
            return self._inner.acquire(*args, **kwargs)

        def release(self):
            return self._inner.release()

    def test_deactivate_acquires_the_registry_lock(self):
        manager = TenantManager()
        manager.register(TENANT, "Acme")
        recorder = self._RecordingLock(manager._registry_lock)
        manager._registry_lock = recorder
        manager.deactivate(TENANT)
        assert recorder.acquisitions >= 1, \
            "deactivate mutated registry state without the lock"
        assert manager.context(TENANT).active is False
        with pytest.raises(TenantError):
            manager.require_active(TENANT)

    def test_deactivate_still_rejects_unknown_tenants(self):
        manager = TenantManager()
        with pytest.raises(TenantError):
            manager.deactivate("ghost")

    def test_unlocked_deactivate_shape_is_flagged_by_odb502(
            self, tmp_path):
        """The self-lint enforces the guard non-vacuously: the exact
        pre-fix shape (guarded registry mutated lock-free) is ODB502."""
        source = textwrap.dedent("""\
            import threading


            class Registry:
                def __init__(self):
                    self._tenants = {}  # guarded-by: _registry_lock
                    self._registry_lock = threading.Lock()

                def register(self, tenant_id, context):
                    with self._registry_lock:
                        self._tenants[tenant_id] = context

                def deactivate(self, tenant_id):
                    context = self._tenants[tenant_id]
                    context.active = False
                    self._tenants[tenant_id] = context
            """)
        path = tmp_path / "registry.py"
        path.write_text(source)
        collector = analyze_concurrency(path)
        codes = {diagnostic.code
                 for diagnostic in collector.diagnostics}
        assert "ODB502" in codes
