"""Tests for SQL views."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, EngineError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sales (region TEXT, amount REAL)")
    database.execute(
        "INSERT INTO sales VALUES ('N', 10.0), ('N', 5.0), ('S', 7.0)")
    database.execute(
        "CREATE VIEW regional AS SELECT region, SUM(amount) AS total "
        "FROM sales GROUP BY region")
    return database


class TestViewDefinition:
    def test_view_listed(self, db):
        assert db.view_names() == ["regional"]

    def test_duplicate_view_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW regional AS SELECT 1 AS one")

    def test_if_not_exists_is_silent(self, db):
        db.execute(
            "CREATE VIEW IF NOT EXISTS regional AS SELECT 1 AS one")
        assert db.query_value(
            "SELECT COUNT(*) FROM regional") == 2  # original kept

    def test_view_cannot_shadow_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW sales AS SELECT 1 AS one")

    def test_table_cannot_shadow_view(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE regional (x INTEGER)")

    def test_broken_view_fails_at_creation(self, db):
        with pytest.raises(EngineError):
            db.execute("CREATE VIEW bad AS SELECT ghost FROM sales")

    def test_drop_view(self, db):
        db.execute("DROP VIEW regional")
        assert db.view_names() == []
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM regional")
        with pytest.raises(CatalogError):
            db.execute("DROP VIEW regional")
        db.execute("DROP VIEW IF EXISTS regional")

    def test_drop_unknown_object_kind(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("DROP INDEX something")


class TestViewQuerying:
    def test_select_star(self, db):
        rows = db.query("SELECT * FROM regional ORDER BY region")
        assert rows == [{"region": "N", "total": 15.0},
                        {"region": "S", "total": 7.0}]

    def test_view_reflects_base_table_changes(self, db):
        db.execute("INSERT INTO sales VALUES ('S', 100.0)")
        assert db.query_value(
            "SELECT total FROM regional WHERE region = 'S'") == 107.0

    def test_where_on_view_output_columns(self, db):
        rows = db.query("SELECT region FROM regional WHERE total > 10")
        assert rows == [{"region": "N"}]

    def test_view_with_alias_and_qualified_columns(self, db):
        rows = db.query(
            "SELECT r.total FROM regional r WHERE r.region = 'S'")
        assert rows == [{"total": 7.0}]

    def test_join_view_with_table(self, db):
        rows = db.query(
            "SELECT DISTINCT r.region FROM regional r "
            "JOIN sales s ON r.region = s.region "
            "WHERE s.amount > 9 ORDER BY r.region")
        assert rows == [{"region": "N"}]

    def test_aggregate_over_view(self, db):
        assert db.query_value("SELECT SUM(total) FROM regional") == 22.0

    def test_view_over_view(self, db):
        db.execute(
            "CREATE VIEW big_regions AS "
            "SELECT region FROM regional WHERE total > 10")
        assert db.query("SELECT * FROM big_regions") == \
            [{"region": "N"}]

    def test_view_is_read_only(self, db):
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO regional (region) VALUES ('X')")
        with pytest.raises(CatalogError):
            db.execute("DELETE FROM regional")


class TestUnion:
    @pytest.fixture
    def udb(self):
        database = Database()
        database.execute("CREATE TABLE a (x INTEGER, tag TEXT)")
        database.execute("CREATE TABLE b (x INTEGER, tag TEXT)")
        database.executemany("INSERT INTO a VALUES (?, ?)",
                             [(1, "a"), (2, "a")])
        database.executemany("INSERT INTO b VALUES (?, ?)",
                             [(2, "a"), (3, "b")])
        return database

    def test_union_all_keeps_duplicates(self, udb):
        rows = udb.query(
            "SELECT x FROM a UNION ALL SELECT x FROM b")
        assert sorted(row["x"] for row in rows) == [1, 2, 2, 3]

    def test_union_dedupes_whole_rows(self, udb):
        rows = udb.query(
            "SELECT x, tag FROM a UNION SELECT x, tag FROM b")
        assert len(rows) == 3  # (2, 'a') collapsed

    def test_three_way_union(self, udb):
        rows = udb.query(
            "SELECT x FROM a UNION ALL SELECT x FROM b "
            "UNION ALL SELECT x FROM a")
        assert len(rows) == 6

    def test_column_count_mismatch_rejected(self, udb):
        with pytest.raises(EngineError):
            udb.query("SELECT x FROM a UNION SELECT x, tag FROM b")

    def test_union_with_expressions_and_filters(self, udb):
        rows = udb.query(
            "SELECT x * 10 AS v FROM a WHERE x = 1 "
            "UNION ALL SELECT x * 100 AS v FROM b WHERE x = 3")
        assert sorted(row["v"] for row in rows) == [10, 300]

    def test_union_column_names_from_first_part(self, udb):
        result = udb.execute(
            "SELECT x AS left_x FROM a UNION ALL SELECT x FROM b")
        assert result.columns == ["left_x"]

    def test_union_of_view_and_table(self, udb):
        udb.execute("CREATE VIEW big AS SELECT x FROM a WHERE x > 1")
        rows = udb.query(
            "SELECT x FROM big UNION ALL SELECT x FROM b")
        assert sorted(row["x"] for row in rows) == [2, 2, 3]


class TestCreateTableAs:
    @pytest.fixture
    def cdb(self):
        database = Database()
        database.execute(
            "CREATE TABLE f (region TEXT, amount REAL, d DATE)")
        database.executemany(
            "INSERT INTO f VALUES (?, ?, ?)",
            [("N", 10.0, "2009-01-01"), ("N", 5.0, "2009-02-01"),
             ("S", 7.0, "2009-03-01")])
        return database

    def test_ctas_materializes_query(self, cdb):
        count = cdb.execute(
            "CREATE TABLE mart AS SELECT region, SUM(amount) AS total "
            "FROM f GROUP BY region")
        assert count == 2
        assert cdb.query_value(
            "SELECT total FROM mart WHERE region = 'N'") == 15.0

    def test_ctas_infers_types(self, cdb):
        from repro.engine.types import SqlType

        cdb.execute("CREATE TABLE mart AS SELECT region, amount, d, "
                    "COUNT(*) AS n FROM f GROUP BY region, amount, d")
        schema = cdb.storage("mart").schema
        assert schema.column("region").type is SqlType.TEXT
        assert schema.column("amount").type is SqlType.REAL
        assert schema.column("d").type is SqlType.DATE
        assert schema.column("n").type is SqlType.INTEGER

    def test_ctas_result_is_a_real_table(self, cdb):
        cdb.execute("CREATE TABLE mart AS SELECT region FROM f")
        cdb.execute("INSERT INTO mart VALUES ('W')")
        cdb.execute("DELETE FROM mart WHERE region = 'N'")
        assert cdb.query_value("SELECT COUNT(*) FROM mart") == 2

    def test_ctas_duplicate_name_rejected(self, cdb):
        with pytest.raises(CatalogError):
            cdb.execute("CREATE TABLE f AS SELECT 1 AS one")

    def test_ctas_if_not_exists(self, cdb):
        cdb.execute("CREATE TABLE mart AS SELECT region FROM f")
        assert cdb.execute(
            "CREATE TABLE IF NOT EXISTS mart AS SELECT 1 AS one") == 0

    def test_ctas_rolls_back(self, cdb):
        cdb.begin()
        cdb.execute("CREATE TABLE mart AS SELECT region FROM f")
        cdb.rollback()
        assert "mart" not in cdb.table_names()

    def test_ctas_all_null_column_defaults_to_text(self, cdb):
        cdb.execute("CREATE TABLE mart AS SELECT NULL AS nothing FROM f")
        from repro.engine.types import SqlType

        assert cdb.storage("mart").schema.column("nothing").type \
            is SqlType.TEXT


class TestViewPersistence:
    def test_views_survive_snapshot_roundtrip(self, db, tmp_path):
        path = tmp_path / "snap.db"
        db.save(path)
        restored = Database.load(path)
        assert restored.view_names() == ["regional"]
        assert restored.query(
            "SELECT total FROM regional WHERE region = 'N'") == \
            [{"total": 15.0}]
