"""Tests for tenancy, subscription metering/billing and provisioning."""

import pytest

from repro.core import OdbisPlatform
from repro.core.subscription import BillingService, Plan
from repro.core.tenancy import TenancyMode, TenantManager
from repro.engine import Database
from repro.errors import (
    ProvisioningError,
    SubscriptionError,
    TenantError,
)


class TestTenantManager:
    def test_shared_mode_shares_one_operational_db(self):
        manager = TenantManager(TenancyMode.SHARED)
        first = manager.register("a", "A")
        second = manager.register("b", "B")
        assert first.operational_db is second.operational_db
        assert manager.database_count() == 1

    def test_isolated_mode_gives_private_dbs(self):
        manager = TenantManager(TenancyMode.ISOLATED)
        first = manager.register("a", "A")
        second = manager.register("b", "B")
        assert first.operational_db is not second.operational_db
        assert manager.database_count() == 2

    def test_warehouse_always_private(self):
        manager = TenantManager(TenancyMode.SHARED)
        first = manager.register("a", "A")
        second = manager.register("b", "B")
        assert first.warehouse_db is not second.warehouse_db

    def test_duplicate_registration_rejected(self):
        manager = TenantManager()
        manager.register("a", "A")
        with pytest.raises(TenantError):
            manager.register("a", "A again")

    def test_unknown_tenant_rejected(self):
        with pytest.raises(TenantError):
            TenantManager().context("ghost")

    def test_deactivation_blocks_require_active(self):
        manager = TenantManager()
        manager.register("a", "A")
        manager.deactivate("a")
        with pytest.raises(TenantError):
            manager.require_active("a")
        assert manager.context("a").active is False

    def test_platform_db_exists_in_both_modes(self):
        assert TenantManager(TenancyMode.SHARED).platform_db is not None
        assert TenantManager(TenancyMode.ISOLATED).platform_db is not None


class TestBilling:
    @pytest.fixture
    def billing(self):
        return BillingService(Database())

    def test_meter_and_aggregate(self, billing):
        billing.meter("acme", "query", 5)
        billing.meter("acme", "query", 3)
        billing.meter("acme", "report", 1)
        assert billing.usage("acme") == {"query": 8, "report": 1}

    def test_periods_are_separate(self, billing):
        billing.meter("acme", "query", 5, period="2010-01")
        billing.meter("acme", "query", 7, period="2010-02")
        assert billing.usage("acme", "2010-01") == {"query": 5}
        assert billing.usage("acme", "2010-02") == {"query": 7}

    def test_unknown_kind_rejected(self, billing):
        with pytest.raises(SubscriptionError):
            billing.meter("acme", "teleport", 1)

    def test_negative_units_rejected(self, billing):
        with pytest.raises(SubscriptionError):
            billing.meter("acme", "query", -1)

    def test_invoice_within_included_units(self, billing):
        billing.meter("acme", "query", 100)
        invoice = billing.invoice("acme", "starter")
        assert invoice.total == 49.0  # base fee only

    def test_invoice_with_overage(self, billing):
        billing.meter("acme", "query", 1500)  # 500 over starter's 1000
        invoice = billing.invoice("acme", "starter")
        line = invoice.lines[0]
        assert line.overage_units == 500
        assert invoice.total == pytest.approx(49.0 + 500 * 0.01)

    def test_cost_is_usage_aligned(self, billing):
        """The paper's pay-as-you-go claim: more usage, higher bill."""
        billing.meter("light", "query", 1200)
        billing.meter("heavy", "query", 12_000)
        light = billing.invoice("light", "starter").total
        heavy = billing.invoice("heavy", "starter").total
        assert heavy > light

    def test_unknown_plan_rejected(self, billing):
        with pytest.raises(SubscriptionError):
            billing.invoice("acme", "diamond")

    def test_plan_validates_usage_kinds(self):
        with pytest.raises(SubscriptionError):
            Plan("bad", 1.0, included={"mana": 10})

    def test_platform_usage_rollup(self, billing):
        billing.meter("a", "query", 1)
        billing.meter("b", "report", 2)
        rollup = billing.platform_usage()
        assert rollup == {"a": {"query": 1}, "b": {"report": 2}}


class TestProvisioning:
    @pytest.fixture
    def platform(self):
        return OdbisPlatform()

    def test_provision_wires_all_layers(self, platform):
        context = platform.provisioning.provision(
            "acme", "Acme", plan="team")
        assert context.plan == "team"
        assert platform.resources.database("acme", "warehouse") \
            is context.warehouse_db
        sources = platform.metadata.datasources("acme")
        assert sources[0]["name"] == "warehouse"
        assert "admin@acme" in platform.admin.accounts_of_tenant("acme")
        assert platform.provisioning.provision_log[0]["steps"][-1] == \
            "admin-account"

    def test_unknown_plan_fails_before_any_change(self, platform):
        with pytest.raises(SubscriptionError):
            platform.provisioning.provision("acme", "Acme",
                                            plan="diamond")
        assert platform.tenants.tenant_ids() == []

    def test_admin_login_works_after_provision(self, platform):
        platform.provisioning.provision("acme", "Acme")
        session = platform.admin.login("admin@acme", "changeme")
        assert session.principal.tenant == "acme"
        assert session.principal.has_authority("TENANT_ADMIN")

    def test_deprovision_blocks_service_access(self, platform):
        platform.provisioning.provision("acme", "Acme")
        platform.provisioning.deprovision("acme")
        with pytest.raises(TenantError):
            platform.metadata.datasources("acme")
        with pytest.raises(ProvisioningError):
            platform.provisioning.deprovision("acme")


from hypothesis import given, settings
from hypothesis import strategies as st


class TestBillingProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5000),
                    min_size=0, max_size=20))
    def test_invoice_total_is_monotone_in_usage(self, increments):
        billing = BillingService(Database())
        previous = billing.invoice("t", "starter").total
        running = 0
        for units in increments:
            billing.meter("t", "query", units)
            running += units
            total = billing.invoice("t", "starter").total
            assert total >= previous
            previous = total
        # And the final usage aggregate is exact.
        assert billing.usage("t").get("query", 0) == running

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_plan_hierarchy_never_inverts_for_heavy_usage(self, units):
        """A bigger plan never charges more overage than a smaller
        one for identical usage."""
        billing = BillingService(Database())
        billing.meter("t", "query", units)
        starter = billing.invoice("t", "starter")
        team = billing.invoice("t", "team")
        starter_overage = sum(line.amount for line in starter.lines)
        team_overage = sum(line.amount for line in team.lines)
        assert team_overage <= starter_overage

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["query", "report", "etl_rows"]),
                  st.integers(min_value=0, max_value=1000)),
        max_size=15))
    def test_platform_rollup_equals_per_tenant_sums(self, events):
        billing = BillingService(Database())
        expected = {}
        for index, (kind, units) in enumerate(events):
            tenant = f"t{index % 3}"
            billing.meter(tenant, kind, units)
            expected.setdefault(tenant, {}).setdefault(kind, 0)
            expected[tenant][kind] += units
        rollup = billing.platform_usage()
        trimmed = {
            tenant: {kind: total for kind, total in usage.items()
                     if total > 0 or kind in rollup.get(tenant, {})}
            for tenant, usage in expected.items()
        }
        for tenant, usage in rollup.items():
            for kind, total in usage.items():
                assert expected[tenant][kind] == total
