"""Integration-level tests for SQL execution on the embedded engine."""

import datetime

import pytest

from repro.engine import Database
from repro.errors import (
    CatalogError,
    ConstraintViolation,
    EngineError,
    TransactionError,
)


@pytest.fixture
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary REAL, hired DATE)")
    database.execute(
        "INSERT INTO emp (id, name, dept, salary, hired) VALUES "
        "(1, 'ada', 'eng', 100.0, '2020-01-01'), "
        "(2, 'bob', 'eng', 90.0, '2021-03-04'), "
        "(3, 'cy', 'ops', 80.0, '2019-07-01'), "
        "(4, 'dee', NULL, NULL, '2022-02-02')")
    database.execute("CREATE TABLE dept (code TEXT PRIMARY KEY, label TEXT)")
    database.execute(
        "INSERT INTO dept VALUES ('eng', 'Engineering'), ('ops', 'Operations')")
    return database


class TestProjection:
    def test_select_star_expands_all_columns(self, db):
        rows = db.query("SELECT * FROM emp WHERE id = 1")
        assert list(rows[0]) == ["id", "name", "dept", "salary", "hired"]

    def test_expression_projection(self, db):
        row = db.query("SELECT salary * 2 AS double FROM emp WHERE id = 1")[0]
        assert row["double"] == 200.0

    def test_constant_select_without_from(self, db):
        assert db.query_value("SELECT 1 + 2") == 3

    def test_string_concatenation(self, db):
        row = db.query(
            "SELECT name || '@' || dept AS addr FROM emp WHERE id = 1")[0]
        assert row["addr"] == "ada@eng"

    def test_default_output_names(self, db):
        result = db.execute("SELECT emp.name, salary + 1 FROM emp")
        assert result.columns[0] == "name"
        assert result.columns[1] == "column2"


class TestFiltering:
    def test_where_with_parameter(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept = ?", ("eng",))
        assert {row["name"] for row in rows} == {"ada", "bob"}

    def test_null_never_matches_equality(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept = dept")
        assert {row["name"] for row in rows} == {"ada", "bob", "cy"}

    def test_is_null(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept IS NULL")
        assert [row["name"] for row in rows] == ["dee"]

    def test_in_list(self, db):
        rows = db.query("SELECT name FROM emp WHERE id IN (1, 3)")
        assert {row["name"] for row in rows} == {"ada", "cy"}

    def test_not_in_with_null_candidate_excludes_all(self, db):
        rows = db.query("SELECT name FROM emp WHERE dept NOT IN ('eng', NULL)")
        assert rows == []

    def test_between_dates(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE hired BETWEEN ? AND ?",
            (datetime.date(2020, 1, 1), datetime.date(2021, 12, 31)))
        assert {row["name"] for row in rows} == {"ada", "bob"}

    def test_like_is_case_insensitive(self, db):
        rows = db.query("SELECT name FROM emp WHERE name LIKE 'A%'")
        assert [row["name"] for row in rows] == ["ada"]

    def test_unknown_column_raises(self, db):
        with pytest.raises(EngineError):
            db.query("SELECT nope FROM emp")


class TestJoins:
    def test_inner_join(self, db):
        rows = db.query(
            "SELECT e.name, d.label FROM emp e "
            "JOIN dept d ON e.dept = d.code ORDER BY e.name")
        assert [row["label"] for row in rows] == \
            ["Engineering", "Engineering", "Operations"]

    def test_left_join_keeps_unmatched_rows(self, db):
        rows = db.query(
            "SELECT e.name, d.label FROM emp e "
            "LEFT JOIN dept d ON e.dept = d.code ORDER BY e.name")
        labels = {row["name"]: row["label"] for row in rows}
        assert labels["dee"] is None
        assert len(rows) == 4

    def test_cross_join_cardinality(self, db):
        rows = db.query("SELECT e.id, d.code FROM emp e CROSS JOIN dept d")
        assert len(rows) == 8

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE site (dept TEXT, city TEXT)")
        db.execute("INSERT INTO site VALUES ('eng', 'Paris'), ('ops', 'Lyon')")
        rows = db.query(
            "SELECT e.name, s.city FROM emp e "
            "JOIN dept d ON e.dept = d.code "
            "JOIN site s ON d.code = s.dept ORDER BY e.name")
        assert [row["city"] for row in rows] == ["Paris", "Paris", "Lyon"]

    def test_non_equi_join_condition(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e JOIN dept d "
            "ON e.dept = d.code AND e.salary > 95")
        assert [row["name"] for row in rows] == ["ada"]

    def test_ambiguous_unqualified_column_raises(self, db):
        db.execute("CREATE TABLE emp2 (id INTEGER, name TEXT)")
        db.execute("INSERT INTO emp2 VALUES (1, 'zed')")
        with pytest.raises(EngineError):
            db.query("SELECT name FROM emp e JOIN emp2 x ON e.id = x.id")


class TestAggregation:
    def test_group_by_with_aggregates(self, db):
        rows = db.query(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total "
            "FROM emp GROUP BY dept ORDER BY dept")
        by_dept = {row["dept"]: row for row in rows}
        assert by_dept["eng"]["n"] == 2
        assert by_dept["eng"]["total"] == 190.0
        assert by_dept[None]["total"] is None

    def test_global_aggregate_without_group(self, db):
        assert db.query_value("SELECT COUNT(*) FROM emp") == 4

    def test_aggregate_over_empty_table(self, db):
        db.execute("CREATE TABLE empty (x INTEGER)")
        assert db.query_value("SELECT COUNT(*) FROM empty") == 0
        assert db.query_value("SELECT SUM(x) FROM empty") is None

    def test_count_ignores_nulls(self, db):
        assert db.query_value("SELECT COUNT(dept) FROM emp") == 3

    def test_count_distinct(self, db):
        assert db.query_value("SELECT COUNT(DISTINCT dept) FROM emp") == 2

    def test_min_max_avg(self, db):
        row = db.query(
            "SELECT MIN(salary) AS lo, MAX(salary) AS hi, "
            "AVG(salary) AS mean FROM emp")[0]
        assert row["lo"] == 80.0
        assert row["hi"] == 100.0
        assert row["mean"] == pytest.approx(90.0)

    def test_having_filters_groups(self, db):
        rows = db.query(
            "SELECT dept FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept HAVING COUNT(*) > 1")
        assert [row["dept"] for row in rows] == ["eng"]

    def test_aggregate_of_expression(self, db):
        value = db.query_value(
            "SELECT SUM(salary * 2) FROM emp WHERE dept = 'eng'")
        assert value == 380.0


class TestOrderingAndPaging:
    def test_order_by_desc(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE salary IS NOT NULL "
            "ORDER BY salary DESC")
        assert [row["name"] for row in rows] == ["ada", "bob", "cy"]

    def test_nulls_sort_first_ascending(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY salary")
        assert rows[0]["name"] == "dee"

    def test_order_by_alias(self, db):
        rows = db.query(
            "SELECT name, salary * 2 AS double FROM emp "
            "WHERE salary IS NOT NULL ORDER BY double")
        assert rows[0]["name"] == "cy"

    def test_secondary_sort_key(self, db):
        db.execute("INSERT INTO emp (id, name, dept, salary) "
                   "VALUES (5, 'abe', 'eng', 90.0)")
        rows = db.query(
            "SELECT name FROM emp WHERE salary = 90 ORDER BY salary, name")
        assert [row["name"] for row in rows] == ["abe", "bob"]

    def test_limit_offset(self, db):
        rows = db.query("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1")
        assert [row["id"] for row in rows] == [2, 3]

    def test_distinct_rows(self, db):
        rows = db.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert [row["dept"] for row in rows] == [None, "eng", "ops"]


class TestDml:
    def test_update_returns_affected_count(self, db):
        count = db.execute("UPDATE emp SET salary = 0 WHERE dept = 'eng'")
        assert count == 2

    def test_update_expression_references_old_value(self, db):
        db.execute("UPDATE emp SET salary = salary + 5 WHERE id = 3")
        assert db.query_value("SELECT salary FROM emp WHERE id = 3") == 85.0

    def test_delete_with_where(self, db):
        count = db.execute("DELETE FROM emp WHERE dept = 'ops'")
        assert count == 1
        assert db.query_value("SELECT COUNT(*) FROM emp") == 3

    def test_insert_applies_defaults(self, db):
        db.execute("CREATE TABLE cfg (k TEXT, v INTEGER DEFAULT 42)")
        db.execute("INSERT INTO cfg (k) VALUES ('a')")
        assert db.query_value("SELECT v FROM cfg") == 42

    def test_executemany(self, db):
        count = db.executemany(
            "INSERT INTO dept VALUES (?, ?)",
            [("fin", "Finance"), ("hr", "People")])
        assert count == 2
        assert db.query_value("SELECT COUNT(*) FROM dept") == 4


class TestConstraints:
    def test_primary_key_uniqueness(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")

    def test_not_null_enforced(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp (id, name) VALUES (9, NULL)")

    def test_unique_column(self, db):
        db.execute("CREATE TABLE u (x INTEGER UNIQUE)")
        db.execute("INSERT INTO u VALUES (1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO u VALUES (1)")

    def test_unique_allows_multiple_nulls(self, db):
        db.execute("CREATE TABLE u (x INTEGER UNIQUE)")
        db.execute("INSERT INTO u VALUES (NULL), (NULL)")
        assert db.query_value("SELECT COUNT(*) FROM u") == 2

    def test_update_cannot_break_uniqueness(self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE emp SET id = 1 WHERE id = 2")

    def test_failed_insert_leaves_no_row(self, db):
        before = db.query_value("SELECT COUNT(*) FROM emp")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")
        assert db.query_value("SELECT COUNT(*) FROM emp") == before


class TestDdl:
    def test_create_and_drop_table(self, db):
        db.execute("CREATE TABLE tmp (x INTEGER)")
        assert "tmp" in db.table_names()
        db.execute("DROP TABLE tmp")
        assert "tmp" not in db.table_names()

    def test_duplicate_create_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE emp (x INTEGER)")

    def test_if_not_exists_is_silent(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS emp (x INTEGER)")

    def test_drop_missing_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE missing")
        db.execute("DROP TABLE IF EXISTS missing")

    def test_index_accelerated_query_matches_scan(self, db):
        db.execute("CREATE INDEX emp_dept ON emp (dept)")
        rows = db.query("SELECT name FROM emp WHERE dept = 'eng'")
        assert {row["name"] for row in rows} == {"ada", "bob"}


class TestTransactions:
    def test_rollback_undoes_insert_update_delete(self, db):
        db.begin()
        db.execute("INSERT INTO emp (id, name) VALUES (10, 'tmp')")
        db.execute("UPDATE emp SET salary = 0 WHERE id = 1")
        db.execute("DELETE FROM emp WHERE id = 3")
        db.rollback()
        assert db.query_value("SELECT COUNT(*) FROM emp") == 4
        assert db.query_value("SELECT salary FROM emp WHERE id = 1") == 100.0
        assert db.query_value("SELECT COUNT(*) FROM emp WHERE id = 3") == 1

    def test_commit_keeps_changes(self, db):
        with db.transaction():
            db.execute("DELETE FROM emp WHERE id = 4")
        assert db.query_value("SELECT COUNT(*) FROM emp") == 3

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM emp")
                raise RuntimeError("boom")
        assert db.query_value("SELECT COUNT(*) FROM emp") == 4

    def test_rollback_restores_dropped_table(self, db):
        db.begin()
        db.execute("DROP TABLE dept")
        db.rollback()
        assert db.query_value("SELECT COUNT(*) FROM dept") == 2

    def test_rollback_removes_created_table(self, db):
        db.begin()
        db.execute("CREATE TABLE tmp (x INTEGER)")
        db.rollback()
        assert "tmp" not in db.table_names()

    def test_nested_begin_raises(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_raises(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_sql_level_transaction_control(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM emp")
        db.execute("ROLLBACK")
        assert db.query_value("SELECT COUNT(*) FROM emp") == 4


class TestPersistence:
    def test_save_and_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "snapshot.db"
        db.save(path)
        restored = Database.load(path)
        assert restored.query("SELECT * FROM emp ORDER BY id") == \
            db.query("SELECT * FROM emp ORDER BY id")

    def test_loaded_database_enforces_constraints(self, db, tmp_path):
        path = tmp_path / "snapshot.db"
        db.save(path)
        restored = Database.load(path)
        with pytest.raises(ConstraintViolation):
            restored.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")

    def test_loaded_database_continues_rowids(self, db, tmp_path):
        path = tmp_path / "snapshot.db"
        db.save(path)
        restored = Database.load(path)
        restored.execute("INSERT INTO emp (id, name) VALUES (99, 'new')")
        assert restored.query_value("SELECT COUNT(*) FROM emp") == 5

    def test_save_inside_transaction_raises(self, db, tmp_path):
        db.begin()
        with pytest.raises(TransactionError):
            db.save(tmp_path / "x.db")
        db.rollback()


class TestResultSet:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(EngineError):
            db.execute("SELECT id, name FROM emp").scalar()

    def test_column_accessor(self, db):
        result = db.execute("SELECT id FROM emp ORDER BY id")
        assert result.column("id") == [1, 2, 3, 4]
        with pytest.raises(EngineError):
            result.column("nope")

    def test_first_on_empty_result(self, db):
        assert db.execute("SELECT id FROM emp WHERE id = 0").first() is None

    def test_query_rejects_non_select(self, db):
        with pytest.raises(EngineError):
            db.query("DELETE FROM emp")


class TestConnection:
    def test_connection_runs_statements(self, db):
        from repro.engine import Connection
        with Connection(db) as conn:
            assert conn.query("SELECT COUNT(*) AS n FROM emp")[0]["n"] == 4

    def test_closed_connection_raises(self, db):
        from repro.engine import Connection
        conn = Connection(db)
        conn.close()
        with pytest.raises(EngineError):
            conn.query("SELECT 1")
