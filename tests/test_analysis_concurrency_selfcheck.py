"""The repo lints its own lock discipline (tier-1).

Any new ``ODB5xx`` diagnostic against ``src/repro`` fails this test:
either the flagged code is a real hazard (fix the code) or the
analyzer misjudged an idiom (fix the analyzer) — both are bugs worth
stopping a merge for.  The check also asserts the run is *non-vacuous*
— the analyzer must actually have discovered the engine's locks — so
a regression that blinds the scanner cannot masquerade as a clean
pass.
"""

from pathlib import Path

from repro.analysis.concurrency import ConcurrencyAnalyzer, analyze_concurrency

SOURCE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert SOURCE_ROOT.is_dir()


def test_repo_lock_discipline_is_clean():
    collector = analyze_concurrency(SOURCE_ROOT)
    assert not collector.diagnostics, "\n".join(
        str(diagnostic) for diagnostic in collector.sorted())


def test_selfcheck_is_not_vacuous():
    analyzer = ConcurrencyAnalyzer()
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        analyzer.add_file(path)
    analyzer.run()
    lock_owners = {
        (scan.label, class_name)
        for scan in analyzer._scans
        for class_name, info in scan.classes.items()
        if info.locks
    }
    guarded = sum(
        len(info.guards)
        for scan in analyzer._scans
        for info in scan.classes.values()
    )
    # The engine's core locking surfaces must all be visible.
    names = {class_name for _, class_name in lock_owners}
    assert {"Database", "ReadWriteLock", "RequestGateway",
            "ShardMap", "TenantManager"} <= names, sorted(names)
    assert guarded >= 20, guarded


def test_cli_self_run_is_clean(capsys):
    from repro.analysis.cli import main

    assert main(["concurrency", str(SOURCE_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out
