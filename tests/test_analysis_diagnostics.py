"""Unit tests for the shared diagnostics core."""

import pytest

from repro.analysis import CODES, Diagnostic, DiagnosticCollector, \
    Severity, SourceSpan
from repro.errors import AnalysisError


class TestSeverity:
    def test_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank
        assert Severity.WARNING.rank < Severity.INFO.rank


class TestDiagnostic:
    def test_unregistered_code_is_rejected(self):
        with pytest.raises(ValueError, match="ODB999"):
            Diagnostic("ODB999", Severity.ERROR, "nope")

    def test_every_code_family_is_populated(self):
        families = {code[:4] for code in CODES}
        assert families == {"ODB1", "ODB2", "ODB3", "ODB4", "ODB5"}

    def test_str_includes_source_span_severity_and_code(self):
        diagnostic = Diagnostic("ODB101", Severity.ERROR,
                                "unknown table 'x'",
                                SourceSpan(3, 7), "queries.sql")
        assert str(diagnostic) == \
            "queries.sql:3:7: error [ODB101] unknown table 'x'"

    def test_str_without_span_or_source(self):
        diagnostic = Diagnostic("ODB202", Severity.WARNING, "orphan")
        assert str(diagnostic) == "warning [ODB202] orphan"


class TestSourceSpan:
    def test_str_is_line_colon_column(self):
        assert str(SourceSpan(12, 4)) == "12:4"

    def test_spans_are_hashable_and_comparable(self):
        assert SourceSpan(1, 2) == SourceSpan(1, 2)
        assert len({SourceSpan(1, 2), SourceSpan(1, 2)}) == 1


class TestDiagnosticCollector:
    def test_default_source_is_stamped(self):
        collector = DiagnosticCollector("artifact.sql")
        collector.error("ODB101", "boom")
        assert collector.diagnostics[0].source == "artifact.sql"

    def test_explicit_source_wins(self):
        collector = DiagnosticCollector("default")
        collector.error("ODB101", "boom", source="special")
        assert collector.diagnostics[0].source == "special"

    def test_queries(self):
        collector = DiagnosticCollector()
        collector.error("ODB101", "a")
        collector.warning("ODB112", "b")
        collector.info("ODB112", "c")
        assert collector.has_errors()
        assert len(collector) == 3
        assert [d.code for d in collector.errors] == ["ODB101"]
        assert [d.code for d in collector.warnings] == ["ODB112"]
        assert collector.codes() == ["ODB101", "ODB112", "ODB112"]
        assert len(collector.by_code("ODB112")) == 2

    def test_sorted_puts_errors_before_warnings(self):
        collector = DiagnosticCollector()
        collector.warning("ODB111", "later", SourceSpan(1, 1))
        collector.error("ODB101", "first", SourceSpan(9, 9))
        assert [d.code for d in collector.sorted()] == \
            ["ODB101", "ODB111"]

    def test_render_ends_with_summary_line(self):
        collector = DiagnosticCollector()
        collector.error("ODB101", "boom")
        assert collector.render().endswith("1 error(s), 0 warning(s)")

    def test_raise_if_errors_defaults_to_analysis_error(self):
        collector = DiagnosticCollector()
        collector.error("ODB101", "unknown table 'ghost'")
        with pytest.raises(AnalysisError, match="ghost"):
            collector.raise_if_errors()

    def test_raise_if_errors_is_a_noop_for_warnings(self):
        collector = DiagnosticCollector()
        collector.warning("ODB111", "meh")
        collector.raise_if_errors()  # does not raise

    def test_extend_merges_collectors(self):
        first = DiagnosticCollector()
        first.error("ODB101", "a")
        second = DiagnosticCollector()
        second.extend(first)
        assert second.codes() == ["ODB101"]
