"""Tests for the OLAP substrate: schemas, engine, MDX-lite, navigation."""

import pytest

from repro.engine import Database
from repro.errors import CubeDefinitionError, MdxSyntaxError, QueryError
from repro.olap import (
    CubeDimension,
    CubeNavigator,
    CubeSchema,
    Measure,
    OlapEngine,
    parse_mdx,
)


def build_star(db):
    db.execute("CREATE TABLE dim_time (time_key INTEGER PRIMARY KEY, "
               "year INTEGER, quarter TEXT, month TEXT)")
    db.execute("CREATE TABLE dim_store (store_key INTEGER PRIMARY KEY, "
               "region TEXT, city TEXT)")
    db.execute("CREATE TABLE fact_sales (time_key INTEGER, "
               "store_key INTEGER, revenue REAL, quantity INTEGER)")
    times = [
        (1, 2020, "Q1", "Jan"), (2, 2020, "Q1", "Feb"),
        (3, 2020, "Q2", "Apr"), (4, 2021, "Q1", "Jan"),
    ]
    for row in times:
        db.execute("INSERT INTO dim_time VALUES (?, ?, ?, ?)", row)
    stores = [(1, "North", "Lille"), (2, "North", "Paris"),
              (3, "South", "Nice")]
    for row in stores:
        db.execute("INSERT INTO dim_store VALUES (?, ?, ?)", row)
    facts = [
        (1, 1, 100.0, 10), (1, 2, 50.0, 5), (2, 1, 75.0, 7),
        (3, 3, 200.0, 20), (4, 2, 125.0, 12), (4, 3, 25.0, 2),
    ]
    for row in facts:
        db.execute("INSERT INTO fact_sales VALUES (?, ?, ?, ?)", row)


@pytest.fixture
def db():
    database = Database()
    build_star(database)
    return database


@pytest.fixture
def schema():
    return CubeSchema(
        "Sales", "fact_sales",
        measures=[Measure("revenue", "revenue", "sum"),
                  Measure("quantity", "quantity", "sum"),
                  Measure("avg_ticket", "revenue", "avg")],
        dimensions=[
            CubeDimension("Time", "dim_time", "time_key",
                          ["year", "quarter", "month"]),
            CubeDimension("Store", "dim_store", "store_key",
                          ["region", "city"]),
        ])


@pytest.fixture
def engine(db, schema):
    return OlapEngine(db, schema)


class TestCubeSchema:
    def test_requires_measures_and_dimensions(self):
        with pytest.raises(CubeDefinitionError):
            CubeSchema("c", "f", [], [CubeDimension("d", "t", "k", ["l"])])
        with pytest.raises(CubeDefinitionError):
            CubeSchema("c", "f", [Measure("m", "c")], [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CubeDefinitionError):
            CubeSchema("c", "f",
                       [Measure("m", "a"), Measure("m", "b")],
                       [CubeDimension("d", "t", "k", ["l"])])

    def test_bad_aggregator_rejected(self):
        with pytest.raises(CubeDefinitionError):
            Measure("m", "c", "stddev")

    def test_dimension_needs_levels(self):
        with pytest.raises(CubeDefinitionError):
            CubeDimension("d", "t", "k", [])

    def test_level_index(self, schema):
        time = schema.dimension("Time")
        assert time.level_index("quarter") == 1
        with pytest.raises(CubeDefinitionError):
            time.level_index("week")

    def test_validate_against_reports_problems(self, schema):
        empty = Database()
        problems = schema.validate_against(empty)
        assert any("fact table" in problem for problem in problems)

    def test_validate_against_detects_missing_level(self, db, schema):
        db.execute("DROP TABLE dim_store")
        db.execute("CREATE TABLE dim_store "
                   "(store_key INTEGER, region TEXT)")  # no city
        problems = schema.validate_against(db)
        assert any("city" in problem for problem in problems)

    def test_from_definition_roundtrip(self):
        definition = {
            "name": "Sales",
            "fact_table": "fact_sales",
            "measures": [{"name": "revenue", "column": "revenue",
                          "aggregator": "sum"}],
            "dimensions": [{"name": "Time", "table": "dim_time",
                            "key": "time_key",
                            "levels": ["year", "month"]}],
        }
        schema = CubeSchema.from_definition(definition)
        assert schema.fact_table == "fact_sales"
        assert schema.dimension("Time").levels == ["year", "month"]

    def test_from_definition_missing_key(self):
        with pytest.raises(CubeDefinitionError):
            CubeSchema.from_definition({"name": "x"})


class TestOlapEngine:
    def test_grand_total(self, engine):
        assert engine.grand_total("revenue") == 575.0

    def test_group_by_one_axis(self, engine):
        cells = engine.query(["revenue"], [("Time", "year")])
        assert cells.cell([2020], "revenue") == 425.0
        assert cells.cell([2021], "revenue") == 150.0

    def test_group_by_two_axes(self, engine):
        cells = engine.query(["revenue"],
                             [("Time", "year"), ("Store", "region")])
        assert cells.cell([2020, "North"], "revenue") == 225.0
        assert cells.cell([2020, "South"], "revenue") == 200.0

    def test_slicer_filters(self, engine):
        cells = engine.query(["revenue"], [("Time", "year")],
                             [("Store", "region", "North")])
        assert cells.cell([2020], "revenue") == 225.0
        assert cells.cell([2021], "revenue") == 125.0

    def test_dice_with_member_list(self, engine):
        cells = engine.query(["quantity"], [],
                             [("Store", "city", ["Lille", "Nice"])])
        assert cells.rows[0]["quantity"] == 39

    def test_avg_aggregator(self, engine):
        cells = engine.query(["avg_ticket"], [("Store", "region")])
        assert cells.cell(["South"], "avg_ticket") == \
            pytest.approx(112.5)

    def test_unknown_measure_rejected(self, engine):
        with pytest.raises(CubeDefinitionError):
            engine.query(["profit"])

    def test_unknown_level_rejected(self, engine):
        with pytest.raises(CubeDefinitionError):
            engine.query(["revenue"], [("Time", "week")])

    def test_empty_measure_list_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query([])

    def test_members(self, engine):
        assert engine.members("Store", "region") == ["North", "South"]
        assert engine.members("Time", "year") == [2020, 2021]

    def test_cache_hit_on_repeat(self, engine):
        engine.query(["revenue"], [("Time", "year")])
        engine.query(["revenue"], [("Time", "year")])
        assert engine.statistics["cache_hits"] == 1

    def test_cache_respects_slicer_differences(self, engine):
        engine.query(["revenue"], [], [("Time", "year", 2020)])
        engine.query(["revenue"], [], [("Time", "year", 2021)])
        assert engine.statistics["cache_hits"] == 0

    def test_cache_invalidation_after_load(self, engine, db):
        before = engine.grand_total("revenue")
        db.execute("INSERT INTO fact_sales VALUES (1, 1, 1000.0, 1)")
        stale = engine.grand_total("revenue")
        assert stale == before  # cached
        engine.invalidate_cache()
        assert engine.grand_total("revenue") == before + 1000.0

    def test_cache_disabled(self, db, schema):
        engine = OlapEngine(db, schema, use_cache=False)
        engine.grand_total("revenue")
        engine.grand_total("revenue")
        assert engine.statistics["cache_hits"] == 0

    def test_engine_validates_schema_at_construction(self, schema):
        with pytest.raises(CubeDefinitionError):
            OlapEngine(Database(), schema)


class TestCellSet:
    def test_totals(self, engine):
        cells = engine.query(["revenue", "quantity"], [("Time", "year")])
        totals = cells.totals()
        assert totals["revenue"] == 575.0
        assert totals["quantity"] == 56

    def test_to_table_has_header(self, engine):
        cells = engine.query(["revenue"], [("Store", "region")])
        table = cells.to_table()
        assert table[0] == ["Store.region", "revenue"]
        assert len(table) == 3

    def test_cell_errors(self, engine):
        cells = engine.query(["revenue"], [("Time", "year")])
        with pytest.raises(QueryError):
            cells.cell([2020], "profit")
        with pytest.raises(QueryError):
            cells.cell([1999], "revenue")
        with pytest.raises(QueryError):
            cells.cell([2020, "extra"], "revenue")


class TestMdx:
    def test_full_statement_parses(self):
        query = parse_mdx(
            "SELECT {[Measures].[revenue], [Measures].[quantity]} "
            "ON COLUMNS, {[Time].[year].Members} ON ROWS "
            "FROM [Sales] WHERE ([Store].[region].[North])")
        assert query.cube == "Sales"
        assert query.measures == ["revenue", "quantity"]
        assert query.row_axes == [("Time", "year")]
        assert query.slicers == [("Store", "region", "North")]

    def test_execution_matches_engine_api(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[Time].[year].Members} ON ROWS FROM [Sales] "
            "WHERE ([Store].[region].[North])")
        cells = query.execute(engine)
        assert cells.cell([2020], "revenue") == 225.0

    def test_multiple_row_axes(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS, "
            "{[Time].[year].Members, [Store].[region].Members} ON ROWS "
            "FROM [Sales]")
        cells = query.execute(engine)
        assert len(cells.rows) == 4

    def test_query_without_rows_axis(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS FROM [Sales]")
        cells = query.execute(engine)
        assert cells.rows[0]["revenue"] == 575.0

    def test_wrong_cube_rejected_at_execution(self, engine):
        query = parse_mdx(
            "SELECT {[Measures].[revenue]} ON COLUMNS FROM [Other]")
        with pytest.raises(QueryError):
            query.execute(engine)

    @pytest.mark.parametrize("bad", [
        "SELECT FROM [Sales]",
        "SELECT {[Time].[year].Members} ON COLUMNS FROM [Sales]",
        "SELECT {[Measures].[x]} ON COLUMNS, "
        "{[Time].[year]} ON ROWS FROM [Sales]",
        "SELECT {[Measures].[x]} ON COLUMNS, "
        "{[Measures].[y]} ON COLUMNS FROM [Sales]",
        "SELECT {[Measures].[x]} ON COLUMNS FROM [Sales] WHERE ([Time])",
        "completely wrong",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(MdxSyntaxError):
            parse_mdx(bad)


class TestNavigation:
    def test_drill_down_path(self, engine):
        navigator = CubeNavigator(engine, measures=["revenue"])
        view = navigator.current_view()
        assert view.rows[0]["revenue"] == 575.0  # fully rolled up

        navigator.drill_down("Time")
        view = navigator.current_view()
        assert view.axes == [("Time", "year")]

        navigator.drill_down("Time")
        view = navigator.current_view()
        assert view.axes == [("Time", "quarter")]

    def test_drill_past_finest_level_rejected(self, engine):
        navigator = CubeNavigator(engine)
        navigator.drill_down("Store").drill_down("Store")
        with pytest.raises(QueryError):
            navigator.drill_down("Store")

    def test_roll_up(self, engine):
        navigator = CubeNavigator(engine, measures=["revenue"])
        navigator.drill_down("Time").drill_down("Time")
        navigator.roll_up("Time")
        assert navigator.visible_axes() == [("Time", "year")]
        navigator.roll_up("Time")
        assert navigator.visible_axes() == []
        with pytest.raises(QueryError):
            navigator.roll_up("Time")

    def test_slice_and_clear(self, engine):
        navigator = CubeNavigator(engine, measures=["revenue"])
        navigator.drill_down("Time")
        navigator.slice("Store", "region", "North")
        view = navigator.current_view()
        assert view.cell([2020], "revenue") == 225.0
        navigator.clear_slice("Store", "region")
        view = navigator.current_view()
        assert view.cell([2020], "revenue") == 425.0

    def test_dice(self, engine):
        navigator = CubeNavigator(engine, measures=["quantity"])
        navigator.dice("Store", "city", ["Lille", "Nice"])
        view = navigator.current_view()
        assert view.rows[0]["quantity"] == 39

    def test_reset(self, engine):
        navigator = CubeNavigator(engine)
        navigator.drill_down("Time").slice("Store", "region", "North")
        navigator.reset()
        assert navigator.visible_axes() == []
        assert navigator.active_slicers() == []

    def test_breadcrumbs_record_the_path(self, engine):
        navigator = CubeNavigator(engine)
        navigator.drill_down("Time").slice("Store", "region", "North")
        assert "drill-down Time -> year" in navigator.breadcrumbs
        assert any("slice Store.region" in crumb
                   for crumb in navigator.breadcrumbs)


class TestCalculatedMeasures:
    @pytest.fixture
    def calc_engine(self, db):
        from repro.olap.model import CalculatedMeasure

        schema = CubeSchema(
            "Sales", "fact_sales",
            measures=[Measure("revenue", "revenue", "sum"),
                      Measure("quantity", "quantity", "sum")],
            dimensions=[
                CubeDimension("Time", "dim_time", "time_key",
                              ["year", "quarter", "month"]),
                CubeDimension("Store", "dim_store", "store_key",
                              ["region", "city"]),
            ],
            calculated=[CalculatedMeasure(
                "unit_price", "revenue / quantity",
                ["revenue", "quantity"])])
        return OlapEngine(db, schema)

    def test_ratio_computed_per_cell(self, calc_engine):
        cells = calc_engine.query(["unit_price"], [("Store", "region")])
        north = cells.cell(["North"], "unit_price")
        assert north == pytest.approx(350.0 / 34)

    def test_base_and_calculated_together(self, calc_engine):
        cells = calc_engine.query(["revenue", "unit_price"],
                                  [("Time", "year")])
        row_2020 = [row for row in cells.rows
                    if row["Time.year"] == 2020][0]
        assert row_2020["unit_price"] == pytest.approx(
            row_2020["revenue"] / 42)

    def test_division_by_zero_yields_null(self, db):
        from repro.olap.model import CalculatedMeasure

        db.execute("INSERT INTO dim_store VALUES (9, 'Ghost', 'Nul')")
        db.execute("INSERT INTO fact_sales VALUES (1, 9, 10.0, 0)")
        schema = CubeSchema(
            "S", "fact_sales",
            measures=[Measure("revenue", "revenue"),
                      Measure("quantity", "quantity")],
            dimensions=[CubeDimension("Store", "dim_store",
                                      "store_key", ["city"])],
            calculated=[CalculatedMeasure(
                "unit_price", "revenue / quantity",
                ["revenue", "quantity"])])
        engine = OlapEngine(db, schema)
        cells = engine.query(["unit_price"], [("Store", "city")])
        assert cells.cell(["Nul"], "unit_price") is None

    def test_formula_validation(self):
        from repro.olap.model import CalculatedMeasure

        with pytest.raises(CubeDefinitionError):
            CalculatedMeasure("bad", "revenue +", ["revenue"])
        with pytest.raises(CubeDefinitionError):
            CalculatedMeasure("bad", "__import__('os')", ["revenue"])
        with pytest.raises(CubeDefinitionError):
            CalculatedMeasure("bad", "ghost + 1", ["revenue"])
        with pytest.raises(CubeDefinitionError):
            CalculatedMeasure("bad", "1 + 1", [])

    def test_calculated_name_clash_rejected(self):
        from repro.olap.model import CalculatedMeasure

        with pytest.raises(CubeDefinitionError):
            CubeSchema(
                "S", "f",
                measures=[Measure("revenue", "revenue")],
                dimensions=[CubeDimension("D", "t", "k", ["l"])],
                calculated=[CalculatedMeasure(
                    "revenue", "revenue * 2", ["revenue"])])

    def test_unknown_operand_rejected(self):
        from repro.olap.model import CalculatedMeasure

        with pytest.raises(CubeDefinitionError):
            CubeSchema(
                "S", "f",
                measures=[Measure("revenue", "revenue")],
                dimensions=[CubeDimension("D", "t", "k", ["l"])],
                calculated=[CalculatedMeasure(
                    "m", "ghost * 2", ["ghost"])])

    def test_from_definition_with_calculated(self):
        definition = {
            "name": "S", "fact_table": "f",
            "measures": [{"name": "revenue", "column": "revenue"}],
            "dimensions": [{"name": "D", "table": "t", "key": "k",
                            "levels": ["l"]}],
            "calculated": [{"name": "double", "formula": "revenue * 2",
                            "operands": ["revenue"]}],
        }
        schema = CubeSchema.from_definition(definition)
        assert schema.is_calculated("double")


class TestDrillThrough:
    def test_cell_to_fact_rows(self, engine):
        rows = engine.drill_through([("Store", "region", "North"),
                                     ("Time", "year", 2020)])
        assert len(rows) == 3
        assert all(row["store_region"] == "North" for row in rows)
        assert {row["revenue"] for row in rows} == {100.0, 50.0, 75.0}

    def test_limit(self, engine):
        rows = engine.drill_through([("Store", "region", "North")],
                                    limit=2)
        assert len(rows) == 2

    def test_requires_coordinates(self, engine):
        with pytest.raises(QueryError):
            engine.drill_through([])

    def test_unknown_level_rejected(self, engine):
        with pytest.raises(CubeDefinitionError):
            engine.drill_through([("Store", "galaxy", "X")])


class TestCountDistinct:
    def test_count_distinct_measure(self, db):
        schema = CubeSchema(
            "S", "fact_sales",
            measures=[Measure("stores", "store_key",
                              "count_distinct"),
                      Measure("rows_", "store_key", "count")],
            dimensions=[CubeDimension("Time", "dim_time", "time_key",
                                      ["year"])])
        engine = OlapEngine(db, schema)
        cells = engine.query(["stores", "rows_"], [("Time", "year")])
        assert cells.cell([2020], "stores") == 3  # distinct stores
        assert cells.cell([2020], "rows_") == 4   # fact rows
