"""Tests for persisted dashboard definitions (live re-rendering)."""

import pytest

from repro.core import OdbisPlatform
from repro.errors import ReportDefinitionError, ServiceError
from repro.reporting import DashboardDefinition, ElementDefinition


@pytest.fixture
def platform():
    platform = OdbisPlatform()
    context = platform.provisioning.provision("acme", "Acme")
    context.warehouse_db.execute(
        "CREATE TABLE sales (region TEXT, revenue REAL)")
    context.warehouse_db.executemany(
        "INSERT INTO sales VALUES (?, ?)",
        [("N", 10.0), ("S", 20.0)])
    platform.metadata.create_dataset(
        "acme", "sales", "warehouse", "SELECT * FROM sales")
    return platform


def sales_definition():
    definition = DashboardDefinition("exec", "executive overview")
    definition.add_row(
        definition.chart("sales", "rev", "bar", "region", "revenue"),
        definition.table("sales", "detail", ["region", "revenue"],
                         sort_by="revenue", descending=True))
    return definition


class TestDefinitionModel:
    def test_dict_roundtrip(self):
        definition = sales_definition()
        payload = definition.to_dict()
        restored = DashboardDefinition.from_dict(payload)
        assert restored.name == "exec"
        assert restored.to_dict() == payload

    def test_datasets_deduplicated(self):
        definition = sales_definition()
        assert definition.datasets() == ["sales"]

    def test_empty_row_rejected(self):
        with pytest.raises(ReportDefinitionError):
            DashboardDefinition("d").add_row()

    def test_render_requires_rows(self):
        with pytest.raises(ReportDefinitionError):
            DashboardDefinition("d").render(lambda name: [])

    def test_bad_element_kind_rejected(self):
        with pytest.raises(ReportDefinitionError):
            ElementDefinition.from_dict({"kind": "hologram"})

    def test_render_with_resolver(self):
        definition = sales_definition()
        dashboard = definition.render(
            lambda name: [{"region": "X", "revenue": 5.0}])
        assert dashboard.element("rev").series == [("X", 5.0)]


class TestReportingServiceDefinitions:
    def test_define_and_render(self, platform):
        platform.reporting.define_dashboard("acme", sales_definition())
        assert platform.reporting.dashboard_definitions("acme") == \
            ["exec"]
        dashboard = platform.reporting.render_dashboard("acme", "exec")
        assert dict(dashboard.element("rev").series) == \
            {"N": 10.0, "S": 20.0}

    def test_rerender_reflects_new_data(self, platform):
        platform.reporting.define_dashboard("acme", sales_definition())
        platform.reporting.render_dashboard("acme", "exec")
        warehouse = platform.tenants.context("acme").warehouse_db
        warehouse.execute("INSERT INTO sales VALUES ('N', 90.0)")
        dashboard = platform.reporting.render_dashboard("acme", "exec")
        assert dict(dashboard.element("rev").series)["N"] == 100.0

    def test_unknown_dataset_rejected_at_definition(self, platform):
        definition = DashboardDefinition("bad")
        definition.add_row(
            definition.chart("ghost", "c", "bar", "x", "y"))
        with pytest.raises(ServiceError):
            platform.reporting.define_dashboard("acme", definition)

    def test_duplicate_definition_rejected(self, platform):
        platform.reporting.define_dashboard("acme", sales_definition())
        with pytest.raises(ServiceError):
            platform.reporting.define_dashboard(
                "acme", sales_definition())

    def test_unknown_definition_rejected_at_render(self, platform):
        with pytest.raises(ServiceError):
            platform.reporting.render_dashboard("acme", "ghost")

    def test_renders_are_metered(self, platform):
        platform.reporting.define_dashboard("acme", sales_definition())
        platform.reporting.render_dashboard("acme", "exec")
        platform.reporting.render_dashboard("acme", "exec")
        assert platform.billing.usage("acme")["dashboard"] == 2

    def test_definition_survives_in_shared_operational_db(self, platform):
        """Definitions live in SQL, not process memory: a second
        service instance over the same tenancy sees them."""
        from repro.core.reporting_service import ReportingService

        platform.reporting.define_dashboard("acme", sales_definition())
        fresh = ReportingService(platform.tenants, platform.metadata)
        assert fresh.dashboard_definitions("acme") == ["exec"]
        dashboard = fresh.render_dashboard("acme", "exec")
        assert len(dashboard) == 2


class TestDashboardWebApi:
    @pytest.fixture
    def client(self, platform):
        response = platform.web.request(
            "POST", "/login",
            body={"username": "admin@acme", "password": "changeme"})
        return platform, {"X-Auth-Token": response.json()["token"]}

    def test_publish_and_deliver_via_web(self, client):
        platform, headers = client
        payload = sales_definition().to_dict()
        response = platform.web.request(
            "POST", "/tenants/acme/dashboards",
            headers=headers, body=payload)
        assert response.status == 201

        delivered = platform.web.request(
            "GET", "/tenants/acme/dashboards/exec", headers=headers)
        assert delivered.json()["dashboard"] == "exec"
        chart = delivered.json()["elements"][0]
        assert {entry["category"] for entry in chart["series"]} == \
            {"N", "S"}

    def test_publish_requires_report_edit(self, client):
        platform, _headers = client
        platform.admin.create_account(
            "viewer@acme", "pw", tenant="acme", roles=["viewer"])
        session = platform.admin.login("viewer@acme", "pw")
        response = platform.web.request(
            "POST", "/tenants/acme/dashboards",
            headers={"X-Auth-Token": session.token},
            body=sales_definition().to_dict())
        assert response.status == 403
