"""Tests for the MDA viewpoints, QVT engine, transformations and 2TUP."""

import pytest

from repro.cwm import OlapBuilder, RelationalBuilder
from repro.errors import MdaError, ProcessError, TransformationError
from repro.mda import (
    DISCIPLINES,
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    DwProject,
    Iteration,
    MeasureSpec,
    PimModel,
    QvtTransformation,
    Rule,
    TechnicalRequirement,
    TwoTrackProcess,
    cim_to_pim,
    generate_code,
    pim_to_psm,
)
from repro.mda.transformations import _snake


@pytest.fixture
def cim():
    return CimModel("retail", [
        BusinessRequirement(
            subject="Sales",
            goal="track revenue by product and time",
            measures=[MeasureSpec("revenue", "sum"),
                      MeasureSpec("quantity", "sum")],
            dimensions=[
                DimensionSpec("Time", ["year", "quarter", "month"],
                              is_time=True),
                DimensionSpec("Product", ["category", "sku"]),
                DimensionSpec("Store", ["region", "city"]),
            ]),
        BusinessRequirement(
            subject="Inventory",
            measures=[MeasureSpec("stock_level", "avg")],
            dimensions=[
                DimensionSpec("Time", ["year", "quarter", "month"],
                              is_time=True),
                DimensionSpec("Product", ["category", "sku"]),
            ]),
    ])


class TestViewpoints:
    def test_cim_requires_requirements(self):
        with pytest.raises(MdaError):
            CimModel("empty", [])

    def test_requirement_requires_measures_and_dimensions(self):
        with pytest.raises(MdaError):
            BusinessRequirement("x", [], [DimensionSpec("d")])
        with pytest.raises(MdaError):
            BusinessRequirement("x", [MeasureSpec("m")], [])

    def test_bad_aggregator_rejected(self):
        with pytest.raises(MdaError):
            MeasureSpec("m", "geometric-mean")

    def test_dimension_defaults_one_level(self):
        spec = DimensionSpec("Customer")
        assert spec.levels == ["customer"]

    def test_snake_case_helper(self):
        assert _snake("Sales Region") == "sales_region"
        assert _snake("  Weird--Name!! ") == "weird_name"


class TestCimToPim:
    def test_each_requirement_becomes_a_cube(self, cim):
        pim, traces = cim_to_pim(cim)
        assert {cube.name for cube in pim.cubes()} == \
            {"Sales", "Inventory"}
        assert any(trace["rule"] == "requirement-to-cube"
                   for trace in traces)

    def test_shared_dimensions_are_deduplicated(self, cim):
        pim, _ = cim_to_pim(cim)
        names = [dimension.name for dimension in pim.dimensions()]
        assert sorted(names) == ["Product", "Store", "Time"]

    def test_hierarchy_levels_preserved_in_order(self, cim):
        pim, _ = cim_to_pim(cim)
        olap = OlapBuilder(pim.extent)
        time = pim.extent.find_by_name("Dimension", "Time")
        assert [level.name for level in olap.levels_of(time)] == \
            ["year", "quarter", "month"]

    def test_measures_carry_aggregators(self, cim):
        pim, _ = cim_to_pim(cim)
        olap = OlapBuilder(pim.extent)
        inventory = pim.extent.find_by_name("Cube", "Inventory")
        measures = olap.measures_of(inventory)
        assert measures[0].get("aggregator") == "avg"

    def test_pim_is_valid(self, cim):
        pim, _ = cim_to_pim(cim)
        assert pim.validate() == []


class TestPimToPsm:
    def test_star_schema_shape(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, cim.technical)
        table_names = {table.name for table in psm.tables()}
        assert table_names == {
            "dim_time", "dim_product", "dim_store",
            "fact_sales", "fact_inventory",
        }

    def test_fact_table_has_fk_per_dimension_and_measure_columns(self, cim):
        pim, _ = cim_to_pim(pim_or_cim(cim))
        psm, _ = pim_to_psm(pim, cim.technical)
        relational = RelationalBuilder(psm.extent)
        fact = psm.extent.find_by_name("Table", "fact_sales")
        columns = {column.name for column in relational.columns_of(fact)}
        assert columns == {
            "time_key", "product_key", "store_key",
            "revenue", "quantity",
        }
        assert len(relational.foreign_keys_of(fact)) == 3

    def test_dimension_tables_have_surrogate_key_and_levels(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, cim.technical)
        relational = RelationalBuilder(psm.extent)
        dim_time = psm.extent.find_by_name("Table", "dim_time")
        columns = [column.name
                   for column in relational.columns_of(dim_time)]
        assert columns == ["time_key", "year", "quarter", "month"]
        assert relational.primary_key_of(dim_time) is not None

    def test_no_surrogate_keys_when_tcim_says_so(self, cim):
        technical = TechnicalRequirement(surrogate_keys=False)
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, technical)
        relational = RelationalBuilder(psm.extent)
        dim_time = psm.extent.find_by_name("Table", "dim_time")
        assert relational.primary_key_of(dim_time) is None

    def test_history_tracking_adds_validity_columns(self, cim):
        technical = TechnicalRequirement(history_tracking=True)
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, technical)
        relational = RelationalBuilder(psm.extent)
        dim_time = psm.extent.find_by_name("Table", "dim_time")
        columns = {column.name
                   for column in relational.columns_of(dim_time)}
        assert {"valid_from", "valid_to"} <= columns

    def test_traces_resolve_dimensions_to_tables(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, context = pim_to_psm(pim)
        time = pim.extent.find_by_name("Dimension", "Time")
        table = context.resolve(time, "Table")
        assert table.name == "dim_time"

    def test_psm_is_valid(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim)
        assert psm.validate() == []


def pim_or_cim(cim):
    """Tiny helper so a test reads naturally above."""
    return cim


class TestQvtEngine:
    def test_transformation_requires_rules(self):
        with pytest.raises(TransformationError):
            QvtTransformation("empty", [])

    def test_guard_filters_elements(self, cim):
        pim, _ = cim_to_pim(cim)
        target = PimModel("target")
        copies = []

        def copy_cube(element, context):
            copied = target.extent.create("Package", name=element.name)
            copies.append(copied)
            return copied

        transformation = QvtTransformation("t", [
            Rule("only-sales", "Cube", copy_cube,
                 guard=lambda element: element.name == "Sales"),
        ])
        context = transformation.run(pim.extent, target.extent)
        assert [element.name for element in copies] == ["Sales"]
        assert len(context.traces) == 1

    def test_unresolved_trace_raises(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, context = pim_to_psm(pim)
        stray = pim.extent.create("Package", name="unmapped")
        with pytest.raises(TransformationError):
            context.resolve(stray)
        assert context.try_resolve(stray) is None

    def test_rules_returning_none_leave_no_trace(self, cim):
        pim, _ = cim_to_pim(cim)
        target = PimModel("target")
        transformation = QvtTransformation("noop", [
            Rule("skip", "Cube", lambda element, context: None),
        ])
        context = transformation.run(pim.extent, target.extent)
        assert context.traces == []


class TestCodegen:
    def test_ddl_orders_dimensions_before_facts(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim)
        artifacts = generate_code(psm, pim)
        create_order = [line.split()[2] for line in artifacts.ddl
                        if line.startswith("CREATE TABLE")]
        fact_position = create_order.index("fact_sales")
        for dim in ("dim_time", "dim_product", "dim_store"):
            assert create_order.index(dim) < fact_position

    def test_ddl_is_executable_on_the_engine(self, cim):
        from repro.engine import Database

        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim)
        artifacts = generate_code(psm, pim)
        db = Database()
        for statement in artifacts.ddl:
            db.execute(statement)
        assert "fact_sales" in db.table_names()
        assert "dim_product" in db.table_names()

    def test_etl_jobs_have_completion_points(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim)
        artifacts = generate_code(psm)
        assert len(artifacts.etl_jobs) == 5
        assert all(job["source"] is None for job in artifacts.etl_jobs)
        assert len(artifacts.completion_points) == 5

    def test_cube_definitions_only_with_pim(self, cim):
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim)
        without = generate_code(psm)
        with_pim = generate_code(psm, pim)
        assert without.cube_definitions == []
        sales = [cube for cube in with_pim.cube_definitions
                 if cube["name"] == "Sales"][0]
        assert sales["fact_table"] == "fact_sales"
        assert {d["name"] for d in sales["dimensions"]} == \
            {"Time", "Product", "Store"}


class TestTwoTrackProcess:
    def test_realization_blocked_until_both_branches_done(self):
        iteration = Iteration(1, "warehouse")
        iteration.complete("preliminary-study")
        iteration.complete("business-requirements")
        iteration.complete("analysis")
        with pytest.raises(ProcessError):
            iteration.complete("preliminary-design")
        iteration.complete("technical-requirements")
        iteration.complete("generic-design")
        iteration.complete("preliminary-design")

    def test_branch_internal_ordering(self):
        iteration = Iteration(1, "warehouse")
        with pytest.raises(ProcessError):
            iteration.complete("analysis")
        iteration.complete("preliminary-study")
        with pytest.raises(ProcessError):
            iteration.complete("analysis")

    def test_branches_may_interleave(self):
        iteration = Iteration(1, "warehouse")
        iteration.complete("preliminary-study")
        iteration.complete("technical-requirements")
        iteration.complete("business-requirements")
        iteration.complete("generic-design")
        iteration.complete("analysis")
        assert iteration.can_complete("preliminary-design")

    def test_double_completion_rejected(self):
        iteration = Iteration(1, "warehouse")
        iteration.complete("preliminary-study")
        with pytest.raises(ProcessError):
            iteration.complete("preliminary-study")

    def test_unknown_discipline_rejected(self):
        iteration = Iteration(1, "warehouse")
        with pytest.raises(ProcessError):
            iteration.complete("vibing")

    def test_full_iteration_completes(self):
        iteration = Iteration(1, "warehouse")
        for discipline in DISCIPLINES:
            iteration.complete(discipline.name, deliverable=discipline.name)
        assert iteration.is_complete
        assert iteration.progress() == 1.0
        assert iteration.deliverable("coding") == "coding"

    def test_process_tracks_layer_completion(self):
        process = TwoTrackProcess("p", ["staging", "warehouse"])
        iteration = process.start_iteration("staging")
        assert not process.layer_complete("staging")
        for discipline in DISCIPLINES:
            iteration.complete(discipline.name)
        assert process.layer_complete("staging")
        assert not process.is_complete

    def test_unknown_layer_rejected(self):
        process = TwoTrackProcess("p", ["staging"])
        with pytest.raises(ProcessError):
            process.start_iteration("moon-base")

    def test_discipline_matrix_shape(self):
        process = TwoTrackProcess("p", ["staging"])
        iteration = process.start_iteration("staging")
        iteration.complete("preliminary-study")
        matrix = process.discipline_matrix()
        assert matrix[0]["layer"] == "staging"
        assert matrix[0]["disciplines"]["preliminary-study"] is True
        assert matrix[0]["disciplines"]["coding"] is False


class TestDwProject:
    def test_risk_lifecycle(self):
        project = DwProject("retail-dw")
        project.add_risk("source data quality", "high",
                         "profile sources early")
        project.add_risk("scope creep", "medium")
        assert len(project.open_risks()) == 2
        assert len(project.open_risks("high")) == 1
        project.close_risk("scope creep")
        assert len(project.open_risks()) == 1
        with pytest.raises(ProcessError):
            project.close_risk("scope creep")

    def test_invalid_severity_rejected(self):
        project = DwProject("p")
        with pytest.raises(ProcessError):
            project.add_risk("x", "catastrophic")

    def test_artifact_registry(self):
        project = DwProject("p")
        project.register_artifact("pim", object())
        with pytest.raises(ProcessError):
            project.register_artifact("pim", object())
        assert project.artifact("pim") is not None
        with pytest.raises(ProcessError):
            project.artifact("missing")

    def test_status_summary(self):
        project = DwProject("p", layers=["warehouse"])
        iteration = project.process.start_iteration("warehouse")
        for discipline in DISCIPLINES:
            iteration.complete(discipline.name)
        status = project.status()
        assert status["complete"] is True
        assert status["layers"]["warehouse"] is True
