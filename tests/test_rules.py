"""Tests for the rules engine and its DSL."""

import pytest

from repro.errors import RuleSyntaxError, RulesError
from repro.rules import (
    Condition,
    Fact,
    Rule,
    RuleEngine,
    WorkingMemory,
    parse_rules,
)


class TestWorkingMemory:
    def test_insert_and_query_by_type(self):
        memory = WorkingMemory()
        memory.insert(Fact("Order", total=10))
        memory.insert(Fact("Order", total=20))
        memory.insert(Fact("Customer", name="ada"))
        assert len(memory.by_type("Order")) == 2
        assert len(memory) == 3

    def test_retract(self):
        memory = WorkingMemory()
        fact = memory.insert(Fact("Order"))
        memory.retract(fact)
        assert len(memory) == 0
        with pytest.raises(RulesError):
            memory.retract(fact)

    def test_fact_attribute_access(self):
        fact = Fact("Order", total=10)
        assert fact["total"] == 10
        assert fact.get("missing") is None
        assert "total" in fact
        with pytest.raises(RulesError):
            fact["missing"]


class TestRuleDefinition:
    def test_rule_needs_conditions(self):
        with pytest.raises(RulesError):
            Rule("r", [], lambda ctx: None)

    def test_duplicate_variables_rejected(self):
        with pytest.raises(RulesError):
            Rule("r", [Condition("x", "A"), Condition("x", "B")],
                 lambda ctx: None)

    def test_engine_rejects_duplicate_rule_names(self):
        rule = Rule("r", [Condition("x", "A")], lambda ctx: None)
        other = Rule("r", [Condition("y", "B")], lambda ctx: None)
        with pytest.raises(RulesError):
            RuleEngine([rule, other])


class TestForwardChaining:
    def test_simple_match_and_fire(self):
        fired = []
        rule = Rule("hello", [Condition("x", "Greeting")],
                    lambda ctx: fired.append(ctx["x"]["word"]))
        engine = RuleEngine([rule])
        engine.memory.insert(Fact("Greeting", word="hi"))
        assert engine.run() == 1
        assert fired == ["hi"]

    def test_predicate_filters_facts(self):
        rule = Rule(
            "big", [Condition("o", "Order",
                              lambda fact, b: fact["total"] > 100)],
            lambda ctx: ctx.modify(ctx["o"], flagged=True))
        engine = RuleEngine([rule])
        small = engine.memory.insert(Fact("Order", total=10))
        big = engine.memory.insert(Fact("Order", total=500))
        engine.run()
        assert big.get("flagged") is True
        assert small.get("flagged") is None

    def test_join_across_conditions(self):
        matches = []
        rule = Rule("join", [
            Condition("o", "Order"),
            Condition("c", "Customer",
                      lambda fact, bindings:
                      fact["name"] == bindings["o"]["customer"]),
        ], lambda ctx: matches.append(
            (ctx["o"]["item"], ctx["c"]["name"])))
        engine = RuleEngine([rule])
        engine.memory.insert(Fact("Order", item="book", customer="ada"))
        engine.memory.insert(Fact("Order", item="pen", customer="bob"))
        engine.memory.insert(Fact("Customer", name="ada"))
        engine.run()
        assert matches == [("book", "ada")]

    def test_refraction_prevents_refiring(self):
        rule = Rule("once", [Condition("x", "A")],
                    lambda ctx: ctx.log("fired"))
        engine = RuleEngine([rule])
        engine.memory.insert(Fact("A"))
        assert engine.run() == 1
        assert engine.run() == 0  # second run: nothing new

    def test_modify_reactivates(self):
        rule = Rule(
            "watch", [Condition("x", "A",
                                lambda fact, b: fact["n"] < 3)],
            lambda ctx: ctx.modify(ctx["x"], n=ctx["x"]["n"] + 1))
        engine = RuleEngine([rule])
        fact = engine.memory.insert(Fact("A", n=0))
        firings = engine.run()
        assert fact["n"] == 3
        assert firings == 3

    def test_chaining_through_inserted_facts(self):
        rules = [
            Rule("derive", [Condition("o", "Order",
                                      lambda f, b: f["total"] > 100)],
                 lambda ctx: ctx.insert(Fact(
                     "Alert", reason="big order"))),
            Rule("handle", [Condition("a", "Alert")],
                 lambda ctx: ctx.log(ctx["a"]["reason"])),
        ]
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("Order", total=500))
        engine.run()
        assert engine.log == ["big order"]

    def test_salience_orders_firing(self):
        order = []
        rules = [
            Rule("low", [Condition("x", "A")],
                 lambda ctx: order.append("low"), salience=1),
            Rule("high", [Condition("y", "A")],
                 lambda ctx: order.append("high"), salience=10),
        ]
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("A"))
        engine.run()
        assert order == ["high", "low"]

    def test_retraction_cancels_pending_matches(self):
        rules = [
            Rule("eat", [Condition("x", "Cake")],
                 lambda ctx: ctx.retract(ctx["x"]), salience=10),
            Rule("admire", [Condition("y", "Cake")],
                 lambda ctx: ctx.log("pretty cake")),
        ]
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("Cake"))
        engine.run()
        assert engine.log == []  # cake was eaten before admiring

    def test_runaway_rules_hit_cycle_limit(self):
        rule = Rule("loop", [Condition("x", "A")],
                    lambda ctx: ctx.insert(Fact("A")))
        engine = RuleEngine([rule], cycle_limit=50)
        engine.memory.insert(Fact("A"))
        with pytest.raises(RulesError):
            engine.run()

    def test_max_firings_cap(self):
        rule = Rule("loop", [Condition("x", "A")],
                    lambda ctx: ctx.insert(Fact("A")))
        engine = RuleEngine([rule])
        engine.memory.insert(Fact("A"))
        assert engine.run(max_firings=5) == 5


RULES_TEXT = '''
# billing rules
rule "flag-high-usage" salience 10
when
    usage: Usage(amount > 1000 and usage.flagged != True)
then
    modify(usage, flagged=True)
    insert(Alert(tenant=usage.tenant, level="warn"))
    log("high usage: " + usage.tenant)
end

rule "escalate"
when
    alert: Alert(level == "warn")
    usage: Usage(usage.flagged == True and tenant == alert.tenant)
then
    modify(alert, level="critical")
end
'''


class TestDsl:
    def test_parse_returns_rules_with_metadata(self):
        rules = parse_rules(RULES_TEXT)
        assert [rule.name for rule in rules] == \
            ["flag-high-usage", "escalate"]
        assert rules[0].salience == 10
        assert rules[1].salience == 0

    def test_end_to_end_execution(self):
        engine = RuleEngine(parse_rules(RULES_TEXT))
        engine.memory.insert(Fact("Usage", tenant="acme", amount=5000))
        engine.memory.insert(Fact("Usage", tenant="tiny", amount=10))
        engine.run()
        alerts = engine.memory.by_type("Alert")
        assert len(alerts) == 1
        assert alerts[0]["tenant"] == "acme"
        assert alerts[0]["level"] == "critical"
        assert engine.log == ["high usage: acme"]

    def test_condition_without_expression(self):
        rules = parse_rules(
            'rule "any"\nwhen\n    x: Thing()\nthen\n'
            '    log("seen")\nend')
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("Thing"))
        engine.run()
        assert engine.log == ["seen"]

    def test_retract_action(self):
        rules = parse_rules(
            'rule "purge"\nwhen\n    x: Temp()\nthen\n'
            '    retract(x)\nend')
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("Temp"))
        engine.run()
        assert len(engine.memory) == 0

    @pytest.mark.parametrize("bad", [
        "not even a rule",
        'rule "x"\nthen\nend',                       # missing when
        'rule "x"\nwhen\n    a: A()\nend',           # missing then
        'rule "x"\nwhen\n    a: A()\nthen\nend',     # no actions
        'rule "x"\nwhen\n    bad line\nthen\n    log("y")\nend',
        'rule "x"\nwhen\n    a: A()\nthen\n    explode(a)\nend',
        "",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse_rules(bad)

    def test_sandbox_rejects_calls(self):
        with pytest.raises(RuleSyntaxError):
            parse_rules(
                'rule "evil"\nwhen\n    x: A(__import__("os"))\n'
                'then\n    log("x")\nend')

    def test_sandbox_rejects_dunder_attribute_escape(self):
        rules = parse_rules(
            'rule "probe"\nwhen\n    x: A(n > 0)\nthen\n'
            '    log(x.missing)\nend')
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("A", n=1))
        engine.run()  # unknown attribute reads as None, no escape
        assert engine.log == ["None"]

    def test_unknown_name_in_expression(self):
        rules = parse_rules(
            'rule "r"\nwhen\n    x: A(nonexistent > 1)\nthen\n'
            '    log("y")\nend')
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("A", n=1))
        with pytest.raises(RuleSyntaxError):
            engine.run()

    def test_comparison_chaining(self):
        rules = parse_rules(
            'rule "range"\nwhen\n    x: A(0 < n < 10)\nthen\n'
            '    log("in range")\nend')
        engine = RuleEngine(rules)
        engine.memory.insert(Fact("A", n=5))
        engine.memory.insert(Fact("A", n=50))
        engine.run()
        assert engine.log == ["in range"]
