"""Write-ahead logging and crash-consistent recovery (engine level).

PR 5's durability contract: every committed mutation reaches the
per-database redo log before the commit returns, and
``Database.recover`` rebuilds exactly the committed prefix from the
last snapshot plus the surviving WAL tail — discarding torn frames,
corrupt frames and intact-but-uncommitted trailing ops.
"""

import pickle
import struct
import zlib

import pytest

from repro.engine.database import Database
from repro.engine.wal import (
    DEFAULT_BATCH_SIZE,
    MAGIC,
    JournalLog,
    WriteAheadLog,
    committed_transactions,
    frame_record,
    read_log,
    scan_frames,
)
from repro.errors import WalError


# ---------------------------------------------------------------------------
# the framed-log format
# ---------------------------------------------------------------------------

class TestFraming:
    def test_round_trip(self):
        data = MAGIC + frame_record(("op", 1)) + frame_record(("commit", 1))
        entries, good, reason = scan_frames(data)
        assert [record for record, _ in entries] \
            == [("op", 1), ("commit", 1)]
        assert good == len(data)
        assert reason is None

    def test_torn_header_tail(self):
        data = MAGIC + frame_record("a") + b"\x00\x01"
        entries, good, reason = scan_frames(data)
        assert [record for record, _ in entries] == ["a"]
        assert good == len(MAGIC) + len(frame_record("a"))
        assert reason == "torn-header"

    def test_torn_record_tail(self):
        whole = frame_record("payload")
        data = MAGIC + frame_record("a") + whole[:-3]
        entries, good, reason = scan_frames(data)
        assert [record for record, _ in entries] == ["a"]
        assert reason == "torn-record"

    def test_bad_checksum_tail(self):
        payload = pickle.dumps("b")
        corrupt = struct.pack(">II", len(payload),
                              zlib.crc32(payload) ^ 0xFF) + payload
        data = MAGIC + frame_record("a") + corrupt + frame_record("c")
        entries, good, reason = scan_frames(data)
        # Everything from the corrupt frame on is untrusted, even the
        # intact-looking record behind it.
        assert [record for record, _ in entries] == ["a"]
        assert reason == "bad-checksum"

    def test_bad_magic_is_a_format_error_not_a_crash(self):
        with pytest.raises(WalError):
            scan_frames(b"NOTAWAL!" + frame_record("a"))

    def test_truncated_magic_is_an_empty_torn_file(self):
        entries, good, reason = scan_frames(MAGIC[:3])
        assert entries == [] and good == 0 and reason == "torn-header"

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_log(tmp_path / "none.wal") == ([], 0, None)

    def test_committed_transactions_grouping(self):
        entries, _, reason = scan_frames(
            MAGIC
            + frame_record(("op", "a")) + frame_record(("op", "b"))
            + frame_record(("commit", 1))
            + frame_record(("op", "c")) + frame_record(("commit", 2))
            + frame_record(("op", "dangling")))
        assert reason is None
        transactions, committed_length, dangling = \
            committed_transactions(entries)
        assert transactions == [(1, ["a", "b"]), (2, ["c"])]
        assert dangling == 1
        # committed_length stops exactly after commit #2's frame.
        assert committed_length == entries[-2][1]


# ---------------------------------------------------------------------------
# the WriteAheadLog object
# ---------------------------------------------------------------------------

class TestWriteAheadLog:
    def test_commit_numbers_are_monotone_across_reset(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", fsync="off")
        assert wal.commit([("x",)]) == 1
        assert wal.commit([("y",)]) == 2
        wal.reset()
        assert wal.commits == 0 and wal.commit_offsets == []
        # Numbering continues; a snapshot holding "up to #2" can tell
        # transaction #3 apart from a replayed #1.
        assert wal.commit([("z",)]) == 3
        wal.close()

    def test_reopen_recovers_commit_state(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "t.wal", fsync="off")
        wal.commit([("a",), ("b",)])
        wal.commit([("c",)])
        wal.close()
        again = WriteAheadLog(tmp_path / "t.wal", fsync="off")
        assert again.commits == 2
        assert again.last_number == 2
        assert len(again.commit_offsets) == 2
        again.close()

    def test_reopen_truncates_a_torn_tail(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = WriteAheadLog(path, fsync="off")
        wal.commit([("a",)])
        wal.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(frame_record(("op", ("b",)))[:-2])
        again = WriteAheadLog(path, fsync="off")
        assert again.tail_reason == "torn-record"
        assert again.discarded_tail_bytes > 0
        assert path.stat().st_size == intact
        # And the log keeps working past the healed tail.
        again.commit([("c",)])
        again.close()
        entries, _, reason = read_log(path)
        assert reason is None
        transactions, _, _ = committed_transactions(entries)
        assert [number for number, _ in transactions] == [1, 2]

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "t.wal", fsync="sometimes")
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "t.wal", batch_size=0)

    def test_batch_policy_defers_fsync(self, tmp_path, monkeypatch):
        import os as os_module
        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr("repro.engine.wal.os.fsync",
                            lambda fd: synced.append(fd) or
                            real_fsync(fd))
        wal = WriteAheadLog(tmp_path / "t.wal", fsync="batch",
                            batch_size=4)
        for _ in range(3):
            wal.commit([("x",)])
        assert synced == []          # under the batch threshold
        wal.commit([("x",)])
        assert len(synced) == 1      # the 4th commit syncs the batch
        wal.close()

    def test_journal_append_and_suspension(self, tmp_path):
        journal = JournalLog(tmp_path / "j.journal", fsync="off")
        journal.append(("tenant", "acme"))
        journal.suspended = True
        journal.append(("tenant", "ghost"))
        journal.suspended = False
        journal.close()
        again = JournalLog(tmp_path / "j.journal", fsync="off")
        assert again.recovered == [("tenant", "acme")]
        again.close()


# ---------------------------------------------------------------------------
# Database.recover round trips
# ---------------------------------------------------------------------------

def workload(db):
    """A representative mutation mix: DML, DDL, txns, views."""
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, "
               "n INTEGER)")
    db.executemany("INSERT INTO t (id, v, n) VALUES (?, ?, ?)",
                   [(i, f"row{i}", i * 2) for i in range(1, 11)])
    db.execute("CREATE INDEX idx_n ON t (n)")
    db.execute("UPDATE t SET v = 'even' WHERE n % 4 = 0")
    db.execute("DELETE FROM t WHERE id = 3")
    with db.transaction():
        db.execute("INSERT INTO t (id, v, n) VALUES (11, 'txn', 22)")
        db.execute("UPDATE t SET n = 100 WHERE id = 11")
    db.execute("ALTER TABLE t ADD COLUMN extra TEXT")
    db.execute("CREATE VIEW big AS SELECT id, n FROM t WHERE n > 10")
    db.execute("CREATE TABLE copied AS SELECT id, v FROM t WHERE id < 5")


class TestDatabaseRecover:
    def test_fresh_directory_round_trip(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        workload(db)
        fingerprint = db.state_fingerprint()
        rows = db.query("SELECT id, n FROM big ORDER BY id")
        db.close()

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.recovery_info["snapshot_loaded"] is False
        assert recovered.recovery_info["transactions_replayed"] > 0
        assert recovered.state_fingerprint() == fingerprint
        assert recovered.query("SELECT id, n FROM big ORDER BY id") \
            == rows
        recovered.close()

    def test_rolled_back_transaction_never_reaches_the_log(
            self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        db.begin()
        db.execute("INSERT INTO t (id) VALUES (2)")
        db.rollback()
        fingerprint = db.state_fingerprint()
        db.close()
        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.state_fingerprint() == fingerprint
        assert recovered.query_value("SELECT COUNT(*) FROM t") == 1
        recovered.close()

    def test_checkpoint_then_incremental_recovery(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        workload(db)
        assert db.checkpoint() == 1
        assert db.wal_lag == 0 and db.last_checkpoint == 1
        db.execute("INSERT INTO t (id, v, n) VALUES (50, 'post', 1)")
        fingerprint = db.state_fingerprint()
        db.close()

        recovered = Database.recover(tmp_path, "main", fsync="off")
        info = recovered.recovery_info
        assert info["snapshot_loaded"] is True
        assert info["transactions_replayed"] == 1  # just the insert
        assert recovered.state_fingerprint() == fingerprint
        recovered.close()

    def test_crash_between_snapshot_and_log_reset_does_not_double_apply(
            self, tmp_path):
        """The checkpoint double-apply hole.

        If the process dies after ``save()`` but before the WAL
        truncation, the snapshot already holds every logged
        transaction.  Recovery must skip them (by commit number), or
        replayed inserts would collide with their own rows.
        """
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.executemany("INSERT INTO t (id, v) VALUES (?, ?)",
                       [(i, "x") for i in range(5)])
        fingerprint = db.state_fingerprint()
        # Simulate the torn checkpoint: snapshot lands, log survives.
        db.save(tmp_path / "main.snapshot")
        db.close()

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.recovery_info["snapshot_loaded"] is True
        assert recovered.recovery_info["transactions_replayed"] == 0
        assert recovered.state_fingerprint() == fingerprint
        recovered.close()

    def test_truncated_wal_tail_recovers_committed_prefix(
            self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        prefix_fingerprint = db.state_fingerprint()
        db.execute("INSERT INTO t (id) VALUES (2)")
        db.close()
        wal_path = tmp_path / "main.wal"
        # Chop mid-way through the final transaction's frames.
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-7])

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.recovery_info["tail_reason"] in (
            "torn-header", "torn-record")
        assert recovered.recovery_info["discarded_bytes"] > 0
        assert recovered.state_fingerprint() == prefix_fingerprint
        recovered.close()

    def test_bad_checksum_mid_log_discards_from_there(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        prefix_fingerprint = db.state_fingerprint()
        boundary = db.wal.commit_offsets[-1]
        db.execute("INSERT INTO t (id) VALUES (2)")
        db.close()
        wal_path = tmp_path / "main.wal"
        data = bytearray(wal_path.read_bytes())
        # Flip one payload byte of the first frame after the boundary.
        data[boundary + 9] ^= 0xFF
        wal_path.write_bytes(bytes(data))

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.recovery_info["tail_reason"] == "bad-checksum"
        assert recovered.state_fingerprint() == prefix_fingerprint
        assert recovered.query_value("SELECT COUNT(*) FROM t") == 1
        recovered.close()

    def test_uncommitted_trailing_ops_are_discarded_and_truncated(
            self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        fingerprint = db.state_fingerprint()
        committed_size = db.wal.commit_offsets[-1]
        db.close()
        wal_path = tmp_path / "main.wal"
        # An intact op frame with no commit record behind it: the
        # transaction never acknowledged, so recovery must not apply
        # it — and must truncate it so a later commit record cannot
        # retroactively commit it.
        with open(wal_path, "ab") as handle:
            handle.write(frame_record(
                ("op", ("insert", "t", 2, [2]))))

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.recovery_info["dangling_ops"] == 1
        assert recovered.state_fingerprint() == fingerprint
        assert wal_path.stat().st_size == committed_size
        recovered.close()

    def test_recovered_database_keeps_logging(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        db.close()
        middle = Database.recover(tmp_path, "main", fsync="off")
        middle.execute("INSERT INTO t (id) VALUES (2)")
        fingerprint = middle.state_fingerprint()
        middle.close()
        final = Database.recover(tmp_path, "main", fsync="off")
        assert final.state_fingerprint() == fingerprint
        assert final.query_value("SELECT COUNT(*) FROM t") == 2
        final.close()

    def test_compiled_and_interpreted_recoveries_agree(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        workload(db)
        db.close()
        compiled = Database.recover(tmp_path, "main", fsync="off",
                                    compile=True)
        interpreted = Database.recover(tmp_path, "main", fsync="off",
                                       compile=False)
        sql = ("SELECT id, v, n FROM t WHERE n > 4 "
               "ORDER BY n DESC, id")
        assert compiled.query(sql) == interpreted.query(sql)
        assert compiled.state_fingerprint() \
            == interpreted.state_fingerprint()
        compiled.close()
        interpreted.close()


# ---------------------------------------------------------------------------
# satellite (a): snapshot rename durability
# ---------------------------------------------------------------------------

class TestSnapshotDirectoryFsync:
    def test_save_fsyncs_the_parent_directory(self, tmp_path,
                                              monkeypatch):
        """``os.replace`` swaps atomically but the rename lives in the
        directory inode; ``save`` must fsync the parent too or the
        snapshot can vanish on power loss."""
        synced = []
        monkeypatch.setattr(
            "repro.engine.database._fsync_directory",
            lambda directory: synced.append(directory))
        db = Database("main")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.save(tmp_path / "main.snapshot")
        assert synced == [tmp_path]


# ---------------------------------------------------------------------------
# satellite (c): DROP TABLE inside a rolled-back transaction
# ---------------------------------------------------------------------------

class TestDropTableRollbackCoherence:
    def seed(self, compile):
        db = Database("coherence", compile=compile)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                   "n INTEGER)")
        db.execute("CREATE UNIQUE INDEX idx_n ON t (n)")
        db.executemany("INSERT INTO t (id, n) VALUES (?, ?)",
                       [(i, i * 10) for i in range(1, 6)])
        return db

    @pytest.mark.parametrize("compile", [True, False])
    def test_index_survives_and_still_enforces(self, compile):
        db = self.seed(compile)
        db.begin()
        db.execute("DROP TABLE t")
        db.rollback()
        # The restored table must carry its index, not a shell of it:
        # lookups go through it and uniqueness still holds.
        assert db.query_value(
            "SELECT id FROM t WHERE n = 30") == 3
        from repro.errors import ConstraintViolation
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO t (id, n) VALUES (99, 30)")
        db.execute("INSERT INTO t (id, n) VALUES (6, 60)")
        assert db.query_value("SELECT COUNT(*) FROM t") == 6

    def test_compiled_plans_stay_coherent(self):
        db = self.seed(compile=True)
        sql = "SELECT id, n FROM t WHERE n >= 20 ORDER BY id"
        before = db.query(sql)  # warms the plan cache
        db.begin()
        db.execute("DROP TABLE t")
        db.rollback()
        assert db.query(sql) == before
        db.execute("INSERT INTO t (id, n) VALUES (6, 60)")
        after = db.query(sql)
        assert len(after) == len(before) + 1

    def test_compiled_matches_interpreted_after_rollback(self):
        compiled, interpreted = (self.seed(True), self.seed(False))
        for db in (compiled, interpreted):
            db.query("SELECT n FROM t WHERE n = 20")
            db.begin()
            db.execute("DROP TABLE t")
            db.rollback()
        sql = "SELECT id, n FROM t ORDER BY n DESC"
        assert compiled.query(sql) == interpreted.query(sql)
