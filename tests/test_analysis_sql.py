"""Unit tests for the schema-aware SQL semantic analyzer."""

import pytest

from repro.analysis import (
    SqlAnalyzer,
    analyze_script,
    catalog_from_script,
    split_statements,
)
from repro.engine import Catalog, Database, make_schema, parse_sql


def sales_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(make_schema("sales", [
        ("id", "INTEGER", False),
        ("region", "TEXT"),
        ("amount", "REAL"),
        ("quantity", "INTEGER"),
        ("sold_on", "DATE"),
    ], primary_key="id"))
    catalog.add_table(make_schema("customers", [
        ("id", "INTEGER", False),
        ("name", "TEXT"),
        ("region", "TEXT"),
    ], primary_key="id"))
    return catalog


def analyze(sql, catalog=None):
    return SqlAnalyzer(catalog or sales_catalog()).analyze(sql)


class TestSelectAnalysis:
    def test_clean_query_has_no_findings(self):
        collector = analyze(
            "SELECT region, SUM(amount) AS total FROM sales "
            "WHERE quantity > 0 GROUP BY region ORDER BY total")
        assert collector.codes() == []

    def test_unknown_table(self):
        collector = analyze("SELECT * FROM ghosts")
        assert collector.codes() == ["ODB101"]
        assert "ghosts" in str(collector.errors[0])

    def test_unknown_column(self):
        collector = analyze("SELECT colour FROM sales")
        assert collector.codes() == ["ODB102"]

    def test_unknown_column_has_position(self):
        collector = analyze("SELECT\n  colour FROM sales")
        span = collector.errors[0].span
        assert (span.line, span.column) == (2, 3)

    def test_unknown_table_suppresses_cascading_column_errors(self):
        collector = analyze("SELECT a, b, c FROM ghosts")
        assert collector.codes() == ["ODB101"]

    def test_ambiguous_column_across_join(self):
        collector = analyze(
            "SELECT region FROM sales "
            "JOIN customers ON sales.id = customers.id")
        assert collector.codes() == ["ODB103"]

    def test_qualification_resolves_ambiguity(self):
        collector = analyze(
            "SELECT sales.region FROM sales "
            "JOIN customers ON sales.id = customers.id")
        assert collector.codes() == []

    def test_type_mismatched_comparison(self):
        collector = analyze("SELECT id FROM sales WHERE region = 5")
        assert collector.codes() == ["ODB104"]

    def test_text_vs_date_comparison_is_tolerated(self):
        collector = analyze(
            "SELECT id FROM sales WHERE sold_on > '2024-01-01'")
        assert collector.codes() == []

    def test_type_mismatched_arithmetic(self):
        collector = analyze("SELECT region + 1 FROM sales")
        assert collector.codes() == ["ODB105"]

    def test_concat_requires_text(self):
        collector = analyze("SELECT amount || 'x' FROM sales")
        assert collector.codes() == ["ODB105"]

    def test_aggregate_in_where(self):
        collector = analyze(
            "SELECT id FROM sales WHERE SUM(amount) > 10")
        assert collector.codes() == ["ODB106"]

    def test_non_grouped_column(self):
        collector = analyze(
            "SELECT region, quantity, SUM(amount) FROM sales "
            "GROUP BY region")
        assert collector.codes() == ["ODB107"]
        assert "quantity" in str(collector.errors[0])

    def test_grouping_by_select_alias_is_clean(self):
        collector = analyze(
            "SELECT region AS r, COUNT(*) FROM sales GROUP BY r")
        assert collector.codes() == []

    def test_unknown_function(self):
        collector = analyze("SELECT SOUNDEX(region) FROM sales")
        assert collector.codes() == ["ODB109"]

    def test_duplicate_table_alias(self):
        collector = analyze(
            "SELECT s.id FROM sales s JOIN customers s "
            "ON s.id = s.id")
        assert "ODB110" in collector.codes()

    def test_constant_predicate_warns(self):
        collector = analyze("SELECT id FROM sales WHERE 1 = 2")
        assert collector.codes() == ["ODB112"]
        assert not collector.has_errors()

    def test_union_arity_mismatch(self):
        collector = analyze(
            "SELECT id, region FROM sales "
            "UNION SELECT id FROM customers")
        assert collector.codes() == ["ODB114"]

    def test_syntax_error_is_positioned(self):
        collector = analyze("SELECT FROM sales WHERE")
        assert collector.codes() == ["ODB115"]
        assert collector.errors[0].span is not None


class TestInsertAnalysis:
    def test_insert_arity_mismatch(self):
        collector = analyze("INSERT INTO sales VALUES (1, 'east')")
        assert "ODB108" in collector.codes()

    def test_insert_type_mismatch(self):
        collector = analyze(
            "INSERT INTO sales (id, region, amount, quantity, sold_on)"
            " VALUES ('oops', 'east', 1.5, 2, '2024-01-01')")
        assert collector.codes() == ["ODB113"]

    def test_insert_unknown_column(self):
        collector = analyze(
            "INSERT INTO sales (id, colour) VALUES (1, 'red')")
        assert "ODB102" in collector.codes()

    def test_null_into_not_null_column(self):
        collector = analyze(
            "INSERT INTO sales (id, region, amount, quantity, sold_on)"
            " VALUES (NULL, 'east', 1.5, 2, '2024-01-01')")
        assert "ODB113" in collector.codes()

    def test_valid_insert_is_clean(self):
        collector = analyze(
            "INSERT INTO sales (id, region, amount, quantity, sold_on)"
            " VALUES (1, 'east', 1.5, 2, '2024-01-01')")
        assert collector.codes() == []


class TestUpdateDelete:
    def test_update_unknown_column(self):
        collector = analyze("UPDATE sales SET colour = 'red'")
        assert collector.codes() == ["ODB102"]

    def test_update_type_mismatch(self):
        collector = analyze("UPDATE sales SET quantity = 'many'")
        assert collector.codes() == ["ODB113"]

    def test_delete_from_unknown_table(self):
        collector = analyze("DELETE FROM ghosts")
        assert collector.codes() == ["ODB101"]


class TestViewsAndScripts:
    def test_select_star_view_warns(self):
        collector = analyze("CREATE VIEW v AS SELECT * FROM sales")
        assert collector.codes() == ["ODB111"]
        assert not collector.has_errors()

    def test_query_through_view_columns(self):
        collector = analyze_script(
            "CREATE VIEW totals AS SELECT region, SUM(amount) AS t "
            "FROM sales GROUP BY region;\n"
            "SELECT region, t FROM totals;\n"
            "SELECT missing FROM totals;", sales_catalog())
        assert collector.codes() == ["ODB102"]

    def test_script_ddl_feeds_later_statements(self):
        collector = analyze_script(
            "CREATE TABLE t (id INTEGER, name TEXT);\n"
            "INSERT INTO t (id, name) VALUES (1, 'a');\n"
            "SELECT id, name FROM t;")
        assert collector.codes() == []

    def test_script_reports_each_statement(self):
        collector = analyze_script(
            "SELECT * FROM ghosts;\nSELECT nope FROM sales;",
            sales_catalog())
        assert collector.codes() == ["ODB101", "ODB102"]

    def test_script_does_not_mutate_caller_catalog(self):
        catalog = sales_catalog()
        analyze_script("DROP TABLE sales;", catalog)
        assert catalog.has_table("sales")

    def test_split_statements_respects_strings_and_comments(self):
        parts = split_statements(
            "SELECT 'a;b'; -- trailing; comment\nSELECT 2;")
        assert [text for text, _ in parts] == \
            ["SELECT 'a;b'", "SELECT 2"]

    def test_catalog_from_script(self):
        catalog, views = catalog_from_script(
            "CREATE TABLE t (id INTEGER);"
            "CREATE VIEW v AS SELECT id FROM t;")
        assert catalog.has_table("t")
        assert "v" in views


class TestOutputColumns:
    def test_shape_of_aggregate_query(self):
        analyzer = SqlAnalyzer(sales_catalog())
        statement = parse_sql(
            "SELECT region, SUM(amount) AS total FROM sales "
            "GROUP BY region")
        columns = analyzer.output_columns(statement)
        assert [name for name, _type in columns] == \
            ["region", "total"]

    def test_star_expands_to_table_columns(self):
        analyzer = SqlAnalyzer(sales_catalog())
        statement = parse_sql("SELECT * FROM customers")
        columns = analyzer.output_columns(statement)
        assert [name for name, _type in columns] == \
            ["id", "name", "region"]


ACCEPTED_QUERIES = [
    "SELECT id, region FROM sales",
    "SELECT * FROM customers",
    "SELECT s.region, c.name FROM sales s "
    "JOIN customers c ON s.id = c.id",
    "SELECT region, SUM(amount) AS total FROM sales GROUP BY region",
    "SELECT UPPER(name) FROM customers WHERE LENGTH(name) > 3",
    "SELECT id FROM sales WHERE sold_on BETWEEN '2024-01-01' "
    "AND '2024-12-31'",
    "SELECT region FROM sales UNION SELECT region FROM customers",
    "SELECT COUNT(*) FROM sales",
]


class TestAnalyzerExecutorAgreement:
    """Property-style check: SQL the analyzer accepts must execute.

    An analyzer-clean query running against an *empty* database built
    from the same catalog must never hit a catalog-resolution error —
    the analyzer's whole claim is that it resolves names statically
    exactly the way the executor would.
    """

    @pytest.mark.parametrize("sql", ACCEPTED_QUERIES)
    def test_accepted_queries_execute(self, sql):
        catalog = sales_catalog()
        collector = SqlAnalyzer(catalog).analyze(sql)
        assert not collector.has_errors(), collector.render()

        database = Database("empty")
        for schema in catalog:
            database.create_storage(schema)
        database.query(sql)  # must not raise

    def test_for_database_sees_live_views(self):
        database = Database("live")
        database.execute("CREATE TABLE t (id INTEGER)")
        database.execute("CREATE VIEW v AS SELECT id FROM t")
        collector = SqlAnalyzer.for_database(database).analyze(
            "SELECT id FROM v")
        assert collector.codes() == []
