"""Tests for the five core BI services (MDS, IS, AS, RS, IDS)."""

import pytest

from repro.core import Channel, OdbisPlatform
from repro.errors import ServiceError
from repro.etl import Filter, RowsSource, Schedule, TypeCast
from repro.reporting import Dashboard
from repro.workloads import RetailWorkload


@pytest.fixture
def platform():
    platform = OdbisPlatform()
    platform.provisioning.provision("acme", "Acme Corp", plan="team")
    return platform


@pytest.fixture
def warehouse(platform):
    workload = RetailWorkload()
    context = platform.tenants.context("acme")
    workload.build(context.warehouse_db, fact_rows=400)
    return workload


class TestMetadataService:
    def test_datasource_crud(self, platform):
        sources = platform.metadata.datasources("acme")
        assert [source["name"] for source in sources] == ["warehouse"]
        with pytest.raises(ServiceError):
            platform.metadata.create_datasource(
                "acme", "warehouse", "repro://warehouse")

    def test_datasource_url_scheme_enforced(self, platform):
        with pytest.raises(ServiceError):
            platform.metadata.create_datasource(
                "acme", "pg", "postgres://somewhere")

    def test_dataset_requires_existing_datasource(self, platform):
        with pytest.raises(ServiceError):
            platform.metadata.create_dataset(
                "acme", "d", "ghost-source", "SELECT 1")

    def test_dataset_rows_execute_sql(self, platform, warehouse):
        platform.metadata.create_dataset(
            "acme", "stores", "warehouse",
            "SELECT region, city FROM dim_store ORDER BY city")
        rows = platform.metadata.dataset_rows("acme", "stores")
        assert len(rows) == 6
        assert set(rows[0]) == {"region", "city"}

    def test_dataset_rows_with_params(self, platform, warehouse):
        platform.metadata.create_dataset(
            "acme", "by-region", "warehouse",
            "SELECT city FROM dim_store WHERE region = ?")
        rows = platform.metadata.dataset_rows(
            "acme", "by-region", ("North",))
        assert len(rows) == 2

    def test_duplicate_dataset_rejected(self, platform, warehouse):
        platform.metadata.create_dataset(
            "acme", "d", "warehouse", "SELECT 1 AS one")
        with pytest.raises(ServiceError):
            platform.metadata.create_dataset(
                "acme", "d", "warehouse", "SELECT 2 AS two")

    def test_glossary_is_tenant_scoped(self, platform):
        platform.provisioning.provision("globex", "Globex")
        acme = platform.metadata.glossary("acme")
        glossary = acme.glossary("finance")
        acme.term(glossary, "Revenue", definition="money in")
        assert platform.metadata.glossary_terms("acme") == ["Revenue"]
        assert platform.metadata.glossary_terms("globex") == []


class TestIntegrationService:
    def test_define_and_run_job(self, platform, warehouse):
        context = platform.tenants.context("acme")
        context.warehouse_db.execute(
            "CREATE TABLE staging_costs (item TEXT, amount REAL)")
        platform.integration.define_job(
            "acme", "load-costs",
            RowsSource([{"item": "a", "amount": "10.5"},
                        {"item": "b", "amount": "oops"}]),
            [TypeCast({"amount": "float"})],
            target_table="staging_costs")
        result = platform.integration.run_job("acme", "load-costs")
        assert result.rows_written == 1
        assert result.rows_rejected == 1
        assert context.warehouse_db.query_value(
            "SELECT COUNT(*) FROM staging_costs") == 1

    def test_runs_are_metered_and_journalled(self, platform):
        context = platform.tenants.context("acme")
        context.warehouse_db.execute("CREATE TABLE t (x INTEGER)")
        platform.integration.define_job(
            "acme", "j", RowsSource([{"x": 1}, {"x": 2}]),
            target_table="t")
        platform.integration.run_job("acme", "j")
        assert platform.billing.usage("acme")["etl_rows"] == 2
        history = platform.integration.run_history("acme")
        assert history[0]["job"] == "j"

    def test_duplicate_job_name_rejected(self, platform):
        platform.integration.define_job(
            "acme", "j", RowsSource([]))
        with pytest.raises(ServiceError):
            platform.integration.define_job(
                "acme", "j", RowsSource([]))

    def test_table_copy_between_databases(self, platform):
        from repro.engine import Database

        staging = Database("staging")
        staging.execute("CREATE TABLE src (x INTEGER)")
        staging.execute("INSERT INTO src VALUES (1), (2), (3)")
        platform.resources.register_database("acme", "staging", staging)
        context = platform.tenants.context("acme")
        context.warehouse_db.execute("CREATE TABLE dst (x INTEGER)")
        platform.integration.define_table_copy(
            "acme", "copy", "staging", "src", "warehouse", "dst",
            operators=[Filter(lambda row: row["x"] > 1)])
        result = platform.integration.run_job("acme", "copy")
        assert result.rows_written == 2

    def test_job_graph_runs_in_dependency_order(self, platform):
        context = platform.tenants.context("acme")
        context.warehouse_db.execute("CREATE TABLE a (x INTEGER)")
        context.warehouse_db.execute("CREATE TABLE b (x INTEGER)")
        platform.integration.define_job(
            "acme", "load-a", RowsSource([{"x": 1}]), target_table="a")
        platform.integration.define_job(
            "acme", "load-b", RowsSource([{"x": 2}]), target_table="b")
        results = platform.integration.run_graph(
            "acme", {"load-b": ["load-a"], "load-a": []})
        assert set(results) == {"load-a", "load-b"}

    def test_scheduling_via_virtual_clock(self, platform):
        context = platform.tenants.context("acme")
        context.warehouse_db.execute("CREATE TABLE ticks (x INTEGER)")
        platform.integration.define_job(
            "acme", "tick", RowsSource([{"x": 1}]),
            target_table="ticks")
        platform.integration.schedule_job(
            "acme", "tick", Schedule(every_minutes=30))
        fired = platform.integration.advance_clock(95)
        assert fired == 3
        assert context.warehouse_db.query_value(
            "SELECT COUNT(*) FROM ticks") == 3


class TestAnalysisService:
    def test_define_and_query_cube(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        cells = platform.analysis.query(
            "acme", "RetailSales", ["revenue"], [("Store", "region")])
        assert len(cells.rows) == 3
        assert platform.billing.usage("acme")["query"] == 1

    def test_duplicate_cube_rejected(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        with pytest.raises(ServiceError):
            platform.analysis.define_cube(
                "acme", warehouse.cube_definition())

    def test_mdx_round_trip(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        cells = platform.analysis.execute_mdx(
            "acme",
            "SELECT {[Measures].[quantity]} ON COLUMNS, "
            "{[Product].[category].Members} ON ROWS "
            "FROM [RetailSales]")
        assert {row["Product.category"] for row in cells.rows} == \
            {"Food", "Electronics", "Clothing"}

    def test_navigator_session(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        navigator = platform.analysis.navigator(
            "acme", "RetailSales", measures=["revenue"])
        navigator.drill_down("Time")
        view = navigator.current_view()
        assert view.axes == [("Time", "year")]
        assert len(view.rows) == 2  # 2009 and 2010

    def test_members_listing(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        assert platform.analysis.members(
            "acme", "RetailSales", "Store", "region") == \
            ["North", "South", "West"]

    def test_unknown_cube_rejected(self, platform):
        with pytest.raises(ServiceError):
            platform.analysis.query("acme", "Ghost", ["x"])


REPORT_DESIGN = """
<report name="store-revenue">
  <parameter name="region" type="str" default="North"/>
  <data-set name="sales" query="SELECT s.city AS city,
    SUM(f.revenue) AS revenue FROM fact_sales f
    JOIN dim_store s ON f.store_key = s.store_key
    WHERE s.region = :region GROUP BY s.city"/>
  <table name="cities" data-set="sales" columns="city,revenue"/>
  <chart name="rev" kind="bar" data-set="sales"
         category="city" value="revenue"/>
</report>
"""


class TestReportingService:
    def test_report_group_management(self, platform):
        platform.reporting.create_report_group("acme", "finance")
        assert platform.reporting.report_groups("acme") == ["finance"]
        with pytest.raises(ServiceError):
            platform.reporting.create_report_group("acme", "finance")

    def test_upload_and_run_birt_report(self, platform, warehouse):
        platform.reporting.create_report_group("acme", "finance")
        name = platform.reporting.upload_report(
            "acme", "finance", REPORT_DESIGN, "warehouse")
        assert name == "store-revenue"
        output = platform.reporting.run_report("acme", name)
        cities = output.element("cities")
        assert len(cities.rows) == 2  # North region has 2 cities
        assert platform.billing.usage("acme")["report"] == 1

    def test_run_report_with_parameter(self, platform, warehouse):
        platform.reporting.create_report_group("acme", "finance")
        platform.reporting.upload_report(
            "acme", "finance", REPORT_DESIGN, "warehouse")
        output = platform.reporting.run_report(
            "acme", "store-revenue", {"region": "South"})
        assert output.parameters["region"] == "South"

    def test_upload_requires_existing_group(self, platform):
        with pytest.raises(ServiceError):
            platform.reporting.upload_report(
                "acme", "ghost-group", REPORT_DESIGN, "warehouse")

    def test_adhoc_dashboard_flow(self, platform, warehouse):
        platform.metadata.create_dataset(
            "acme", "sales", "warehouse",
            "SELECT s.region AS region, f.revenue AS revenue "
            "FROM fact_sales f "
            "JOIN dim_store s ON f.store_key = s.store_key")
        builder = platform.reporting.adhoc_builder("acme", "sales")
        dashboard = Dashboard("overview")
        dashboard.add_row(builder.bar_chart("rev", "region", "revenue"))
        platform.reporting.save_dashboard("acme", dashboard)
        assert platform.reporting.dashboards("acme") == ["overview"]
        assert platform.reporting.dashboard(
            "acme", "overview").element("rev") is not None

    def test_duplicate_dashboard_rejected(self, platform):
        platform.reporting.save_dashboard("acme", Dashboard("d"))
        with pytest.raises(ServiceError):
            platform.reporting.save_dashboard("acme", Dashboard("d"))


class TestDeliveryService:
    @pytest.fixture
    def dashboard(self, platform, warehouse):
        platform.metadata.create_dataset(
            "acme", "sales", "warehouse",
            "SELECT s.region AS region, f.revenue AS revenue "
            "FROM fact_sales f "
            "JOIN dim_store s ON f.store_key = s.store_key")
        builder = platform.reporting.adhoc_builder("acme", "sales")
        dashboard = Dashboard("overview", "regional revenue")
        dashboard.add_row(
            builder.bar_chart("rev", "region", "revenue"),
            builder.data_table("detail", ["region", "revenue"],
                               limit=5))
        return dashboard

    def test_web_channel_is_html(self, platform, dashboard):
        html = platform.delivery.deliver_dashboard(
            dashboard, Channel.WEB)
        assert html.startswith("<!DOCTYPE html>")
        assert "overview" in html

    def test_mobile_channel_is_compact(self, platform, dashboard):
        text = platform.delivery.deliver_dashboard(
            dashboard, Channel.MOBILE)
        assert text.startswith("[overview]")
        assert "rev" in text and "detail" in text

    def test_office_channel_is_csv(self, platform, dashboard):
        export = platform.delivery.deliver_dashboard(
            dashboard, Channel.OFFICE)
        assert "# rev" in export
        assert "category,value" in export

    def test_webservice_channel_is_structured(self, platform, dashboard):
        payload = platform.delivery.deliver_dashboard(
            dashboard, Channel.WEB_SERVICE)
        assert payload["dashboard"] == "overview"
        kinds = {element["type"] for element in payload["elements"]}
        assert kinds == {"chart", "table"}


class TestServiceConfiguration:
    """Admin-layer config overrides change service behaviour."""

    def test_tenant_can_disable_olap_cache(self, platform, warehouse):
        platform.admin.configure("acme", "analysis", use_cache=False)
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        engine = platform.analysis.engine("acme", "RetailSales")
        engine.grand_total("revenue")
        engine.grand_total("revenue")
        assert engine.statistics["cache_hits"] == 0

    def test_default_config_keeps_cache_on(self, platform, warehouse):
        platform.analysis.define_cube(
            "acme", warehouse.cube_definition())
        engine = platform.analysis.engine("acme", "RetailSales")
        engine.grand_total("revenue")
        engine.grand_total("revenue")
        assert engine.statistics["cache_hits"] == 1

    def test_configuration_readback(self, platform):
        platform.admin.configure("acme", "reporting", max_rows=500)
        platform.admin.configure("acme", "reporting", theme="dark")
        config = platform.admin.configuration("acme", "reporting")
        assert config == {"max_rows": 500, "theme": "dark"}
        assert platform.admin.configuration("acme", "analysis") == {}


class TestMetadataInterchange:
    """XMI metadata interchange between tenants (paper §3.3)."""

    def test_glossary_roundtrips_between_tenants(self, platform):
        platform.provisioning.provision("globex", "Globex")
        source = platform.metadata.glossary("acme")
        glossary = source.glossary("finance")
        source.term(glossary, "Revenue", definition="money in")
        source.term(glossary, "Margin")

        document = platform.metadata.export_glossary_xmi("acme")
        imported = platform.metadata.import_glossary_xmi(
            "globex", document)
        assert imported == 3  # glossary + 2 terms
        assert platform.metadata.glossary_terms("globex") == \
            ["Margin", "Revenue"]

    def test_ontology_survives_interchange(self, platform):
        platform.provisioning.provision("globex", "Globex")
        odm = platform.metadata.ontology("acme")
        ontology = odm.ontology("commerce")
        odm.ont_class(ontology, "Revenue", synonyms=["turnover"])

        document = platform.metadata.export_glossary_xmi("acme")
        platform.metadata.import_glossary_xmi("globex", document)
        other = platform.metadata.ontology("globex")
        revenue = other.extent.find_by_name("OntClass", "Revenue")
        assert "turnover" in other.vocabulary_of(revenue)

    def test_malformed_document_rejected(self, platform):
        from repro.errors import XmiError

        with pytest.raises(XmiError):
            platform.metadata.import_glossary_xmi("acme", "<broken")


class TestDatamartMaterialization:
    def test_ctas_into_warehouse(self, platform, warehouse):
        rows = platform.integration.materialize_datamart(
            "acme", "mart_region",
            "SELECT s.region AS region, SUM(f.revenue) AS revenue "
            "FROM fact_sales f "
            "JOIN dim_store s ON f.store_key = s.store_key "
            "GROUP BY s.region")
        assert rows == 3
        target = platform.tenants.context("acme").warehouse_db
        assert target.query_value(
            "SELECT COUNT(*) FROM mart_region") == 3
        assert platform.billing.usage("acme")["etl_rows"] == 3

    def test_refresh_rebuilds(self, platform, warehouse):
        platform.integration.materialize_datamart(
            "acme", "mart", "SELECT region FROM dim_store")
        target = platform.tenants.context("acme").warehouse_db
        target.execute("INSERT INTO dim_store VALUES (99, 'X', 'Y')")
        rows = platform.integration.materialize_datamart(
            "acme", "mart", "SELECT region FROM dim_store",
            refresh=True)
        assert rows == 7

    def test_existing_table_without_refresh_fails(self, platform,
                                                  warehouse):
        from repro.errors import CatalogError

        platform.integration.materialize_datamart(
            "acme", "mart", "SELECT region FROM dim_store")
        with pytest.raises(CatalogError):
            platform.integration.materialize_datamart(
                "acme", "mart", "SELECT region FROM dim_store")


class TestReportDelivery:
    def test_report_output_delivered_on_all_channels(self, platform,
                                                     warehouse):
        platform.reporting.create_report_group("acme", "finance")
        platform.reporting.upload_report(
            "acme", "finance", REPORT_DESIGN, "warehouse")
        output = platform.reporting.run_report("acme", "store-revenue")

        html = platform.delivery.deliver_report(output, Channel.WEB)
        assert html.startswith("<!DOCTYPE html>")
        assert "store-revenue" in html

        mobile = platform.delivery.deliver_report(
            output, Channel.MOBILE)
        assert mobile.startswith("[store-revenue]")

        office = platform.delivery.deliver_report(
            output, Channel.OFFICE)
        assert "# cities" in office

        payload = platform.delivery.deliver_report(
            output, Channel.WEB_SERVICE)
        assert payload["dashboard"] == "store-revenue"
        assert len(payload["elements"]) == 2
