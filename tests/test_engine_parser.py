"""Unit tests for the SQL tokenizer and parser."""

import pytest

from repro.engine.parser import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    Join,
    SelectStatement,
    TableRef,
    TransactionStatement,
    UpdateStatement,
    parse_sql,
    tokenize,
)
from repro.engine.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
)
from repro.engine.types import SqlType
from repro.errors import SqlSyntaxError


class TestTokenizer:
    def test_keywords_are_upcased(self):
        tokens = tokenize("select Name")
        assert tokens[0].kind == "keyword"
        assert tokens[0].text == "SELECT"
        assert tokens[1].kind == "name"
        assert tokens[1].text == "Name"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "'it''s'"

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment")
        kinds = [token.kind for token in tokens]
        assert "comment" not in kinds

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @x")

    def test_two_char_operators(self):
        tokens = tokenize("a <> b <= c || d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<>", "<=", "||"]


class TestSelectParsing:
    def test_minimal_select(self):
        statement = parse_sql("SELECT 1")
        assert isinstance(statement, SelectStatement)
        assert statement.from_clause is None
        assert statement.items[0].expression == Literal(1)

    def test_select_star(self):
        statement = parse_sql("SELECT * FROM t")
        assert isinstance(statement.items[0].expression, Star)
        assert statement.from_clause == TableRef("t", "t")

    def test_qualified_star(self):
        statement = parse_sql("SELECT a.* FROM t a")
        assert statement.items[0].alias == "a.*"

    def test_alias_with_and_without_as(self):
        statement = parse_sql("SELECT x AS one, y two FROM t")
        assert statement.items[0].alias == "one"
        assert statement.items[1].alias == "two"

    def test_where_clause_structure(self):
        statement = parse_sql("SELECT x FROM t WHERE a = 1 AND b > 2")
        where = statement.where
        assert isinstance(where, BinaryOp)
        assert where.op == "AND"

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1")
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_limit_offset(self):
        statement = parse_sql(
            "SELECT x FROM t ORDER BY x DESC, y LIMIT 10 OFFSET 5")
        assert statement.order_by[0][1] is False
        assert statement.order_by[1][1] is True
        assert statement.limit == Literal(10)
        assert statement.offset == Literal(5)

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT x FROM t").distinct

    def test_join_chain_builds_left_deep_tree(self):
        statement = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
        outer = statement.from_clause
        assert isinstance(outer, Join)
        assert outer.kind == "LEFT"
        inner = outer.left
        assert isinstance(inner, Join)
        assert inner.kind == "INNER"

    def test_cross_join(self):
        statement = parse_sql("SELECT * FROM a CROSS JOIN b")
        assert statement.from_clause.kind == "CROSS"
        assert statement.from_clause.condition is None

    def test_aggregate_distinct(self):
        statement = parse_sql("SELECT COUNT(DISTINCT x) FROM t")
        aggregate = statement.items[0].expression
        assert isinstance(aggregate, AggregateCall)
        assert aggregate.distinct

    def test_count_star(self):
        statement = parse_sql("SELECT COUNT(*) FROM t")
        aggregate = statement.items[0].expression
        assert isinstance(aggregate.argument, Star)

    def test_parameters_are_numbered_in_order(self):
        statement = parse_sql("SELECT ? , ? FROM t WHERE x = ?")
        first = statement.items[0].expression
        second = statement.items[1].expression
        assert isinstance(first, Parameter) and first.index == 0
        assert isinstance(second, Parameter) and second.index == 1
        assert statement.where.right.index == 2

    def test_case_expression(self):
        statement = parse_sql(
            "SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t")
        case = statement.items[0].expression
        assert isinstance(case, CaseExpr)
        assert len(case.branches) == 1
        assert case.default == Literal("neg")

    def test_predicates(self):
        statement = parse_sql(
            "SELECT * FROM t WHERE a IN (1, 2) AND b IS NOT NULL "
            "AND c BETWEEN 1 AND 9 AND d LIKE 'x%' AND e NOT IN (3)")
        text = repr(statement.where)
        assert "InList" in text and "IsNull" in text
        assert "Between" in text and "Like" in text

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 FROM t THEN")

    def test_empty_case_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT CASE END FROM t")


class TestDmlParsing:
    def test_insert_multi_row(self):
        statement = parse_sql(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_without_column_list(self):
        statement = parse_sql("INSERT INTO t VALUES (1)")
        assert statement.columns == []

    def test_update(self):
        statement = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE id = ?")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments[0][0] == "a"
        assert isinstance(statement.where, BinaryOp)

    def test_delete_without_where(self):
        statement = parse_sql("DELETE FROM t")
        assert isinstance(statement, DeleteStatement)
        assert statement.where is None


class TestDdlParsing:
    def test_create_table_with_constraints(self):
        statement = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, "
            "name VARCHAR(40) NOT NULL, score REAL DEFAULT 0.5, "
            "tag TEXT UNIQUE)")
        assert isinstance(statement, CreateTableStatement)
        columns = {column.name: column for column in statement.columns}
        assert columns["id"].primary_key
        assert not columns["name"].nullable
        assert columns["score"].default == 0.5
        assert columns["tag"].unique

    def test_create_table_if_not_exists(self):
        statement = parse_sql("CREATE TABLE IF NOT EXISTS t (x INTEGER)")
        assert statement.if_not_exists

    def test_negative_default(self):
        statement = parse_sql("CREATE TABLE t (x INTEGER DEFAULT -1)")
        assert statement.columns[0].default == -1

    def test_type_aliases_resolve(self):
        statement = parse_sql("CREATE TABLE t (a BIGINT, b DATETIME)")
        assert statement.columns[0].type is SqlType.INTEGER
        assert statement.columns[1].type is SqlType.TIMESTAMP

    def test_drop_table(self):
        statement = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTableStatement)
        assert statement.if_exists

    def test_create_unique_index(self):
        statement = parse_sql("CREATE UNIQUE INDEX idx ON t (a, b)")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.unique
        assert statement.columns == ["a", "b"]

    def test_create_unique_table_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("CREATE UNIQUE TABLE t (x INTEGER)")


class TestTransactionParsing:
    @pytest.mark.parametrize("sql,action", [
        ("BEGIN", "BEGIN"),
        ("COMMIT", "COMMIT"),
        ("ROLLBACK", "ROLLBACK"),
    ])
    def test_transaction_statements(self, sql, action):
        statement = parse_sql(sql)
        assert isinstance(statement, TransactionStatement)
        assert statement.action == action
