"""Property-based tests for engine invariants (hypothesis)."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.types import SqlType, coerce_value, sort_key
from repro.errors import TypeMismatch

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
ints = st.integers(min_value=-10**9, max_value=10**9)


@st.composite
def value_rows(draw):
    return (
        draw(ints),
        draw(st.one_of(st.none(), names)),
        draw(st.one_of(st.none(), st.floats(
            allow_nan=False, allow_infinity=False,
            min_value=-1e9, max_value=1e9))),
    )


class TestSortKeyProperties:
    @given(st.lists(st.one_of(st.none(), ints,
                              st.floats(allow_nan=False,
                                        allow_infinity=False),
                              names), max_size=30))
    def test_sort_key_gives_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        keys = [sort_key(value) for value in ordered]
        assert keys == sorted(keys)

    @given(st.one_of(st.none(), ints, names))
    def test_null_sorts_before_everything(self, value):
        assert sort_key(None) <= sort_key(value)


class TestCoercionProperties:
    @given(ints)
    def test_integer_coercion_is_identity(self, value):
        assert coerce_value(value, SqlType.INTEGER) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_real_coercion_roundtrips(self, value):
        assert coerce_value(value, SqlType.REAL) == pytest.approx(value)

    @given(st.dates())
    def test_date_iso_roundtrip(self, value):
        assert coerce_value(value.isoformat(), SqlType.DATE) == value

    @given(names)
    def test_text_is_preserved_verbatim(self, value):
        assert coerce_value(value, SqlType.TEXT) == value


class TestEngineRelationalProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(value_rows(), min_size=0, max_size=40))
    def test_count_matches_inserted_rows(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        assert db.query_value("SELECT COUNT(*) FROM t") == len(rows)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(value_rows(), min_size=1, max_size=40))
    def test_where_partitions_the_table(self, rows):
        """Rows matching P plus rows matching NOT P plus NULL-P rows = all."""
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        matching = db.query_value("SELECT COUNT(*) FROM t WHERE c > 0")
        complement = db.query_value("SELECT COUNT(*) FROM t WHERE NOT c > 0")
        nulls = db.query_value("SELECT COUNT(*) FROM t WHERE c IS NULL")
        assert matching + complement + nulls == len(rows)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(value_rows(), min_size=1, max_size=40))
    def test_sum_by_group_equals_global_sum(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        total = db.query_value("SELECT SUM(a) FROM t")
        groups = db.query("SELECT b, SUM(a) AS s FROM t GROUP BY b")
        assert sum(row["s"] for row in groups if row["s"] is not None) == total

    @settings(max_examples=25, deadline=None)
    @given(st.lists(value_rows(), min_size=0, max_size=30))
    def test_order_by_produces_sorted_output(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        output = [row["a"] for row in db.query("SELECT a FROM t ORDER BY a")]
        assert output == sorted(output)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(value_rows(), min_size=0, max_size=25),
           st.lists(value_rows(), min_size=0, max_size=25))
    def test_rollback_is_exact_inverse(self, first_batch, second_batch):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in first_batch:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        before = db.query("SELECT * FROM t ORDER BY a, c, b")
        db.begin()
        for row in second_batch:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        db.execute("UPDATE t SET a = a + 1")
        db.execute("DELETE FROM t WHERE a % 2 = 0")
        db.rollback()
        assert db.query("SELECT * FROM t ORDER BY a, c, b") == before

    @settings(max_examples=20, deadline=None)
    @given(st.lists(ints, min_size=0, max_size=40, unique=True))
    def test_hash_join_agrees_with_nested_loop(self, keys):
        """The equality hash-join path must match a cross-join + filter."""
        db = Database()
        db.execute("CREATE TABLE l (k INTEGER, v TEXT)")
        db.execute("CREATE TABLE r (k INTEGER, w TEXT)")
        for key in keys:
            db.execute("INSERT INTO l VALUES (?, ?)", (key, f"l{key}"))
            if key % 2 == 0:
                db.execute("INSERT INTO r VALUES (?, ?)", (key, f"r{key}"))
        joined = db.query(
            "SELECT l.k FROM l JOIN r ON l.k = r.k ORDER BY l.k")
        filtered = db.query(
            "SELECT l.k FROM l CROSS JOIN r WHERE l.k = r.k ORDER BY l.k")
        assert joined == filtered

    @settings(max_examples=20, deadline=None)
    @given(st.lists(value_rows(), min_size=0, max_size=30))
    def test_snapshot_roundtrip_preserves_rows(self, rows):
        import tempfile
        from pathlib import Path

        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "db.bin"
            db.save(path)
            restored = Database.load(path)
        assert restored.query("SELECT * FROM t ORDER BY a, c, b") == \
            db.query("SELECT * FROM t ORDER BY a, c, b")
