"""Scale checks: many tenants through the full loop, no bleed-through."""

import pytest

from repro import OdbisPlatform, TenancyMode
from repro.etl import RowsSource, SurrogateKey
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
)

TENANTS = 24


def cim():
    return CimModel("m", [
        BusinessRequirement(
            subject="Sales",
            measures=[MeasureSpec("revenue")],
            dimensions=[DimensionSpec("Region", ["region"])]),
    ])


@pytest.fixture(scope="module")
def fleet():
    platform = OdbisPlatform(mode=TenancyMode.SHARED)
    for index in range(TENANTS):
        tenant = f"t{index:02d}"
        platform.provisioning.provision(tenant, tenant.upper())
        platform.mddws.create_project(tenant, f"{tenant}-dw")
        platform.mddws.design_warehouse(tenant, cim())
        platform.integration.define_job(
            tenant, "load-region",
            RowsSource([{"region": "R"}]),
            [SurrogateKey("region_key")], target_table="dim_region")
        platform.integration.define_job(
            tenant, "load-fact",
            RowsSource([{"region_key": 1,
                         "revenue": float(index + 1)}]),
            target_table="fact_sales")
        platform.integration.run_graph(tenant, {
            "load-region": [], "load-fact": ["load-region"]})
    return platform


class TestFleetScale:
    def test_every_tenant_answers_with_its_own_number(self, fleet):
        for index in range(TENANTS):
            tenant = f"t{index:02d}"
            total = fleet.analysis.engine(
                tenant, "Sales").grand_total("revenue")
            assert total == float(index + 1)

    def test_shared_operational_database(self, fleet):
        assert fleet.tenants.database_count() == 1
        assert len(fleet.tenants) == TENANTS

    def test_usage_metered_per_tenant(self, fleet):
        rollup = fleet.billing.platform_usage()
        assert len(rollup) == TENANTS
        for usage in rollup.values():
            assert usage["etl_rows"] == 2

    def test_admin_sees_whole_fleet(self, fleet):
        report = fleet.admin.usage_report()
        assert report["tenants"] == TENANTS
        assert len(report["invoice_totals"]) == TENANTS

    def test_every_tenant_completed_its_project(self, fleet):
        for index in range(TENANTS):
            tenant = f"t{index:02d}"
            status = fleet.mddws.project_status(tenant)
            assert status["layers"]["warehouse"] is True
