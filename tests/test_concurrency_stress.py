"""Deterministic concurrency stress harness (``pytest -m stress``).

Barrier-orchestrated interleavings of mixed read/write/DDL/transaction
workloads across ≥8 worker threads, doubling as the race regression
suite: every scenario is phase-aligned with :class:`threading.Barrier`
so each phase's *observable* results are deterministic even though the
statement interleaving inside a phase is not.  Each engine scenario
runs twice — ``Database(compile=True)`` and ``compile=False`` — and
the two per-thread result logs must be identical, so compiled plans
and the interpreted executor agree under contention.

These tests run in the tier-1 suite; a race that corrupts state or
deadlocks (the barrier/join timeouts catch hangs) fails the build.
"""

import threading

import pytest

from repro.engine import Database, ReadWriteLock
from repro.core.tenancy import TenancyMode, TenantManager

pytestmark = pytest.mark.stress

N_WORKERS = 8
WAIT = 60.0  # barrier/join timeout: a deadlock fails, not hangs


def run_workers(worker, n_workers=N_WORKERS):
    """Run ``worker(wid)`` on n threads; re-raise the first failure."""
    errors = []

    def guarded(wid):
        try:
            worker(wid)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append((wid, exc))

    threads = [threading.Thread(target=guarded, args=(wid,),
                                name=f"stress-{wid}")
               for wid in range(n_workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=WAIT)
    alive = [thread.name for thread in threads if thread.is_alive()]
    assert not alive, f"workers deadlocked: {alive}"
    if errors:
        wid, exc = errors[0]
        raise AssertionError(f"worker {wid} failed: {exc!r}") from exc


class TestReadWriteLock:
    def test_readers_overlap(self):
        """All readers must be inside the lock at the same time."""
        lock = ReadWriteLock()
        inside = threading.Barrier(N_WORKERS)

        def worker(wid):
            with lock.shared():
                # If readers excluded each other this barrier could
                # never fill and the wait would raise BrokenBarrier.
                inside.wait(timeout=WAIT)

        run_workers(worker)

    def test_writer_excludes_everyone(self):
        lock = ReadWriteLock()
        counter = {"value": 0, "max_inside": 0}

        def worker(wid):
            for _ in range(200):
                with lock.exclusive():
                    counter["value"] += 1
                    counter["max_inside"] = max(
                        counter["max_inside"], 1)

        run_workers(worker)
        assert counter["value"] == N_WORKERS * 200

    def test_writer_is_reentrant(self):
        lock = ReadWriteLock()
        with lock.exclusive():
            with lock.exclusive():
                with lock.shared():
                    assert lock.owned_exclusively()
        assert not lock.owned_exclusively()


def _stress_scenario(compile):
    """One full mixed workload; returns (db, per-thread result logs)."""
    database = Database("stress", compile=compile)
    database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, owner TEXT, "
        "qty INTEGER)")
    database.execute(
        "CREATE TABLE audit (aid INTEGER PRIMARY KEY, actor TEXT)")
    barrier = threading.Barrier(N_WORKERS)
    logs = [[] for _ in range(N_WORKERS)]

    def worker(wid):
        log = logs[wid]
        owner = f"w{wid}"
        # Phase 1 — concurrent writes on disjoint key ranges.
        barrier.wait(timeout=WAIT)
        for i in range(20):
            database.execute("INSERT INTO items VALUES (?, ?, ?)",
                             (wid * 100 + i, owner, i))
        # Phase 2 — all threads read the now-settled state at once.
        barrier.wait(timeout=WAIT)
        log.append(database.query(
            "SELECT COUNT(*) AS n FROM items"))
        log.append(database.query(
            "SELECT owner, SUM(qty) AS total FROM items "
            "GROUP BY owner ORDER BY owner"))
        log.append(database.query(
            "SELECT qty FROM items WHERE id = ?", (wid * 100 + 5,)))
        # Phase 3 — DDL under contention: worker 0 reshapes the table
        # while the others run point reads (explicit column lists, so
        # the added column cannot change any logged result).
        barrier.wait(timeout=WAIT)
        if wid == 0:
            database.execute(
                "CREATE INDEX idx_owner ON items (owner)")
            database.execute(
                "ALTER TABLE items ADD COLUMN note TEXT")
        else:
            for i in range(10):
                log.append(database.query(
                    "SELECT id, qty FROM items WHERE id = ?",
                    (wid * 100 + i,)))
        # Phase 4 — even workers run exclusive transaction scopes;
        # odd workers read rows no transaction touches.
        barrier.wait(timeout=WAIT)
        if wid % 2 == 0:
            with database.transaction():
                database.execute(
                    "UPDATE items SET qty = qty + 100 "
                    "WHERE owner = ?", (owner,))
                database.execute(
                    "INSERT INTO audit VALUES (?, ?)", (wid, owner))
        else:
            log.append(database.query(
                "SELECT id, qty FROM items WHERE owner = ? "
                "ORDER BY id", (owner,)))
        # Phase 5 — odd workers roll back a destructive transaction;
        # even workers read their own (untouched) partitions.
        barrier.wait(timeout=WAIT)
        if wid % 2 == 1:
            with pytest.raises(RuntimeError):
                with database.transaction():
                    database.execute(
                        "DELETE FROM items WHERE owner = ?", (owner,))
                    raise RuntimeError("forced rollback")
        else:
            log.append(database.query(
                "SELECT COUNT(*) AS n FROM items WHERE owner = ?",
                (owner,)))

    run_workers(worker)
    return database, logs


class TestEngineStress:
    def test_mixed_workload_compiled_equals_interpreted(self):
        compiled_db, compiled_logs = _stress_scenario(compile=True)
        interpreted_db, interpreted_logs = _stress_scenario(
            compile=False)
        # The race regression core: under contention, the compiled
        # and interpreted engines must produce identical logs.
        assert compiled_logs == interpreted_logs
        for database in (compiled_db, interpreted_db):
            assert database.query_value(
                "SELECT COUNT(*) FROM items") == N_WORKERS * 20
            # Even owners got +100 per row inside their transactions;
            # odd owners' deletes all rolled back.
            sums = {row["owner"]: row["total"] for row in database.query(
                "SELECT owner, SUM(qty) AS total FROM items "
                "GROUP BY owner")}
            base = sum(range(20))
            for wid in range(N_WORKERS):
                expected = base + (2000 if wid % 2 == 0 else 0)
                assert sums[f"w{wid}"] == expected
            actors = database.query(
                "SELECT actor FROM audit ORDER BY actor")
            assert [row["actor"] for row in actors] == \
                [f"w{wid}" for wid in range(0, N_WORKERS, 2)]
            assert not database.in_transaction

    def test_transaction_scopes_prevent_lost_updates(self):
        """Read-modify-write in a transaction scope must not race."""
        database = Database("counter")
        database.execute(
            "CREATE TABLE counter (id INTEGER PRIMARY KEY, "
            "v INTEGER)")
        database.execute("INSERT INTO counter VALUES (1, 0)")
        rounds = 25

        def worker(wid):
            for _ in range(rounds):
                with database.transaction():
                    value = database.query_value(
                        "SELECT v FROM counter WHERE id = 1")
                    database.execute(
                        "UPDATE counter SET v = ? WHERE id = 1",
                        (value + 1,))

        run_workers(worker)
        assert database.query_value(
            "SELECT v FROM counter WHERE id = 1") == \
            N_WORKERS * rounds

    def test_plan_and_statement_caches_survive_ddl_churn(self):
        """Concurrent first-parse/first-plan races + invalidation."""
        database = Database("churn")
        database.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        database.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(key, key * 7) for key in range(1, 201)])
        rounds = 12
        barrier = threading.Barrier(N_WORKERS)

        def worker(wid):
            for round_no in range(rounds):
                barrier.wait(timeout=WAIT)
                if wid == 0:
                    # DDL invalidates every cached plan mid-round.
                    database.execute(
                        f"CREATE INDEX churn_{round_no} ON t (v)")
                else:
                    key = (wid * 31 + round_no) % 200 + 1
                    value = database.query_value(
                        "SELECT v FROM t WHERE k = ?", (key,))
                    assert value == key * 7

        run_workers(worker)
        # The shared statement object means one cache entry per text.
        assert len(database._statement_cache) <= 3 + rounds

    def test_statistics_are_not_lost_under_contention(self):
        database = Database("stats")
        database.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1)")
        before = database.statistics["statements"]
        per_worker = 50

        def worker(wid):
            for _ in range(per_worker):
                database.query("SELECT k FROM t WHERE k = 1")

        run_workers(worker)
        assert database.statistics["statements"] == \
            before + N_WORKERS * per_worker
        assert database.statistics["rows_returned"] >= \
            N_WORKERS * per_worker


class TestTenantStress:
    def test_shared_mode_tenants_serialize_writes_correctly(self):
        """8 tenants on one shared operational database."""
        manager = TenantManager(TenancyMode.SHARED)
        for wid in range(N_WORKERS):
            manager.register(f"t{wid}", f"Tenant {wid}")
        shared = manager.platform_db
        shared.execute(
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, "
            "tenant TEXT, amount INTEGER)")
        barrier = threading.Barrier(N_WORKERS)

        def worker(wid):
            context = manager.require_active(f"t{wid}")
            database = context.operational_db
            assert database is shared
            barrier.wait(timeout=WAIT)
            for i in range(25):
                database.execute(
                    "INSERT INTO orders VALUES (?, ?, ?)",
                    (wid * 1000 + i, f"t{wid}", i))
            # Tenant-discriminated reads overlap on the shared side.
            rows = database.query(
                "SELECT COUNT(*) AS n FROM orders WHERE tenant = ?",
                (f"t{wid}",))
            assert rows[0]["n"] == 25

        run_workers(worker)
        assert shared.query_value(
            "SELECT COUNT(*) FROM orders") == N_WORKERS * 25
        assert manager.database_count() == 1

    def test_isolated_mode_tenants_run_in_parallel(self):
        """Private databases: all 8 readers inside their engines at
        once — the barrier can only fill if no cross-tenant lock
        serializes them."""
        manager = TenantManager(TenancyMode.ISOLATED)
        for wid in range(N_WORKERS):
            context = manager.register(f"t{wid}", f"Tenant {wid}")
            context.operational_db.execute(
                "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)")
            context.operational_db.execute(
                "INSERT INTO kv VALUES (1, 'x')")
        assert manager.database_count() == N_WORKERS
        inside = threading.Barrier(N_WORKERS)

        def worker(wid):
            database = manager.require_active(
                f"t{wid}").operational_db
            with database._lock.shared():
                inside.wait(timeout=WAIT)
            for _ in range(50):
                assert database.query_value(
                    "SELECT v FROM kv WHERE k = 1") == "x"

        run_workers(worker)
