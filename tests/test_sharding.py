"""Shard-map battery: placement, WAL-shipped replicas, failover.

Marker ``shard``.  Three properties carry the tentpole:

* consistent-hash placement is a pure function of ring membership,
  and rescaling moves only a bounded fraction of tenants;
* a read replica converges to its primary after a write burst, and
  survives the primary checkpointing past it (snapshot resync);
* failover promotes a replica onto *exactly* the committed prefix of
  the fenced primary's log — dangling ops and torn tails never ship —
  verified with the same ``state_fingerprint`` oracle the crash-chaos
  battery uses.
"""

import pytest

from repro.core import OdbisPlatform
from repro.core.sharding import HashRing, ShardMap
from repro.engine.wal import frame_record
from repro.errors import ShardError, TenantError, WalError

pytestmark = pytest.mark.shard

TENANTS = [f"tenant-{index:03d}" for index in range(200)]


def placement(ring):
    return {tenant: ring.node_for(tenant) for tenant in TENANTS}


def make_ring(nodes):
    ring = HashRing()
    for node in nodes:
        ring.add_node(node)
    return ring


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        first = make_ring(["shard-0", "shard-1", "shard-2"])
        # Same membership, different insertion order.
        second = make_ring(["shard-2", "shard-0", "shard-1"])
        assert placement(first) == placement(second)

    def test_every_shard_takes_a_share(self):
        ring = make_ring([f"shard-{index}" for index in range(4)])
        owners = set(placement(ring).values())
        assert owners == {f"shard-{index}" for index in range(4)}

    def test_adding_a_shard_moves_a_bounded_fraction(self):
        ring = make_ring([f"shard-{index}" for index in range(4)])
        before = placement(ring)
        ring.add_node("shard-4")
        after = placement(ring)
        moved = {tenant for tenant in TENANTS
                 if before[tenant] != after[tenant]}
        # Expect ~1/5 of tenants to move; allow generous slack but
        # far below the "rehash the world" 3/4.
        assert 0 < len(moved) <= len(TENANTS) * 0.45
        # Every move lands on the new shard — never a reshuffle
        # between survivors.
        assert {after[tenant] for tenant in moved} == {"shard-4"}

    def test_removing_the_shard_restores_the_old_placement(self):
        ring = make_ring([f"shard-{index}" for index in range(4)])
        before = placement(ring)
        ring.add_node("shard-4")
        ring.remove_node("shard-4")
        assert placement(ring) == before

    def test_membership_errors_are_typed(self):
        ring = HashRing()
        with pytest.raises(ShardError):
            ring.node_for("anyone")
        ring.add_node("shard-0")
        with pytest.raises(ShardError):
            ring.add_node("shard-0")
        with pytest.raises(ShardError):
            ring.remove_node("shard-9")


@pytest.fixture
def shard_map(tmp_path):
    shard_map = ShardMap(tmp_path / "shards", shards=2, replicas=1,
                         fsync="off")
    yield shard_map
    shard_map.close()


def seeded_shard(shard_map, tenant="acme", rows=0):
    """The tenant's shard with a table and ``rows`` committed rows."""
    shard = shard_map.shard_for(tenant)
    shard.primary.execute(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, note TEXT)")
    for index in range(rows):
        shard.primary.execute(
            "INSERT INTO events VALUES (?, ?)",
            (index, f"note-{index}"))
    return shard


class TestReplication:
    def test_replica_lag_is_visible_and_converges(self, shard_map):
        shard = seeded_shard(shard_map, rows=25)
        replica = shard.replicas[0]
        lag = shard.replica_lag()[replica.replica_id]
        assert lag == shard.primary.committed_cn  # never polled
        applied = replica.poll()
        assert applied == shard.primary.committed_cn
        assert shard.replica_lag()[replica.replica_id] == 0
        assert replica.database.state_fingerprint() \
            == shard.primary.state_fingerprint()

    def test_polling_is_idempotent(self, shard_map):
        shard = seeded_shard(shard_map, rows=5)
        replica = shard.replicas[0]
        assert replica.poll() > 0
        assert replica.poll() == 0
        assert replica.database.state_fingerprint() \
            == shard.primary.state_fingerprint()

    def test_staleness_budget_gates_replica_eligibility(
            self, shard_map):
        shard = seeded_shard(shard_map, rows=0)
        replica = shard.replicas[0]
        replica.poll()
        for index in range(5):
            shard.primary.execute(
                "INSERT INTO events VALUES (?, 'burst')", (index,))
        lag = shard.replica_lag()[replica.replica_id]
        assert lag == 5
        assert shard.best_replica(lag - 1) is None
        assert shard.best_replica(lag) is replica

    def test_route_read_ships_then_serves_replica(self, shard_map):
        seeded_shard(shard_map, rows=10)
        database, route = shard_map.route_read("acme")
        assert route["served_by"].endswith("-replica-0")
        assert route["replica_lag"] == 0
        assert database.query(
            "SELECT COUNT(*) AS c FROM events") == [{"c": 10}]

    def test_checkpoint_gap_forces_snapshot_resync(self, shard_map):
        shard = seeded_shard(shard_map, rows=8)
        replica = shard.replicas[0]
        # Replica never polled; the primary checkpoints (snapshot +
        # log reset), then commits more.  The transactions the replica
        # needs are gone from the log — only the snapshot has them.
        shard.primary.checkpoint()
        for index in range(100, 103):
            shard.primary.execute(
                "INSERT INTO events VALUES (?, 'post-ckpt')",
                (index,))
        replica.poll()
        assert replica.resyncs == 1
        assert shard.replica_lag()[replica.replica_id] == 0
        assert replica.database.state_fingerprint() \
            == shard.primary.state_fingerprint()

    def test_resync_with_empty_log_after_checkpoint(self, shard_map):
        shard = seeded_shard(shard_map, rows=8)
        replica = shard.replicas[0]
        shard.primary.checkpoint()  # log now empty, snapshot ahead
        replica.poll()
        assert replica.resyncs == 1
        assert replica.database.state_fingerprint() \
            == shard.primary.state_fingerprint()


class TestFailover:
    def test_promotion_serves_exactly_the_committed_prefix(
            self, shard_map):
        shard = seeded_shard(shard_map, rows=12)
        committed = shard.primary.state_fingerprint()
        # Plant what a crashing primary leaves behind: an intact but
        # uncommitted op run, then a torn frame.  Neither is part of
        # the committed prefix and neither may ship.
        with open(shard.wal_path, "ab") as handle:
            handle.write(frame_record(
                ("op", ("insert", "events", 999, [999, "ghost"]))))
            handle.write(b"\x13\x37")
        promoted_id = shard.failover()
        assert promoted_id.endswith("-replica-0")
        assert shard.primary.state_fingerprint() == committed
        assert shard.primary.query(
            "SELECT COUNT(*) AS c FROM events WHERE id = 999") \
            == [{"c": 0}]

    def test_old_primary_is_fenced(self, shard_map):
        shard = seeded_shard(shard_map, rows=3)
        old_primary = shard.primary
        shard.failover()
        with pytest.raises(WalError):
            old_primary.execute(
                "INSERT INTO events VALUES (99, 'straggler')")

    def test_promoted_primary_accepts_writes_and_numbers_onward(
            self, shard_map):
        shard = seeded_shard(shard_map, rows=4)
        fenced_cn = shard.primary.committed_cn
        shard.failover()
        assert shard.primary.committed_cn == fenced_cn
        shard.primary.execute(
            "INSERT INTO events VALUES (100, 'after')")
        assert shard.primary.committed_cn == fenced_cn + 1
        assert shard.primary.wal.last_number == fenced_cn + 1

    def test_failover_trips_the_old_breaker_and_bumps_generation(
            self, shard_map):
        shard = seeded_shard(shard_map, rows=1)
        assert shard.breaker.state == "closed"
        shard.failover()
        assert shard.fenced_breaker is not None
        assert shard.fenced_breaker.state == "open"
        assert shard.breaker.state == "closed"  # the new primary's
        assert shard.generation == 1
        health = shard_map.health()[shard.shard_id]
        assert health["generation"] == 1
        assert health["fenced_breaker"] == "open"

    def test_failover_without_replicas_is_typed(self, tmp_path):
        bare = ShardMap(tmp_path / "bare", shards=1, replicas=0,
                        fsync="off")
        try:
            with pytest.raises(ShardError):
                bare.failover("shard-0")
        finally:
            bare.close()


class TestShardedPlatform:
    def login(self, platform, tenant):
        response = platform.web.request(
            "POST", "/login",
            body={"username": f"admin@{tenant}",
                  "password": "changeme"})
        assert response.status == 200
        return {"x-auth-token": response.json()["token"]}

    def test_sql_route_reads_from_replica_and_survives_failover(
            self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                 shards=2, replicas_per_shard=1)
        platform.provisioning.provision("acme", "Acme", plan="team")
        headers = self.login(platform, "acme")
        write = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "CREATE TABLE kpis "
                         "(id INTEGER PRIMARY KEY, v INTEGER)"}
        ).result(30)
        assert write.status == 200, write.body
        platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "INSERT INTO kpis VALUES (1, 41)"}
        ).result(30)
        read = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "SELECT v FROM kpis"}).result(30)
        payload = read.json()
        assert payload["rows"] == [{"v": 41}]
        assert payload["served_by"].endswith("-replica-0")
        assert payload["replica_lag"] == 0

        shard_id = platform.shards.place("acme")
        outcome = platform.failover(shard_id)
        assert "acme" in outcome["tenants_moved"]
        again = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "SELECT v FROM kpis"}).result(30)
        assert again.json()["rows"] == [{"v": 41}]
        # Post-promotion the shard has no replica left; the primary
        # serves (correctness over offload).
        assert again.json()["served_by"] == "primary"
        report = platform.health_report().to_dict()
        assert report["shards"][shard_id]["generation"] == 1
        platform.close()

    def test_sharded_platform_recovers_with_stable_placement(
            self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                 shards=3, replicas_per_shard=1)
        for tenant in ("acme", "globex", "initech"):
            platform.provisioning.provision(tenant, tenant.title(),
                                            plan="team")
        placed = {tenant: platform.shards.place(tenant)
                  for tenant in ("acme", "globex", "initech")}
        db = platform.tenants.context("acme").operational_db
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (7)")
        platform.close()

        recovered = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                  shards=3, replicas_per_shard=1)
        try:
            assert {tenant: recovered.shards.place(tenant)
                    for tenant in placed} == placed
            rows = recovered.tenants.context(
                "acme").operational_db.query("SELECT id FROM t")
            assert rows == [{"id": 7}]
            # The recovered operational db IS the placed shard primary.
            assert recovered.tenants.context("acme").operational_db \
                is recovered.shards.shard(placed["acme"]).primary
        finally:
            recovered.close()

    def test_sharding_without_data_dir_is_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            OdbisPlatform(shards=2)

    def test_deactivated_tenant_cannot_reach_its_shard(self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                 shards=1, replicas_per_shard=1)
        platform.provisioning.provision("acme", "Acme", plan="team")
        platform.tenants.deactivate("acme")
        with pytest.raises(TenantError):
            platform.tenants.require_active("acme")
        response = platform.gateway.submit(
            "POST", "/tenants/acme/sql",
            body={"sql": "SELECT 1"}).result(30)
        assert response.status == 403
        platform.close()
