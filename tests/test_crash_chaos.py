"""The crash-chaos battery (``pytest -m recovery``).

Kill-at-every-boundary: a scripted ≥50-transaction workload runs once
to produce the golden WAL plus the fingerprint of the database after
every commit; then the "process" is killed at every record boundary
(and at mid-frame offsets) of that log, and each recovery must rebuild
exactly the committed prefix — never a torn row, never a lost
acknowledged commit, never a resurrected aborted transaction.

Everything is deterministic by seed: the same seed replays the same
workload, the same WAL bytes and the same fingerprints, so a failure
here is reproducible byte-for-byte.
"""

import random
import shutil
import threading

import pytest

from repro.core.resilience import FaultInjector
from repro.engine.database import Database
from repro.engine.wal import MAGIC, read_log
from repro.errors import CrashPoint

pytestmark = pytest.mark.recovery

SEED = 0xB15
N_TRANSACTIONS = 60
WAIT = 60.0


def scripted_workload(seed=SEED, transactions=N_TRANSACTIONS):
    """Yield ``transactions`` mutation scripts, deterministically.

    Each yielded item is a list of (sql, params) statements forming
    one transaction (a single-statement list is an autocommit).
    """
    rng = random.Random(seed)
    yield [("CREATE TABLE ledger (id INTEGER PRIMARY KEY, "
            "account TEXT, amount INTEGER)", ())]
    yield [("CREATE INDEX idx_account ON ledger (account)", ())]
    next_id = [1]
    for step in range(transactions - 2):
        roll = rng.random()
        if roll < 0.45:
            rows = []
            for _ in range(rng.randint(1, 4)):
                rows.append(("INSERT INTO ledger VALUES (?, ?, ?)",
                             (next_id[0], f"acct{rng.randint(0, 5)}",
                              rng.randint(-100, 100))))
                next_id[0] += 1
            yield rows
        elif roll < 0.65 and next_id[0] > 1:
            target = rng.randint(1, next_id[0] - 1)
            yield [("UPDATE ledger SET amount = amount + ? "
                    "WHERE id = ?", (rng.randint(1, 9), target))]
        elif roll < 0.8 and next_id[0] > 1:
            target = rng.randint(1, next_id[0] - 1)
            yield [("DELETE FROM ledger WHERE id = ?", (target,))]
        elif roll < 0.9:
            yield [(f"CREATE VIEW v{step} AS SELECT account, amount "
                    f"FROM ledger WHERE amount > {rng.randint(0, 50)}",
                    ())]
        else:
            rows = [("INSERT INTO ledger VALUES (?, ?, ?)",
                     (next_id[0] + i, "batch", i)) for i in range(3)]
            next_id[0] += 3
            yield rows


def apply_transaction(db, statements):
    if len(statements) == 1:
        sql, params = statements[0]
        db.execute(sql, params)
    else:
        with db.transaction():
            for sql, params in statements:
                db.execute(sql, params)


def golden_run(directory, seed=SEED):
    """Run the scripted workload; return (wal bytes, fingerprints).

    ``fingerprints[k]`` is the state after the first ``k`` WAL
    commits (``fingerprints[0]`` is the empty database).  A scripted
    transaction that touches zero rows writes no commit record — and
    changes no state — so fingerprints are indexed by commit count,
    not transaction count.
    """
    db = Database.recover(directory, "main", fsync="off")
    fingerprints = [db.state_fingerprint()]
    for statements in scripted_workload(seed):
        apply_transaction(db, statements)
        if db.wal.commits > len(fingerprints) - 1:
            fingerprints.append(db.state_fingerprint())
    db.close()
    return (directory / "main.wal").read_bytes(), fingerprints


class TestKillAtEveryBoundary:
    def test_every_prefix_recovers_to_its_committed_state(
            self, tmp_path):
        golden_dir = tmp_path / "golden"
        golden_dir.mkdir()
        wal_bytes, fingerprints = golden_run(golden_dir)

        entries, good_length, reason = read_log(golden_dir / "main.wal")
        assert reason is None and good_length == len(wal_bytes)
        commit_ends = [end for record, end in entries
                       if record[0] == "commit"]
        assert len(commit_ends) == len(fingerprints) - 1
        assert len(commit_ends) >= 50  # the E15 acceptance floor

        # Kill points: the file start, every record boundary, and a
        # cut 3 bytes into every frame (a torn header or payload).
        frame_ends = [end for _, end in entries]
        cuts = {len(MAGIC)}
        cuts.update(frame_ends)
        cuts.update(min(end + 3, len(wal_bytes))
                    for end in [len(MAGIC)] + frame_ends[:-1])

        crash_dir = tmp_path / "crash"
        for cut in sorted(cuts):
            if crash_dir.exists():
                shutil.rmtree(crash_dir)
            crash_dir.mkdir()
            (crash_dir / "main.wal").write_bytes(wal_bytes[:cut])
            recovered = Database.recover(crash_dir, "main",
                                         fsync="off")
            survived = sum(1 for end in commit_ends if end <= cut)
            assert recovered.state_fingerprint() \
                == fingerprints[survived], \
                f"cut at byte {cut}: expected the state after " \
                f"{survived} commits"
            recovered.close()

    def test_same_seed_is_byte_identical(self, tmp_path):
        first, second = tmp_path / "a", tmp_path / "b"
        first.mkdir(), second.mkdir()
        bytes_a, prints_a = golden_run(first)
        bytes_b, prints_b = golden_run(second)
        assert bytes_a == bytes_b
        assert prints_a == prints_b


class TestLiveCrashInjection:
    """Crash points cut the byte stream *during* the workload."""

    @pytest.mark.parametrize("crash_offset", [
        len(MAGIC) + 1,      # dies tearing the very first frame
        500, 2_000, 9_999,   # arbitrary mid-log offsets
    ])
    def test_injected_crash_recovers_committed_prefix(
            self, tmp_path, crash_offset):
        golden_dir = tmp_path / "golden"
        golden_dir.mkdir()
        wal_bytes, fingerprints = golden_run(golden_dir)
        entries, _, _ = read_log(golden_dir / "main.wal")
        commit_ends = [end for record, end in entries
                       if record[0] == "commit"]

        crash_dir = tmp_path / "crash"
        crash_dir.mkdir()
        faults = FaultInjector()
        faults.crash_at("wal.append", crash_offset)
        db = Database.recover(crash_dir, "main", fsync="off",
                              faults=faults)
        died = False
        try:
            for statements in scripted_workload():
                apply_transaction(db, statements)
        except CrashPoint as crash:
            died = True
            assert crash.offset == crash_offset
        assert died or crash_offset >= len(wal_bytes)

        # The torn file on disk is exactly the golden prefix.
        torn = (crash_dir / "main.wal").read_bytes()
        if died:
            assert torn == wal_bytes[:crash_offset]
        recovered = Database.recover(crash_dir, "main", fsync="off")
        survived = sum(1 for end in commit_ends if end <= len(torn))
        assert recovered.state_fingerprint() == fingerprints[survived]
        recovered.close()


class TestConcurrentWorkloadRoundTrip:
    """The E13 shape: threaded mixed writes, then recover and agree."""

    N_WORKERS = 8

    def run_concurrent_workload(self, directory, compile):
        db = Database.recover(directory, "main", fsync="off",
                              compile=compile)
        db.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, "
                   "owner TEXT, qty INTEGER)")
        barrier = threading.Barrier(self.N_WORKERS)
        errors = []

        def worker(wid):
            try:
                barrier.wait(timeout=WAIT)
                owner = f"w{wid}"
                for i in range(15):
                    db.execute("INSERT INTO items VALUES (?, ?, ?)",
                               (wid * 100 + i, owner, i))
                db.executemany(
                    "UPDATE items SET qty = qty + ? WHERE id = ?",
                    [(1, wid * 100 + i) for i in range(0, 15, 3)])
                with db.transaction():
                    db.execute("DELETE FROM items WHERE id = ?",
                               (wid * 100 + 14,))
                    db.execute("INSERT INTO items VALUES (?, ?, ?)",
                               (wid * 100 + 50, owner, 999))
            except BaseException as exc:  # noqa: BLE001
                errors.append((wid, exc))

        threads = [threading.Thread(target=worker, args=(wid,))
                   for wid in range(self.N_WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=WAIT)
        assert not [t for t in threads if t.is_alive()], "deadlock"
        assert not errors, errors[0]
        fingerprint = db.state_fingerprint()
        totals = db.query("SELECT owner, COUNT(*) AS n, "
                          "SUM(qty) AS total FROM items "
                          "GROUP BY owner ORDER BY owner")
        db.close()
        return fingerprint, totals

    @pytest.mark.parametrize("compile", [True, False])
    def test_recovery_round_trips_the_live_state(self, tmp_path,
                                                 compile):
        live_fingerprint, live_totals = self.run_concurrent_workload(
            tmp_path, compile)
        recovered = Database.recover(tmp_path, "main", fsync="off",
                                     compile=compile)
        assert recovered.state_fingerprint() == live_fingerprint
        assert recovered.query(
            "SELECT owner, COUNT(*) AS n, SUM(qty) AS total "
            "FROM items GROUP BY owner ORDER BY owner") == live_totals
        recovered.close()

    def test_compiled_and_interpreted_recoveries_agree(self, tmp_path):
        compiled_dir = tmp_path / "compiled"
        interpreted_dir = tmp_path / "interpreted"
        compiled_dir.mkdir(), interpreted_dir.mkdir()
        self.run_concurrent_workload(compiled_dir, True)
        self.run_concurrent_workload(interpreted_dir, False)
        compiled = Database.recover(compiled_dir, "main",
                                    fsync="off", compile=True)
        interpreted = Database.recover(interpreted_dir, "main",
                                       fsync="off", compile=False)
        sql = ("SELECT owner, COUNT(*) AS n, SUM(qty) AS total "
               "FROM items GROUP BY owner ORDER BY owner")
        assert compiled.query(sql) == interpreted.query(sql)
        # Thread scheduling differs between the two runs, so internal
        # rowid allocation order differs — the *logical* contents
        # must still agree row for row across executors.
        contents = "SELECT id, owner, qty FROM items ORDER BY id"
        assert compiled.query(contents) == interpreted.query(contents)
        compiled.close()
        interpreted.close()
