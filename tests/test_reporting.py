"""Tests for the reporting substrate: ad-hoc, BIRT-style, rendering."""

import pytest

from repro.engine import Database
from repro.errors import RenderError, ReportDefinitionError
from repro.reporting import (
    AdhocReportBuilder,
    BirtRunner,
    ChartSpec,
    Dashboard,
    DataTableSpec,
    parse_report_design,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.reporting.render import render_chart_text, render_table_text

ROWS = [
    {"region": "North", "revenue": 100.0, "patients": 10},
    {"region": "North", "revenue": 50.0, "patients": 5},
    {"region": "South", "revenue": 200.0, "patients": 20},
    {"region": "East", "revenue": None, "patients": 3},
]


@pytest.fixture
def builder():
    return AdhocReportBuilder(ROWS)


class TestChartSpecs:
    def test_bad_kind_rejected(self):
        with pytest.raises(ReportDefinitionError):
            ChartSpec("c", "scatter3d", "x", "y")

    def test_bad_aggregator_rejected(self):
        with pytest.raises(ReportDefinitionError):
            ChartSpec("c", "bar", "x", "y", "median")

    def test_table_needs_columns(self):
        with pytest.raises(ReportDefinitionError):
            DataTableSpec("t", [])


class TestAdhocCharts:
    def test_bar_chart_sums_by_category(self, builder):
        chart = builder.bar_chart("rev", "region", "revenue")
        assert dict(chart.series) == \
            {"North": 150.0, "South": 200.0, "East": None}

    def test_avg_aggregator(self, builder):
        chart = builder.chart(
            ChartSpec("avg", "line", "region", "revenue", "avg"))
        assert dict(chart.series)["North"] == 75.0

    def test_count_counts_non_null(self, builder):
        chart = builder.chart(
            ChartSpec("n", "pie", "region", "revenue", "count"))
        assert dict(chart.series) == {"North": 2, "South": 1, "East": 0}

    def test_category_order_is_first_appearance(self, builder):
        chart = builder.bar_chart("rev", "region", "revenue")
        assert chart.categories() == ["North", "South", "East"]

    def test_missing_category_column_raises(self, builder):
        with pytest.raises(ReportDefinitionError):
            builder.bar_chart("bad", "ghost", "revenue")


class TestAdhocTables:
    def test_table_projects_columns(self, builder):
        table = builder.data_table("t", ["region", "patients"])
        assert list(table.rows[0]) == ["region", "patients"]
        assert len(table.rows) == 4

    def test_sort_and_limit(self, builder):
        table = builder.data_table(
            "top", ["region", "revenue"],
            sort_by="revenue", descending=True, limit=2)
        assert [row["region"] for row in table.rows] == ["South", "North"]

    def test_sort_puts_none_last(self, builder):
        table = builder.data_table("t", ["region", "revenue"],
                                   sort_by="revenue")
        assert table.rows[-1]["region"] == "East"

    def test_sort_by_must_be_projected(self, builder):
        with pytest.raises(ReportDefinitionError):
            builder.data_table("t", ["region"], sort_by="revenue")

    def test_missing_column_raises(self, builder):
        with pytest.raises(ReportDefinitionError):
            builder.data_table("t", ["ghost"])

    def test_column_values_accessor(self, builder):
        table = builder.data_table("t", ["region"])
        assert table.column_values("region").count("North") == 2
        with pytest.raises(ReportDefinitionError):
            table.column_values("ghost")


class TestDashboard:
    def test_dashboard_layout(self, builder):
        dashboard = Dashboard("hc", "healthcare overview")
        chart = builder.bar_chart("rev", "region", "revenue")
        table = builder.data_table("detail", ["region", "patients"])
        dashboard.add_row(chart)
        dashboard.add_row(table, chart)
        assert len(dashboard) == 3
        assert dashboard.element_names() == ["rev", "detail", "rev"]
        assert dashboard.element("detail") is table

    def test_empty_row_rejected(self):
        with pytest.raises(ReportDefinitionError):
            Dashboard("d").add_row()

    def test_non_rendered_element_rejected(self):
        with pytest.raises(ReportDefinitionError):
            Dashboard("d").add_row("just a string")

    def test_unknown_element_lookup(self, builder):
        dashboard = Dashboard("d")
        dashboard.add_row(builder.bar_chart("c", "region", "revenue"))
        with pytest.raises(ReportDefinitionError):
            dashboard.element("ghost")


class TestTextRendering:
    def test_chart_text_has_bars(self, builder):
        chart = builder.bar_chart("rev", "region", "revenue")
        text = render_chart_text(chart)
        assert "rev (bar)" in text
        assert "#" in text
        north = [line for line in text.splitlines()
                 if line.strip().startswith("North")][0]
        south = [line for line in text.splitlines()
                 if line.strip().startswith("South")][0]
        assert south.count("#") > north.count("#")

    def test_table_text_is_aligned(self, builder):
        table = builder.data_table("t", ["region", "patients"])
        text = render_table_text(table)
        lines = text.splitlines()
        assert "region" in lines[1]
        assert len({len(line) for line in lines[1:3]}) == 1

    def test_dashboard_text_contains_all_elements(self, builder):
        dashboard = Dashboard("hc", "desc")
        dashboard.add_row(builder.bar_chart("rev", "region", "revenue"))
        dashboard.add_row(builder.data_table("detail", ["region"]))
        text = render_dashboard_text(dashboard)
        assert "Dashboard: hc" in text
        assert "rev (bar)" in text
        assert "detail" in text


class TestHtmlRendering:
    def test_html_document_structure(self, builder):
        dashboard = Dashboard("hc")
        dashboard.add_row(builder.bar_chart("rev", "region", "revenue"),
                          builder.data_table("detail", ["region"]))
        document = render_dashboard_html(dashboard)
        assert document.startswith("<!DOCTYPE html>")
        assert "<h1>hc</h1>" in document
        assert "dashboard-row" in document
        assert "class='bar'" in document

    def test_html_escapes_content(self):
        rows = [{"label": "<script>", "v": 1}]
        builder = AdhocReportBuilder(rows)
        dashboard = Dashboard("x<y")
        dashboard.add_row(builder.data_table("t", ["label"]))
        document = render_dashboard_html(dashboard)
        assert "<script>" not in document
        assert "&lt;script&gt;" in document


@pytest.fixture
def report_db():
    db = Database()
    db.execute("CREATE TABLE sales (year INTEGER, region TEXT, "
               "revenue REAL)")
    db.executemany(
        "INSERT INTO sales VALUES (?, ?, ?)",
        [(2020, "North", 100.0), (2020, "South", 200.0),
         (2021, "North", 150.0)])
    return db


DESIGN = """
<report name="regional-sales">
  <parameter name="year" type="int" default="2020"/>
  <data-set name="sales"
            query="SELECT region, revenue FROM sales WHERE year = :year"/>
  <table name="by-region" data-set="sales" columns="region,revenue"
         sort-by="revenue" descending="true"/>
  <chart name="rev-chart" kind="bar" data-set="sales"
         category="region" value="revenue"/>
</report>
"""


class TestBirtDesignParsing:
    def test_parses_all_sections(self):
        design = parse_report_design(DESIGN)
        assert design.name == "regional-sales"
        assert design.parameter("year").default == 2020
        assert design.data_set("sales").query.startswith("SELECT")
        assert [item.kind for item in design.items] == ["table", "chart"]

    def test_malformed_xml_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design("<report")

    def test_wrong_root_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design("<dashboard name='x'/>")

    def test_unknown_element_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design(
                "<report name='r'><widget name='w'/></report>")

    def test_item_with_unknown_dataset_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design(
                "<report name='r'>"
                "<table name='t' data-set='ghost' columns='a'/>"
                "</report>")

    def test_report_without_items_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design(
                "<report name='r'>"
                "<data-set name='d' query='SELECT 1'/></report>")

    def test_bad_parameter_type_rejected(self):
        with pytest.raises(ReportDefinitionError):
            parse_report_design(
                "<report name='r'>"
                "<parameter name='p' type='uuid'/>"
                "<data-set name='d' query='SELECT 1'/>"
                "<table name='t' data-set='d' columns='a'/></report>")


class TestBirtRunner:
    def test_run_with_default_parameter(self, report_db):
        design = parse_report_design(DESIGN)
        output = BirtRunner(report_db).run(design)
        table = output.element("by-region")
        assert [row["region"] for row in table.rows] == ["South", "North"]
        chart = output.element("rev-chart")
        assert dict(chart.series)["South"] == 200.0

    def test_run_with_explicit_parameter(self, report_db):
        design = parse_report_design(DESIGN)
        output = BirtRunner(report_db).run(design, {"year": 2021})
        table = output.element("by-region")
        assert len(table.rows) == 1
        assert output.parameters["year"] == 2021

    def test_parameter_string_coercion(self, report_db):
        design = parse_report_design(DESIGN)
        output = BirtRunner(report_db).run(design, {"year": "2021"})
        assert output.parameters["year"] == 2021

    def test_unknown_parameter_rejected(self, report_db):
        design = parse_report_design(DESIGN)
        with pytest.raises(RenderError):
            BirtRunner(report_db).run(design, {"month": 5})

    def test_missing_required_parameter(self, report_db):
        design = parse_report_design(
            "<report name='r'>"
            "<parameter name='p' type='int' required='true'/>"
            "<data-set name='d' query='SELECT ? AS x'/>"
            "<table name='t' data-set='d' columns='x'/></report>"
            .replace("?", ":p"))
        with pytest.raises(RenderError):
            BirtRunner(report_db).run(design)

    def test_query_with_unknown_placeholder_rejected(self, report_db):
        design = parse_report_design(
            "<report name='r'>"
            "<data-set name='d' "
            "query='SELECT * FROM sales WHERE year = :ghost'/>"
            "<table name='t' data-set='d' columns='region'/></report>")
        with pytest.raises(RenderError):
            BirtRunner(report_db).run(design)

    def test_unknown_output_element(self, report_db):
        design = parse_report_design(DESIGN)
        output = BirtRunner(report_db).run(design)
        with pytest.raises(RenderError):
            output.element("ghost")
