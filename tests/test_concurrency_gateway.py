"""The request gateway: concurrent dispatch and tenant admission.

Covers the serving-layer tentpole at the platform level — overlapping
tenant requests through the worker pool — and the
``TenantManager.deactivate``/``require_active`` interplay: a
deactivated tenant's request is rejected at dispatch (it never reaches
the web stack, let alone a database), not mid-query.
"""

import threading

import pytest

from repro.core import OdbisPlatform, RequestGateway, TenancyMode
from repro.core.tenancy import TenantManager
from repro.errors import TenantError

TENANTS = ("acme", "globex")


@pytest.fixture
def platform():
    platform = OdbisPlatform()
    for tenant in TENANTS:
        platform.provisioning.provision(tenant, tenant.title(),
                                        plan="team")
    yield platform
    platform.gateway.shutdown()


def login(platform, tenant):
    response = platform.web.request(
        "POST", "/login",
        body={"username": f"admin@{tenant}", "password": "changeme"})
    assert response.status == 200
    return {"x-auth-token": response.json()["token"]}


class TestDispatch:
    def test_public_path_needs_no_tenant(self, platform):
        response = platform.gateway.submit("GET", "/ping").result(30)
        assert response.status == 200
        assert response.json() == {"status": "up"}

    def test_parallel_tenant_requests_stay_tenant_correct(
            self, platform):
        headers = {tenant: login(platform, tenant)
                   for tenant in TENANTS}
        requests = []
        for repeat in range(8):
            for tenant in TENANTS:
                requests.append({
                    "method": "GET",
                    "path": f"/tenants/{tenant}/datasources",
                    "headers": headers[tenant],
                })
        responses = platform.gateway.dispatch_all(requests)
        assert len(responses) == 16
        for spec, response in zip(requests, responses):
            assert response.status == 200
            tenant = spec["path"].split("/")[2]
            names = [entry["name"] for entry in response.json()]
            assert names == ["warehouse"]
        assert all(decision == "accepted"
                   for _, decision in platform.gateway.dispatch_log)

    def test_pool_really_overlaps_requests(self, platform):
        """All workers must be inside a handler simultaneously."""
        inside = threading.Barrier(platform.gateway.max_workers)

        def rendezvous(request):
            inside.wait(timeout=30)
            from repro.web import JsonResponse
            return JsonResponse({"ok": True})

        platform.web.get("/rendezvous", rendezvous)
        headers = login(platform, "acme")
        futures = [platform.gateway.submit("GET", "/rendezvous",
                                           headers=headers)
                   for _ in range(platform.gateway.max_workers)]
        responses = [future.result(30) for future in futures]
        assert all(response.status == 200 for response in responses)


class TestReadWriteClassification:
    """Shared-mode dispatch classifies SQL on the outermost statement.

    Under MVCC, read-only statements run on the engine's lock-free
    snapshot path; the dispatch log records which side each accepted
    SQL-bearing request landed on.  ``EXPLAIN <dml>`` only renders a
    plan, so it must classify as a read.
    """

    @pytest.mark.parametrize("sql", [
        "SELECT * FROM t",
        "SELECT a FROM t UNION SELECT a FROM u",
        "EXPLAIN SELECT * FROM t",
        "EXPLAIN UPDATE t SET a = 1",
        "EXPLAIN DELETE FROM t",
        "EXPLAIN INSERT INTO t VALUES (1)",
    ])
    def test_read_only_statements(self, sql):
        assert RequestGateway.read_only_statement(sql)

    @pytest.mark.parametrize("sql", [
        "INSERT INTO t VALUES (1)",
        "UPDATE t SET a = 1",
        "DELETE FROM t",
        "CREATE TABLE t (id INTEGER)",
        "BEGIN",
        "this is not sql at all",
    ])
    def test_write_or_unparseable_statements(self, sql):
        assert not RequestGateway.read_only_statement(sql)

    def test_dispatch_log_refines_accepted_for_sql_bodies(
            self, platform):
        from repro.web import JsonResponse

        def echo(request):
            return JsonResponse({"ok": True})

        platform.web.post("/echo-sql", echo)
        headers = login(platform, "acme")
        for body in ({"sql": "EXPLAIN UPDATE t SET a = 1"},
                     {"sql": "INSERT INTO t VALUES (1)"},
                     {"query": "SELECT 1"},
                     {"payload": "no sql here"}):
            response = platform.gateway.submit(
                "POST", "/echo-sql", body=body,
                headers=headers).result(30)
            assert response.status == 200
        decisions = [decision for path, decision
                     in platform.gateway.dispatch_log
                     if path == "/echo-sql"]
        assert decisions == ["accepted-read", "accepted-write",
                             "accepted-read", "accepted"]


class TestAdmissionControl:
    def test_deactivated_tenant_rejected_at_dispatch(self, platform):
        headers = login(platform, "globex")
        ok = platform.gateway.submit(
            "GET", "/tenants/globex/datasets",
            headers=headers).result(30)
        assert ok.status == 200
        platform.tenants.deactivate("globex")
        with pytest.raises(TenantError):
            platform.tenants.require_active("globex")
        handled_before = len(platform.web.access_log)
        response = platform.gateway.submit(
            "GET", "/tenants/globex/datasets",
            headers=headers).result(30)
        assert response.status == 403
        assert "deactivated" in response.json()["error"]
        # Rejected at dispatch: the web stack never saw the request.
        assert len(platform.web.access_log) == handled_before
        assert platform.gateway.dispatch_log[-1] == \
            ("/tenants/globex/datasets", "rejected")
        # The other tenant is unaffected.
        acme = platform.gateway.submit(
            "GET", "/tenants/acme/datasets",
            headers=login(platform, "acme")).result(30)
        assert acme.status == 200

    def test_unknown_tenant_rejected_at_dispatch(self, platform):
        response = platform.gateway.submit(
            "GET", "/tenants/nobody/datasets",
            headers=login(platform, "acme")).result(30)
        assert response.status == 404
        assert "unknown tenant" in response.json()["error"]

    def test_reactivation_restores_dispatch(self, platform):
        platform.tenants.deactivate("acme")
        headers = login(platform, "acme")
        assert platform.gateway.submit(
            "GET", "/tenants/acme/datasets",
            headers=headers).result(30).status == 403
        platform.tenants.context("acme").active = True
        assert platform.tenants.require_active("acme")
        assert platform.gateway.submit(
            "GET", "/tenants/acme/datasets",
            headers=headers).result(30).status == 200


class TestIsolatedModeGateway:
    def test_isolated_tenants_use_private_databases(self):
        platform = OdbisPlatform(mode=TenancyMode.ISOLATED)
        try:
            for tenant in TENANTS:
                platform.provisioning.provision(tenant,
                                                tenant.title())
            assert platform.tenants.database_count() == len(TENANTS)
            headers = {tenant: login(platform, tenant)
                       for tenant in TENANTS}
            requests = [{
                "method": "GET",
                "path": f"/tenants/{tenant}/datasources",
                "headers": headers[tenant],
            } for tenant in TENANTS for _ in range(6)]
            responses = platform.gateway.dispatch_all(requests)
            assert all(r.status == 200 for r in responses)
        finally:
            platform.gateway.shutdown()


class TestConcurrentControlPlane:
    def test_concurrent_registration_is_race_free(self):
        manager = TenantManager(TenancyMode.ISOLATED)
        winners = []

        def worker(wid):
            try:
                manager.register("dup", f"from-{wid}")
                winners.append(wid)
            except TenantError:
                pass

        threads = [threading.Thread(target=worker, args=(wid,))
                   for wid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(winners) == 1
        assert len(manager) == 1

    def test_concurrent_metering_mints_unique_event_ids(self, platform):
        def worker(wid):
            for _ in range(20):
                platform.billing.meter("acme", "query", 1)

        threads = [threading.Thread(target=worker, args=(wid,))
                   for wid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        ids = platform.billing.database.query(
            "SELECT id FROM usage_events WHERE tenant = 'acme'")
        values = [row["id"] for row in ids]
        assert len(values) == 160
        assert len(set(values)) == 160
        assert platform.billing.usage("acme")["query"] == 160


class TestGatewayUnit:
    def test_tenant_of(self):
        assert RequestGateway.tenant_of("/tenants/acme/datasets") == \
            "acme"
        assert RequestGateway.tenant_of("/ping") is None
        assert RequestGateway.tenant_of("/tenants") is None

    def test_context_manager_shuts_pool_down(self):
        platform = OdbisPlatform()
        platform.provisioning.provision("acme", "Acme")
        with platform.gateway as gateway:
            assert gateway.submit("GET", "/ping").result(30).ok
        assert gateway._pool is None
