"""MVCC snapshot isolation: visibility, version GC, durability.

The battery pins the PR's contract from four sides:

* **visibility** — a snapshot opened at commit number ``cn`` sees
  exactly the rows committed at or before ``cn``, regardless of what
  writers do afterwards;
* **reader-under-writer** — a SELECT on one thread completes while
  another thread sits inside an open ``BEGIN``..``COMMIT`` write
  transaction (the pre-MVCC lock would have queued it until commit);
* **version GC** — a pinned snapshot keeps its versions alive across
  ``vacuum``/``checkpoint``; closing it makes superseded versions
  reclaimable;
* **durability migration** — ``save`` still writes the flat seed
  format byte-identically (versions are reclaimable cache, not
  durable state), ``load`` seeds base versions at the snapshot's WAL
  commit number, and WAL recovery restamps replayed commits with
  their real numbers.
"""

import threading

import pytest

from repro.engine import Database
from repro.engine.wal import WriteAheadLog

pytestmark = pytest.mark.mvcc

WAIT = 30.0


def make_db(compile=True):
    db = Database("main", compile=compile)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(1, 6):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return db


def rows_of(db, sql="SELECT id, v FROM t ORDER BY id", params=()):
    return [tuple(row.values()) for row in db.query(sql, params)]


class TestSnapshotVisibility:
    def test_snapshot_pins_state_across_later_commits(self):
        db = make_db()
        with db.open_snapshot() as snapshot:
            before = db._run_select(
                db._parse("SELECT id, v FROM t ORDER BY id"), (),
                snapshot)
            db.execute("UPDATE t SET v = 'changed' WHERE id = 1")
            db.execute("DELETE FROM t WHERE id = 2")
            db.execute("INSERT INTO t VALUES (6, 'new')")
            after = db._run_select(
                db._parse("SELECT id, v FROM t ORDER BY id"), (),
                snapshot)
        # The pinned snapshot never moves...
        assert [tuple(r) for r in before.rows] \
            == [tuple(r) for r in after.rows]
        assert (1, "v1") in [tuple(r) for r in after.rows]
        # ...while a fresh read sees every commit.
        assert rows_of(db) == [(1, "changed"), (3, "v3"), (4, "v4"),
                               (5, "v5"), (6, "new")]

    def test_commit_number_advances_per_statement(self):
        db = make_db()
        base = db.committed_cn
        db.execute("UPDATE t SET v = 'x' WHERE id = 1")
        assert db.committed_cn == base + 1
        db.execute("SELECT * FROM t")  # reads publish nothing
        assert db.committed_cn == base + 1

    def test_transaction_commits_as_one_commit_number(self):
        db = make_db()
        base = db.committed_cn
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'a' WHERE id = 1")
        db.execute("UPDATE t SET v = 'b' WHERE id = 2")
        assert db.committed_cn == base  # nothing published yet
        db.execute("COMMIT")
        assert db.committed_cn == base + 1

    def test_rollback_leaves_no_trace_in_any_snapshot(self):
        db = make_db()
        base = db.committed_cn
        with db.open_snapshot() as snapshot:
            db.execute("BEGIN")
            db.execute("INSERT INTO t VALUES (7, 'ghost')")
            db.execute("UPDATE t SET v = 'ghost' WHERE id = 1")
            db.execute("DELETE FROM t WHERE id = 3")
            db.execute("ROLLBACK")
            assert db.committed_cn == base
            result = db._run_select(
                db._parse("SELECT id, v FROM t ORDER BY id"), (),
                snapshot)
        assert [tuple(r) for r in result.rows] == [
            (1, "v1"), (2, "v2"), (3, "v3"), (4, "v4"), (5, "v5")]
        assert rows_of(db) == [
            (1, "v1"), (2, "v2"), (3, "v3"), (4, "v4"), (5, "v5")]

    def test_compiled_and_interpreted_agree_on_a_snapshot(self):
        db = make_db()
        statement = db._parse("SELECT id, v FROM t WHERE id = 3")
        plan, reason = db.plan_for(statement)
        assert plan is not None, reason
        with db.open_snapshot() as snapshot:
            db.execute("UPDATE t SET v = 'later' WHERE id = 3")
            compiled = plan.execute((), snapshot)
            interpreted = db._executor.execute_select(
                statement, (), snapshot)
        assert [tuple(r) for r in compiled.rows] \
            == [tuple(r) for r in interpreted.rows] == [(3, "v3")]

    def test_index_scan_ignores_stale_key_tombstones(self):
        db = make_db()
        db.execute("CREATE INDEX t_v ON t (v)")
        db.execute("UPDATE t SET v = 'moved' WHERE id = 1")
        # The old key 'v1' stays in the index as a tombstone; neither
        # the live read nor a snapshot read may surface it.
        assert rows_of(db, "SELECT id, v FROM t WHERE v = 'v1'") == []
        assert rows_of(db, "SELECT id, v FROM t WHERE v = 'moved'") \
            == [(1, "moved")]


class TestReaderUnderWriter:
    def test_select_completes_while_write_txn_is_open(self):
        """The tentpole in one deterministic scenario.

        A writer thread opens BEGIN, mutates, and *stays open* until
        the reader is done.  Pre-MVCC the reader's shared acquisition
        would park behind the exclusive hold — deadlocking this exact
        interleaving (the writer only commits after the reader
        returns).  Under MVCC the reader must finish on its own.
        """
        db = make_db()
        writer_open = threading.Event()
        reader_done = threading.Event()
        failures = []

        def writer():
            db.begin()
            try:
                db.execute("UPDATE t SET v = 'dirty' WHERE id = 1")
                db.execute("INSERT INTO t VALUES (99, 'dirty')")
                writer_open.set()
                if not reader_done.wait(timeout=WAIT):
                    failures.append("reader never finished")
                db.commit()
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))
                db.rollback()

        thread = threading.Thread(target=writer, name="writer")
        thread.start()
        try:
            assert writer_open.wait(timeout=WAIT)
            # Runs while the transaction is open; must not block and
            # must see only committed state.
            assert rows_of(db) == [(1, "v1"), (2, "v2"), (3, "v3"),
                                   (4, "v4"), (5, "v5")]
        finally:
            reader_done.set()
            thread.join(timeout=WAIT)
        assert not thread.is_alive()
        assert failures == []
        assert rows_of(db, "SELECT id, v FROM t WHERE id IN (1, 99)") \
            == [(1, "dirty"), (99, "dirty")]

    def test_explain_dml_never_queues_behind_a_writer(self):
        db = make_db()
        writer_open = threading.Event()
        reader_done = threading.Event()

        def writer():
            db.begin()
            db.execute("UPDATE t SET v = 'held' WHERE id = 1")
            writer_open.set()
            reader_done.wait(timeout=WAIT)
            db.rollback()

        thread = threading.Thread(target=writer, name="writer")
        thread.start()
        try:
            assert writer_open.wait(timeout=WAIT)
            result = db.execute("EXPLAIN SELECT * FROM t WHERE id = 1")
            assert result.rows  # a plan came back while the txn held
        finally:
            reader_done.set()
            thread.join(timeout=WAIT)
        assert not thread.is_alive()

    def test_own_transaction_still_reads_its_writes(self):
        db = make_db()
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 'mine' WHERE id = 1")
        assert rows_of(db, "SELECT id, v FROM t WHERE id = 1") \
            == [(1, "mine")]
        db.execute("ROLLBACK")
        assert rows_of(db, "SELECT id, v FROM t WHERE id = 1") \
            == [(1, "v1")]


class TestVersionGC:
    def churn(self, db, rounds=4):
        for round_number in range(rounds):
            db.execute("UPDATE t SET v = ? WHERE id = 1",
                       (f"round{round_number}",))

    def test_pinned_snapshot_retains_its_versions(self):
        db = make_db()
        with db.open_snapshot() as snapshot:
            self.churn(db)
            assert db.version_count("t") > db.row_count("t")
            reclaimed = db.vacuum()
            # Intermediate versions between the snapshot and the head
            # may go, but the snapshot's own view must survive...
            result = db._run_select(
                db._parse("SELECT v FROM t WHERE id = 1"), (),
                snapshot)
            assert [tuple(r) for r in result.rows] == [("v1",)]
        # ...and once it closes, everything superseded is fair game.
        reclaimed = db.vacuum()
        assert reclaimed > 0
        assert db.version_count("t") == db.row_count("t")

    def test_closed_snapshots_move_the_horizon(self):
        db = make_db()
        snapshot = db.open_snapshot()
        assert db.version_horizon() == snapshot.cn
        self.churn(db)
        assert db.version_horizon() == snapshot.cn
        snapshot.close()
        assert snapshot.closed
        assert db.version_horizon() == db.committed_cn

    def test_checkpoint_runs_version_gc(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'v1')")
        for round_number in range(5):
            db.execute("UPDATE t SET v = ? WHERE id = 1",
                       (f"round{round_number}",))
        assert db.version_count("t") > 1
        db.checkpoint()
        assert db.version_count("t") == 1
        db.close()

    def test_delete_versions_are_reclaimed_entirely(self):
        db = make_db()
        db.execute("DELETE FROM t WHERE id <= 3")
        assert db.version_count("t") == 5  # tombstoned, retained
        assert db.vacuum() == 3
        assert db.version_count("t") == 2
        assert rows_of(db) == [(4, "v4"), (5, "v5")]

    def test_vacuum_rebuilds_indexes_without_tombstones(self):
        db = make_db()
        db.execute("CREATE INDEX t_v ON t (v)")
        index = db.storage("t").indexes["t_v"]
        for round_number in range(3):
            db.execute("UPDATE t SET v = ? WHERE id = 1",
                       (f"round{round_number}",))
        tombstoned = len(index)
        db.vacuum()
        assert len(index) < tombstoned
        assert rows_of(db, "SELECT id, v FROM t WHERE v = 'round2'") \
            == [(1, "round2")]


class TestDurabilityMigration:
    def test_save_format_is_flat_and_byte_stable(self, tmp_path):
        import pickle

        db = make_db()
        for sql in ("UPDATE t SET v = 'a' WHERE id = 1",
                    "DELETE FROM t WHERE id = 2"):
            db.execute(sql)
        first = tmp_path / "first.snap"
        db.save(first)
        # The payload is the flat seed format: live rows only, no
        # version chains or commit-number cache anywhere in it.
        payload = pickle.loads(first.read_bytes())
        assert sorted(payload["tables"][0]) == [
            "indexes", "next_rowid", "rows", "schema"]
        # Round trip: load seeds versions from the flat rows, and a
        # re-save is byte-identical from then on (the first re-save
        # may only differ in pickle memo sharing, never in content).
        loaded = Database.load(first)
        second = tmp_path / "second.snap"
        loaded.save(second)
        reloaded = Database.load(second)
        assert reloaded.state_fingerprint() == db.state_fingerprint()
        third = tmp_path / "third.snap"
        reloaded.save(third)
        assert second.read_bytes() == third.read_bytes()

    def test_load_seeds_base_versions_at_the_snapshot_cn(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'v1')")
        db.execute("UPDATE t SET v = 'v2' WHERE id = 1")
        base = db.committed_cn
        db.checkpoint()
        db.close()

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.committed_cn == base
        assert recovered.version_count("t") == 1
        # A snapshot at the recovered horizon sees the saved state.
        with recovered.open_snapshot() as snapshot:
            assert snapshot.cn == base
            result = recovered._run_select(
                recovered._parse("SELECT v FROM t"), (), snapshot)
            assert [tuple(r) for r in result.rows] == [("v2",)]
        recovered.close()

    def test_recovery_restamps_replayed_commit_numbers(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'first')")
        db.execute("UPDATE t SET v = 'second' WHERE id = 1")
        wal_number = db.wal.last_number
        fingerprint = db.state_fingerprint()
        db.close()

        recovered = Database.recover(tmp_path, "main", fsync="off")
        assert recovered.committed_cn == wal_number
        assert recovered.state_fingerprint() == fingerprint
        # Replay rebuilt real lifetimes: the version superseded by the
        # UPDATE is reclaimable, the live one is not.
        assert recovered.version_count("t") >= 1
        recovered.vacuum()
        assert recovered.version_count("t") == 1
        assert [tuple(row.values())
                for row in recovered.query("SELECT v FROM t")] \
            == [("second",)]
        recovered.close()

    def test_wal_next_number_matches_the_stamp_clock(self, tmp_path):
        db = Database.recover(tmp_path, "main", fsync="off")
        db.execute("CREATE TABLE t (id INTEGER)")
        assert isinstance(db.wal, WriteAheadLog)
        assert db.wal.next_number == db._stamp_cn()
        db.execute("INSERT INTO t VALUES (1)")
        assert db.wal.next_number == db._stamp_cn()
        assert db.wal.last_number == db.committed_cn
        db.close()
