"""Self-check: the repo's own artifacts must pass the analyzer.

Two sweeps:

1. the shipped artifact directory (``examples/artifacts``) must lint
   completely clean through the CLI path;
2. every SQL string literal embedded in ``examples/`` and
   ``benchmarks/`` sources must analyze without errors against a
   catalog assembled from all the DDL those same sources (and the
   bundled workloads) declare.  Unknown tables are tolerated — the
   catalog sweep is best-effort — but unknown columns, type mismatches
   and the rest of the ODB1xx family are not.
"""

import ast
import pathlib

from repro.analysis import (
    DiagnosticCollector,
    analyze_script,
    catalog_from_script,
)
from repro.analysis.cli import lint_directory

REPO = pathlib.Path(__file__).parent.parent
SCAN_DIRS = [REPO / "examples", REPO / "benchmarks"]
DDL_DIRS = SCAN_DIRS + [REPO / "src" / "repro" / "workloads"]

SQL_STARTERS = ("SELECT ", "INSERT ", "UPDATE ", "DELETE ",
                "CREATE ", "DROP ", "ALTER ")
#: errors tolerated in the embedded-SQL sweep: tables created at run
#: time by code we do not execute here resolve as unknown, and DDL
#: strings re-apply over the catalog the sweep itself assembled.
TOLERATED = {"ODB101"}
TOLERATED_MESSAGES = ("already exists",)
#: scripts whose whole point is to show broken SQL being caught.
EXCLUDED_FILES = {"artifact_linting.py"}


def _sql_strings(path):
    """(line, text) for every SQL-looking string constant in a file."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant) \
                or not isinstance(node.value, str):
            continue
        text = node.value.strip()
        if not text.upper().startswith(SQL_STARTERS):
            continue
        if "[Measures]" in text or "ON COLUMNS" in text:
            continue  # MDX, not SQL
        if text == text.upper():
            # All-caps fragments ("CREATE TABLE" used as a prefix
            # check) are not statements — real SQL in this repo always
            # names a lowercase table or column.
            continue
        yield node.lineno, node.value


def _global_catalog():
    """One catalog from all DDL strings the scanned sources declare."""
    ddl = []
    for directory in DDL_DIRS:
        for path in sorted(directory.rglob("*.py")):
            for _line, text in _sql_strings(path):
                if text.strip().upper().startswith(("CREATE", "ALTER")):
                    ddl.append(text if text.rstrip().endswith(";")
                               else text + ";")
    for path in sorted((REPO / "examples").rglob("*.sql")):
        ddl.append(path.read_text())
    catalog, _views = catalog_from_script("\n".join(ddl))
    return catalog


def test_shipped_artifact_directory_is_clean():
    collector = lint_directory(REPO / "examples" / "artifacts")
    assert not collector.has_errors(), collector.render()
    assert not collector.warnings, collector.render()


def test_embedded_sql_in_examples_and_benchmarks_is_clean():
    catalog = _global_catalog()
    collector = DiagnosticCollector()
    for directory in SCAN_DIRS:
        for path in sorted(directory.rglob("*.py")):
            if path.name in EXCLUDED_FILES:
                continue
            label = str(path.relative_to(REPO))
            for line, text in _sql_strings(path):
                analyze_script(text, catalog, collector,
                               source=f"{label}:{line}")
    offending = [
        diagnostic for diagnostic in collector.errors
        if diagnostic.code not in TOLERATED
        and not any(needle in diagnostic.message
                    for needle in TOLERATED_MESSAGES)
    ]
    assert not offending, "\n".join(str(d) for d in offending)


def test_sweep_actually_finds_sql():
    """Guard against the scanner silently matching nothing."""
    found = sum(1 for directory in SCAN_DIRS
                for path in directory.rglob("*.py")
                for _ in _sql_strings(path))
    assert found >= 10
