"""Tests for ORM many-to-one associations."""

import pytest

from repro.engine import Database
from repro.errors import MappingError
from repro.orm import (
    Entity,
    FieldSpec,
    ReferenceSpec,
    Session,
    create_schema,
    entity,
)


@entity(table="rel_customers", fields=[
    FieldSpec("id", "INTEGER", primary_key=True, generated=True),
    FieldSpec("name", "TEXT", nullable=False),
])
class Customer(Entity):
    pass


@entity(table="rel_orders",
        fields=[
            FieldSpec("id", "INTEGER", primary_key=True,
                      generated=True),
            FieldSpec("item", "TEXT"),
            FieldSpec("customer_id", "INTEGER"),
        ],
        references=[ReferenceSpec("customer", Customer,
                                  "customer_id")])
class Order(Entity):
    pass


@pytest.fixture
def db():
    database = Database()
    create_schema(database, [Customer, Order])
    return database


@pytest.fixture
def session(db):
    return Session(db)


class TestMappingValidation:
    def test_reference_column_must_exist(self):
        with pytest.raises(MappingError):
            @entity(table="bad",
                    fields=[FieldSpec("id", "INTEGER",
                                      primary_key=True)],
                    references=[ReferenceSpec("x", Customer, "ghost")])
            class Bad(Entity):
                pass

    def test_reference_name_cannot_clash_with_field(self):
        with pytest.raises(MappingError):
            @entity(table="bad",
                    fields=[FieldSpec("id", "INTEGER",
                                      primary_key=True),
                            FieldSpec("customer", "TEXT")],
                    references=[ReferenceSpec("customer", Customer,
                                              "id")])
            class Bad(Entity):
                pass


class TestAssociations:
    def test_assignment_before_key_generation(self, session, db):
        ada = session.add(Customer(name="ada"))
        order = session.add(Order(item="book"))
        order.customer = ada  # ada.id is still None here
        session.commit()
        assert db.query_value(
            "SELECT customer_id FROM rel_orders") == ada.id

    def test_lazy_load_in_fresh_session(self, session, db):
        ada = session.add(Customer(name="ada"))
        order = session.add(Order(item="book"))
        order.customer = ada
        session.commit()

        other = Session(db)
        loaded = other.find(Order).filter_by(item="book").one()
        assert loaded.customer.name == "ada"

    def test_lazy_load_uses_identity_map(self, session, db):
        ada = session.add(Customer(name="ada"))
        order = session.add(Order(item="book"))
        order.customer = ada
        session.commit()

        other = Session(db)
        loaded = other.find(Order).filter_by(item="book").one()
        assert loaded.customer is other.get(Customer, ada.id)

    def test_null_foreign_key_loads_none(self, session):
        order = session.add(Order(item="loose"))
        session.commit()
        assert order.customer is None

    def test_clearing_association(self, session, db):
        ada = session.add(Customer(name="ada"))
        order = session.add(Order(item="book"))
        order.customer = ada
        session.commit()
        order.customer = None
        session.commit()
        assert db.query_value(
            "SELECT customer_id FROM rel_orders") is None

    def test_reassignment_updates_fk(self, session, db):
        ada = session.add(Customer(name="ada"))
        bob = session.add(Customer(name="bob"))
        order = session.add(Order(item="book"))
        order.customer = ada
        session.commit()
        order.customer = bob
        session.commit()
        assert db.query_value(
            "SELECT customer_id FROM rel_orders") == bob.id

    def test_wrong_target_type_rejected(self, session):
        order = Order(item="book")
        with pytest.raises(MappingError):
            order.customer = Order(item="not-a-customer")

    def test_detached_instance_cannot_lazy_load(self, db):
        with Session(db) as setup:
            ada = setup.add(Customer(name="ada"))
            order = setup.add(Order(item="book"))
            order.customer = ada
        detached = Order(item="detached")
        detached.customer_id = 1
        with pytest.raises(MappingError):
            detached.customer

    def test_getter_prefers_assigned_object_before_flush(self, session):
        ada = session.add(Customer(name="ada"))
        order = session.add(Order(item="book"))
        order.customer = ada
        # Not flushed yet — ada has no key, but access works.
        assert order.customer is ada
