"""Tests for the service bus and the web layer."""

import pytest

from repro.errors import EsbError, HttpError, ReproError, WebError
from repro.esb import DEAD_LETTER_CHANNEL, Message, MessageBus
from repro.web import JsonResponse, Request, Response, WebApplication


class TestMessageBus:
    def test_service_activator_receives_message(self):
        bus = MessageBus()
        bus.create_channel("in")
        received = []
        bus.service_activator("in", lambda m: received.append(m.payload))
        bus.send("in", {"x": 1})
        assert received == [{"x": 1}]

    def test_duplicate_channel_rejected(self):
        bus = MessageBus()
        bus.create_channel("c")
        with pytest.raises(EsbError):
            bus.create_channel("c")

    def test_send_to_unknown_channel(self):
        bus = MessageBus()
        with pytest.raises(EsbError):
            bus.send("ghost", 1)

    def test_transformer_forwards_new_payload(self):
        bus = MessageBus()
        bus.create_channel("raw")
        bus.create_channel("clean")
        received = []
        bus.transformer("raw", lambda payload: payload.upper(), "clean")
        bus.service_activator("clean",
                              lambda m: received.append(m.payload))
        bus.send("raw", "hello")
        assert received == ["HELLO"]

    def test_transformer_requires_existing_output(self):
        bus = MessageBus()
        bus.create_channel("raw")
        with pytest.raises(EsbError):
            bus.transformer("raw", lambda p: p, "ghost")

    def test_router_dispatches_by_content(self):
        bus = MessageBus()
        for name in ("in", "big", "small"):
            bus.create_channel(name)
        big, small = [], []
        bus.router("in", lambda m: "big" if m.payload > 10 else "small")
        bus.service_activator("big", lambda m: big.append(m.payload))
        bus.service_activator("small", lambda m: small.append(m.payload))
        bus.send("in", 100)
        bus.send("in", 1)
        assert big == [100] and small == [1]

    def test_router_returning_none_drops_message(self):
        bus = MessageBus()
        bus.create_channel("in")
        bus.router("in", lambda m: None)
        bus.send("in", 1)  # no error, message consumed
        assert bus.dead_letters == []

    def test_wiretap_observes_without_consuming(self):
        bus = MessageBus()
        bus.create_channel("in")
        taps, received = [], []
        bus.wiretap("in", lambda m: taps.append(m.payload))
        bus.service_activator("in", lambda m: received.append(m.payload))
        bus.send("in", "x")
        assert taps == ["x"] and received == ["x"]

    def test_handler_error_goes_to_dead_letter(self):
        bus = MessageBus()
        bus.create_channel("in")

        def explode(message):
            raise ValueError("boom")

        bus.service_activator("in", explode)
        bus.send("in", "payload")
        assert len(bus.dead_letters) == 1
        dead = bus.dead_letters[0]
        assert dead.payload == "payload"
        assert dead.headers["error"] == "boom"
        assert dead.headers["failed_channel"] == "in"

    def test_dead_letter_channel_can_have_consumers(self):
        bus = MessageBus()
        bus.create_channel("in")
        handled = []
        bus.service_activator("in", lambda m: 1 / 0)
        bus.service_activator(DEAD_LETTER_CHANNEL,
                              lambda m: handled.append(m.headers["error"]))
        bus.send("in", 1)
        assert "division" in handled[0]

    def test_routing_loop_detected(self):
        bus = MessageBus()
        bus.create_channel("a")
        bus.create_channel("b")
        bus.router("a", lambda m: "b")
        bus.router("b", lambda m: "a")
        with pytest.raises(EsbError):
            bus.send("a", 1)

    def test_headers_survive_transformation(self):
        bus = MessageBus()
        bus.create_channel("raw")
        bus.create_channel("out")
        seen = []
        bus.transformer("raw", lambda p: p + 1, "out")
        bus.service_activator("out", lambda m: seen.append(m.headers))
        bus.send("raw", 1, headers={"tenant": "acme"})
        assert seen[0]["tenant"] == "acme"


class TestRequestResponse:
    def test_unsupported_method_rejected(self):
        with pytest.raises(HttpError):
            Request("BREW", "/coffee")

    def test_path_must_be_rooted(self):
        with pytest.raises(HttpError):
            Request("GET", "users")

    def test_headers_are_case_insensitive(self):
        request = Request("GET", "/", headers={"X-Token": "abc"})
        assert request.header("x-token") == "abc"
        assert request.header("missing", "dflt") == "dflt"

    def test_json_response_serializes_dates(self):
        import datetime
        response = JsonResponse({"d": datetime.date(2020, 1, 2)})
        assert response.json() == {"d": "2020-01-02"}
        assert response.headers["content-type"] == "application/json"

    def test_response_ok_flag(self):
        assert Response(204).ok
        assert not Response(404).ok


class TestWebApplication:
    @pytest.fixture
    def app(self):
        app = WebApplication("test")
        app.get("/ping", lambda r: JsonResponse({"pong": True}))
        app.get("/users/{id}",
                lambda r: JsonResponse({"id": r.path_params["id"]}))
        app.post("/users",
                 lambda r: JsonResponse(r.body, status=201))
        return app

    def test_simple_route(self, app):
        response = app.request("GET", "/ping")
        assert response.status == 200
        assert response.json() == {"pong": True}

    def test_path_parameters(self, app):
        response = app.request("GET", "/users/42")
        assert response.json() == {"id": "42"}

    def test_post_echoes_body(self, app):
        response = app.request("POST", "/users", body={"name": "ada"})
        assert response.status == 201
        assert response.json() == {"name": "ada"}

    def test_unknown_route_is_404(self, app):
        response = app.request("GET", "/nope")
        assert response.status == 404

    def test_method_mismatch_is_404(self, app):
        response = app.request("DELETE", "/ping")
        assert response.status == 404

    def test_duplicate_route_rejected(self, app):
        with pytest.raises(WebError):
            app.get("/ping", lambda r: Response())

    def test_repro_error_maps_to_400(self, app):
        def broken(request):
            raise ReproError("domain failure")
        app.get("/broken", broken)
        response = app.request("GET", "/broken")
        assert response.status == 400
        assert "domain failure" in response.json()["error"]

    def test_http_error_keeps_status(self, app):
        def forbidden(request):
            raise HttpError(403, "no")
        app.get("/secret", forbidden)
        assert app.request("GET", "/secret").status == 403

    def test_middleware_order_and_shortcircuit(self, app):
        calls = []

        def outer(request, next_handler):
            calls.append("outer-in")
            response = next_handler(request)
            calls.append("outer-out")
            return response

        def guard(request, next_handler):
            calls.append("guard")
            if request.header("x-block"):
                return Response(status=418)
            return next_handler(request)

        app.use(outer)
        app.use(guard)
        response = app.request("GET", "/ping")
        assert response.status == 200
        assert calls == ["outer-in", "guard", "outer-out"]

        blocked = app.request("GET", "/ping",
                              headers={"X-Block": "1"})
        assert blocked.status == 418

    def test_middleware_can_attach_context(self, app):
        def tenant_resolver(request, next_handler):
            request.tenant = request.header("x-tenant")
            return next_handler(request)

        app.use(tenant_resolver)
        app.get("/whoami",
                lambda r: JsonResponse({"tenant": r.tenant}))
        response = app.request("GET", "/whoami",
                               headers={"X-Tenant": "acme"})
        assert response.json() == {"tenant": "acme"}

    def test_access_log_records_requests(self, app):
        app.request("GET", "/ping")
        app.request("GET", "/nope")
        assert app.access_log == [("GET", "/ping", 200),
                                  ("GET", "/nope", 404)]
