"""Unit tests for the report linter and the artifact-lint CLI."""

import json

import pytest

from repro.analysis import (
    dataset_columns_from_sql,
    lint_dashboard,
)
from repro.analysis.cli import lint_directory, main
from repro.engine import Catalog, make_schema
from repro.reporting import DashboardDefinition


def revenue_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(make_schema("sales", [
        ("region", "TEXT"),
        ("amount", "REAL"),
    ]))
    return catalog


def revenue_dashboard() -> DashboardDefinition:
    definition = DashboardDefinition("revenue", "by region")
    definition.add_row(
        definition.chart("totals", "by-region", "bar",
                         "region", "total"),
        definition.table("totals", "detail", ["region", "total"],
                        sort_by="total"))
    return definition


SHAPES = {"totals": ["region", "total"]}


class TestReportLinter:
    def test_valid_dashboard_is_clean(self):
        collector = lint_dashboard(revenue_dashboard(), SHAPES)
        assert collector.codes() == []

    def test_unknown_dataset(self):
        collector = lint_dashboard(revenue_dashboard(), {})
        assert set(collector.codes()) == {"ODB401"}

    def test_chart_column_missing_from_dataset(self):
        shapes = {"totals": ["region"]}  # no 'total' column
        collector = lint_dashboard(revenue_dashboard(), shapes)
        assert "ODB402" in collector.codes()
        assert "total" in str(collector.by_code("ODB402")[0])

    def test_sort_column_outside_table_columns(self):
        definition = DashboardDefinition("d")
        definition.add_row(definition.table(
            "totals", "detail", ["region"], sort_by="total"))
        collector = lint_dashboard(definition, SHAPES)
        assert collector.codes() == ["ODB403"]

    def test_unknown_shape_skips_column_checks(self):
        collector = lint_dashboard(revenue_dashboard(),
                                   {"totals": None})
        assert collector.codes() == []

    def test_empty_dashboard_warns(self):
        collector = lint_dashboard(DashboardDefinition("empty"), {})
        assert collector.codes() == ["ODB404"]
        assert not collector.has_errors()

    def test_duplicate_element_names(self):
        definition = DashboardDefinition("d")
        definition.add_row(
            definition.table("totals", "twin", ["region"]),
            definition.table("totals", "twin", ["region"]))
        collector = lint_dashboard(definition, SHAPES)
        assert "ODB405" in collector.codes()

    def test_serialized_dict_form_is_accepted(self):
        collector = lint_dashboard(revenue_dashboard().to_dict(),
                                   SHAPES)
        assert collector.codes() == []

    def test_malformed_dict(self):
        collector = lint_dashboard({"rows": [[{"kind": "wat"}]]}, {})
        assert collector.codes() == ["ODB404"]


class TestDatasetColumnsFromSql:
    def test_shapes_from_sql(self):
        shapes = dataset_columns_from_sql(
            {"totals": "SELECT region, SUM(amount) AS total "
                       "FROM sales GROUP BY region"},
            revenue_catalog())
        assert shapes == {"totals": ["region", "total"]}

    def test_unparseable_sql_maps_to_none(self):
        shapes = dataset_columns_from_sql(
            {"bad": "SELECT FROM"}, revenue_catalog())
        assert shapes == {"bad": None}


@pytest.fixture
def artifact_dir(tmp_path):
    (tmp_path / "schema.sql").write_text(
        "CREATE TABLE sales (region TEXT, amount REAL);\n")
    (tmp_path / "queries.sql").write_text(
        "SELECT region, SUM(amount) AS total FROM sales "
        "GROUP BY region;\n")
    (tmp_path / "alerts.rules").write_text(
        'rule "notice"\nwhen\n    s: Signal(s.level > 1)\nthen\n'
        '    log("level " + s.name)\nend\n')
    (tmp_path / "revenue.json").write_text(json.dumps({
        "dashboard": revenue_dashboard().to_dict(),
        "datasets": {"totals": "SELECT region, SUM(amount) AS total "
                               "FROM sales GROUP BY region"},
    }))
    return tmp_path


class TestCli:
    def test_clean_directory_exits_zero(self, artifact_dir, capsys):
        assert main([str(artifact_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_schema_ddl_feeds_other_scripts(self, artifact_dir):
        collector = lint_directory(artifact_dir)
        assert collector.codes() == []

    def test_broken_artifacts_exit_one(self, artifact_dir, capsys):
        (artifact_dir / "broken.sql").write_text(
            "SELECT nope FROM sales;\n")
        (artifact_dir / "broken.json").write_text("{not json")
        assert main([str(artifact_dir)]) == 1
        out = capsys.readouterr().out
        assert "[ODB102]" in out
        assert "[ODB404]" in out
        assert "broken.sql" in out

    def test_dataset_sql_inside_dashboard_is_linted(
            self, artifact_dir, capsys):
        (artifact_dir / "revenue.json").write_text(json.dumps({
            "dashboard": revenue_dashboard().to_dict(),
            "datasets": {"totals": "SELECT region, SUM(ghost) "
                                   "AS total FROM sales "
                                   "GROUP BY region"},
        }))
        assert main([str(artifact_dir)]) == 1
        assert "[ODB102]" in capsys.readouterr().out

    def test_no_warnings_flag(self, artifact_dir, capsys):
        (artifact_dir / "view.sql").write_text(
            "CREATE VIEW v AS SELECT * FROM sales;\n")
        assert main([str(artifact_dir), "--no-warnings"]) == 0
        assert "ODB111" not in capsys.readouterr().out

    def test_usage_errors(self, tmp_path, capsys):
        assert main([]) == 2
        assert main([str(tmp_path / "missing")]) == 2
