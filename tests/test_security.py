"""Tests for the security substrate: store, authn, authz, ACLs."""

import pytest

from repro.engine import Database
from repro.errors import AccessDeniedError, AuthenticationError, SecurityError
from repro.security import (
    AccessDecisionManager,
    AclRegistry,
    AuthenticationManager,
    PasswordEncoder,
    Principal,
    SecurityStore,
    secured,
)


@pytest.fixture
def store():
    store = SecurityStore(Database())
    store.create_authority("REPORT_VIEW")
    store.create_authority("REPORT_EDIT")
    store.create_authority("ADMIN")
    store.create_role("viewer", ["REPORT_VIEW"])
    store.create_role("editor", ["REPORT_VIEW", "REPORT_EDIT"])
    store.create_role("admin", ["ADMIN"])
    store.create_group("analysts", roles=["editor"])
    return store


@pytest.fixture
def manager(store):
    clock = {"now": 1000.0}
    manager = AuthenticationManager(
        store, session_ttl_seconds=60,
        clock=lambda: clock["now"])
    manager._test_clock = clock
    return manager


class TestPasswordEncoder:
    def test_encode_then_match(self):
        encoder = PasswordEncoder(iterations=100)
        encoded = encoder.encode("s3cret")
        assert encoder.matches("s3cret", encoded)
        assert not encoder.matches("wrong", encoded)

    def test_salts_differ(self):
        encoder = PasswordEncoder(iterations=100)
        assert encoder.encode("x") != encoder.encode("x")

    def test_garbage_hash_never_matches(self):
        encoder = PasswordEncoder()
        assert not encoder.matches("x", "not-a-hash")
        assert not encoder.matches("x", "md5$1$aa$bb")


class TestSecurityStore:
    def test_role_bundles_authorities(self, store):
        store.create_user("ada", "hash", roles=["editor"])
        principal = store.resolve_principal("ada")
        assert principal.authorities == {"REPORT_VIEW", "REPORT_EDIT"}
        assert principal.roles == {"editor"}

    def test_group_membership_grants_roles(self, store):
        store.create_user("bob", "hash", groups=["analysts"])
        principal = store.resolve_principal("bob")
        assert principal.has_authority("REPORT_EDIT")
        assert principal.has_role("editor")

    def test_direct_and_group_roles_merge(self, store):
        store.create_user("cy", "hash", roles=["admin"],
                          groups=["analysts"])
        principal = store.resolve_principal("cy")
        assert principal.authorities == \
            {"ADMIN", "REPORT_VIEW", "REPORT_EDIT"}

    def test_tenant_carried_on_principal(self, store):
        store.create_user("dee", "hash", tenant="acme")
        assert store.resolve_principal("dee").tenant == "acme"

    def test_unknown_references_raise(self, store):
        with pytest.raises(SecurityError):
            store.create_user("x", "hash", roles=["ghost-role"])
        with pytest.raises(SecurityError):
            store.resolve_principal("nobody")

    def test_listings_and_search(self, store):
        store.create_user("ada", "h")
        store.create_user("adrian", "h")
        store.create_user("bob", "h")
        assert len(store.list_users()) == 3
        assert len(store.list_roles()) == 3
        assert len(store.list_groups()) == 1
        assert len(store.list_authorities()) == 3
        found = store.search_users("ad")
        assert [user.username for user in found] == ["ada", "adrian"]


class TestAuthentication:
    def test_login_returns_session_with_principal(self, manager):
        manager.register_user("ada", "pw", roles=["viewer"])
        session = manager.authenticate("ada", "pw")
        assert session.principal.has_authority("REPORT_VIEW")
        assert manager.validate(session.token).username == "ada"

    def test_bad_password_rejected(self, manager):
        manager.register_user("ada", "pw")
        with pytest.raises(AuthenticationError):
            manager.authenticate("ada", "wrong")

    def test_unknown_user_rejected(self, manager):
        with pytest.raises(AuthenticationError):
            manager.authenticate("ghost", "pw")

    def test_disabled_account_rejected(self, manager):
        manager.register_user("ada", "pw")
        manager.store.disable_user("ada")
        with pytest.raises(AuthenticationError):
            manager.authenticate("ada", "pw")

    def test_session_expires(self, manager):
        manager.register_user("ada", "pw")
        session = manager.authenticate("ada", "pw")
        manager._test_clock["now"] += 120  # past the 60s TTL
        with pytest.raises(AuthenticationError):
            manager.validate(session.token)

    def test_logout_invalidates(self, manager):
        manager.register_user("ada", "pw")
        session = manager.authenticate("ada", "pw")
        manager.logout(session.token)
        with pytest.raises(AuthenticationError):
            manager.validate(session.token)

    def test_unknown_token_rejected(self, manager):
        with pytest.raises(AuthenticationError):
            manager.validate("bogus")

    def test_active_session_count(self, manager):
        manager.register_user("ada", "pw")
        manager.authenticate("ada", "pw")
        manager.authenticate("ada", "pw")
        assert manager.active_sessions() == 2
        manager._test_clock["now"] += 120
        assert manager.active_sessions() == 0


def make_principal(**kwargs):
    defaults = {"user_id": 1, "username": "ada", "tenant": "acme",
                "roles": set(), "authorities": set()}
    defaults.update(kwargs)
    return Principal(**defaults)


class TestAuthorization:
    def test_check_authority(self):
        manager = AccessDecisionManager()
        principal = make_principal(authorities={"REPORT_VIEW"})
        manager.check_authority(principal, "REPORT_VIEW")
        with pytest.raises(AccessDeniedError):
            manager.check_authority(principal, "ADMIN")

    def test_check_any_authority(self):
        manager = AccessDecisionManager()
        principal = make_principal(authorities={"B"})
        manager.check_any_authority(principal, "A", "B")
        with pytest.raises(AccessDeniedError):
            manager.check_any_authority(principal, "A", "C")

    def test_tenant_wall(self):
        manager = AccessDecisionManager()
        principal = make_principal(tenant="acme")
        manager.check_tenant(principal, "acme")
        with pytest.raises(AccessDeniedError):
            manager.check_tenant(principal, "other")

    def test_platform_operator_crosses_tenants(self):
        manager = AccessDecisionManager()
        operator = make_principal(tenant=None)
        manager.check_tenant(operator, "any-tenant")

    def test_secured_decorator(self):
        @secured("REPORT_VIEW")
        def view_report(principal, report_id):
            return f"report-{report_id}"

        allowed = make_principal(authorities={"REPORT_VIEW"})
        denied = make_principal(authorities=set())
        assert view_report(allowed, 7) == "report-7"
        with pytest.raises(AccessDeniedError):
            view_report(denied, 7)

    def test_secured_requires_principal(self):
        @secured("X")
        def operation(value):
            return value

        with pytest.raises(SecurityError):
            operation(42)

    def test_secured_finds_keyword_principal(self):
        @secured("X")
        def operation(value, principal=None):
            return value

        principal = make_principal(authorities={"X"})
        assert operation(1, principal=principal) == 1


class TestAcl:
    def test_grant_check_revoke(self):
        acl = AclRegistry()
        principal = make_principal(username="ada")
        acl.grant("report", 7, "ada", "read")
        acl.check("report", 7, principal, "read")
        assert acl.permissions_for("report", 7, "ada") == {"read"}
        acl.revoke("report", 7, "ada", "read")
        with pytest.raises(AccessDeniedError):
            acl.check("report", 7, principal, "read")

    def test_grants_are_object_scoped(self):
        acl = AclRegistry()
        acl.grant("report", 7, "ada", "read")
        assert not acl.is_granted("report", 8, "ada", "read")
        assert not acl.is_granted("dashboard", 7, "ada", "read")

    def test_revoke_missing_grant_is_noop(self):
        acl = AclRegistry()
        acl.revoke("report", 1, "ada", "read")  # no error


class TestAccountLifecycle:
    def test_revoke_role(self, store):
        store.create_user("ada", "h", roles=["editor", "admin"])
        store.revoke_role("ada", "admin")
        principal = store.resolve_principal("ada")
        assert principal.roles == {"editor"}
        with pytest.raises(SecurityError):
            store.revoke_role("ada", "admin")

    def test_remove_from_group(self, store):
        store.create_user("bob", "h", groups=["analysts"])
        store.remove_from_group("bob", "analysts")
        assert store.resolve_principal("bob").roles == set()
        with pytest.raises(SecurityError):
            store.remove_from_group("bob", "analysts")

    def test_delete_user_removes_memberships(self, store):
        store.create_user("cy", "h", roles=["viewer"],
                          groups=["analysts"])
        store.delete_user("cy")
        assert store.find_user("cy") is None
        with pytest.raises(SecurityError):
            store.resolve_principal("cy")

    def test_password_change_flow(self, manager):
        manager.register_user("ada", "old-pw")
        manager.change_password("ada", "old-pw", "new-pw")
        with pytest.raises(AuthenticationError):
            manager.authenticate("ada", "old-pw")
        assert manager.authenticate("ada", "new-pw")

    def test_password_change_requires_old_password(self, manager):
        manager.register_user("ada", "old-pw")
        with pytest.raises(AuthenticationError):
            manager.change_password("ada", "wrong", "new-pw")

    def test_invalidate_user_sessions(self, manager):
        manager.register_user("ada", "pw")
        manager.register_user("bob", "pw")
        ada_session = manager.authenticate("ada", "pw")
        bob_session = manager.authenticate("bob", "pw")
        killed = manager.invalidate_user_sessions("ada")
        assert killed == 1
        with pytest.raises(AuthenticationError):
            manager.validate(ada_session.token)
        assert manager.validate(bob_session.token).username == "bob"
