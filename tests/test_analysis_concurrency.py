"""Golden negative-path tests for the lock-discipline analyzer.

Each test writes a small synthetic module that commits exactly one
concurrency sin and asserts the analyzer reports the exact ``ODBnnn``
code — and nothing else — so the diagnostic surface stays stable.
"""

import textwrap

from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.diagnostics import Severity


def run_on(tmp_path, source, name="synthetic.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_concurrency(path)


def codes(collector):
    return sorted(diag.code for diag in collector.diagnostics)


class TestLockOrderInversion:
    def test_conflicting_orders_are_odb501(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Transfer:
                def __init__(self):
                    self._accounts = threading.Lock()
                    self._audit = threading.Lock()

                def debit(self):
                    with self._accounts:
                        with self._audit:
                            pass

                def audit_sweep(self):
                    with self._audit:
                        with self._accounts:
                            pass
            """)
        assert codes(collector) == ["ODB501"]
        (diagnostic,) = collector.diagnostics
        assert diagnostic.severity is Severity.ERROR
        assert "Transfer._accounts" in diagnostic.message
        assert "Transfer._audit" in diagnostic.message
        # Both witness sites are named so the report is actionable.
        assert "debit" in diagnostic.message
        assert "audit_sweep" in diagnostic.message

    def test_consistent_order_is_clean(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Transfer:
                def __init__(self):
                    self._accounts = threading.Lock()
                    self._audit = threading.Lock()

                def debit(self):
                    with self._accounts:
                        with self._audit:
                            pass

                def credit(self):
                    with self._accounts:
                        with self._audit:
                            pass
            """)
        assert codes(collector) == []

    def test_inversion_through_method_call(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Ledger:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def outer(self):
                    with self._a:
                        self._log()

                def _log(self):
                    with self._b:
                        pass

                def reversed_outer(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        assert codes(collector) == ["ODB501"]


class TestGuardedMutation:
    SOURCE = """\
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {{}}  # guarded-by: _lock

            def put(self, key, value):
                {body}
        """

    def test_unguarded_write_is_odb502(self, tmp_path):
        collector = run_on(tmp_path, self.SOURCE.format(
            body="self._entries[key] = value"))
        assert codes(collector) == ["ODB502"]
        (diagnostic,) = collector.diagnostics
        assert diagnostic.severity is Severity.ERROR
        assert "_entries" in diagnostic.message
        assert "_lock" in diagnostic.message

    def test_guarded_write_is_clean(self, tmp_path):
        collector = run_on(tmp_path, self.SOURCE.format(
            body="with self._lock:\n"
                 "                    self._entries[key] = value"))
        assert codes(collector) == []

    def test_mutating_method_call_is_odb502(self, tmp_path):
        collector = run_on(tmp_path, self.SOURCE.format(
            body="self._entries.update({key: value})"))
        assert codes(collector) == ["ODB502"]

    def test_requires_contract_exempts_the_body(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lock

                def _put_locked(self, key, value):  # requires: _lock
                    self._entries[key] = value
            """)
        assert codes(collector) == []

    def test_init_writes_are_exempt(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lock
                    self._entries["seed"] = 1
            """)
        assert codes(collector) == []


class TestVirtualGuards:
    """The ``engine-exclusive`` discipline: a guard no class constructs.

    MVCC storage state is serialized by the *owning database's*
    exclusive lock, which TableStorage never sees.  The virtual guard
    keeps that contract checkable: annotated fields may only be
    mutated from ``__init__`` or from methods carrying the
    ``# requires: engine-exclusive`` caller contract.
    """

    SOURCE = """\
        class Storage:
            def __init__(self):
                self._versions = {{}}  # guarded-by: engine-exclusive

            def mutate(self, rowid, chain){contract}:
                self._versions[rowid] = chain
        """

    def test_mutation_without_contract_is_odb502(self, tmp_path):
        collector = run_on(tmp_path, self.SOURCE.format(contract=""))
        assert codes(collector) == ["ODB502"]
        (diagnostic,) = collector.diagnostics
        assert "_versions" in diagnostic.message
        assert "engine-exclusive" in diagnostic.message

    def test_requires_contract_satisfies_the_guard(self, tmp_path):
        collector = run_on(tmp_path, """\
            class Storage:
                def __init__(self):
                    self._versions = {}  # guarded-by: engine-exclusive

                def mutate(self, rowid, chain):  # requires: engine-exclusive
                    self._versions[rowid] = chain
            """)
        assert codes(collector) == []

    def test_virtual_guard_is_not_odb505(self, tmp_path):
        collector = run_on(tmp_path, """\
            class Storage:
                def __init__(self):
                    self._order = []  # guarded-by: engine-exclusive
            """)
        assert codes(collector) == []

    def test_unknown_hyphenated_guard_is_still_odb505(self, tmp_path):
        collector = run_on(tmp_path, """\
            class Storage:
                def __init__(self):
                    self._order = []  # guarded-by: gateway-exclusive
            """)
        assert codes(collector) == ["ODB505"]


class TestBlockingUnderLock:
    def test_fsync_under_exclusive_lock_is_odb503(self, tmp_path):
        collector = run_on(tmp_path, """\
            import os
            import threading

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, fd):
                    with self._lock:
                        os.fsync(fd)
            """)
        assert codes(collector) == ["ODB503"]
        (diagnostic,) = collector.diagnostics
        assert diagnostic.severity is Severity.WARNING
        assert "os.fsync" in diagnostic.message

    def test_sleep_under_shared_side_is_clean(self, tmp_path):
        # The shared side admits other readers; a sleeping reader is
        # wasteful but does not serialize the platform.
        collector = run_on(tmp_path, """\
            import time
            from repro.engine.locking import ReadWriteLock

            class Poller:
                def __init__(self):
                    self._lock = ReadWriteLock()

                def poll(self):
                    with self._lock.shared():
                        time.sleep(0.1)
            """)
        assert codes(collector) == []

    def test_sleep_under_rwlock_exclusive_is_odb503(self, tmp_path):
        collector = run_on(tmp_path, """\
            import time
            from repro.engine.locking import ReadWriteLock

            class Poller:
                def __init__(self):
                    self._lock = ReadWriteLock()

                def rebuild(self):
                    with self._lock.exclusive():
                        time.sleep(0.1)
            """)
        assert codes(collector) == ["ODB503"]

    def test_blocking_annotated_method_under_lock_is_odb503(
            self, tmp_path):
        # The exact pre-fix ShardMap shape: route_read held the global
        # map lock across shard.poll_replicas() — WAL disk I/O for one
        # shard stalling routing for all of them.  The ``# blocking:``
        # annotation makes that regression a lint failure.
        collector = run_on(tmp_path, """\
            import threading

            class Replica:
                def poll(self):  # blocking: tails the primary's on-disk WAL
                    return 0

            class ShardMapish:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.replica = Replica()

                def route_read(self):
                    with self._lock:
                        return self.replica.poll()
            """)
        assert codes(collector) == ["ODB503"]
        (diagnostic,) = collector.diagnostics
        assert "self.replica.poll" in diagnostic.message
        assert "tails the primary's on-disk WAL" in diagnostic.message

    def test_blocking_annotated_call_outside_lock_is_clean(
            self, tmp_path):
        # The post-fix shape: snapshot under the lock, poll outside.
        collector = run_on(tmp_path, """\
            import threading

            class Replica:
                def poll(self):  # blocking: tails the primary's on-disk WAL
                    return 0

            class ShardMapish:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.replicas = [Replica()]

                def route_read(self):
                    with self._lock:
                        replicas = list(self.replicas)
                    for replica in replicas:
                        replica.poll()
                    return len(replicas)
            """)
        assert codes(collector) == []

    def test_blocking_annotation_spans_files(self, tmp_path):
        # The annotation registry is analyzer-wide: a method declared
        # blocking in one module flags a locked call in another.
        from repro.analysis.concurrency import ConcurrencyAnalyzer

        provider = tmp_path / "replica.py"
        provider.write_text(textwrap.dedent("""\
            class Replica:
                def poll(self):  # blocking: disk I/O
                    return 0
            """))
        consumer = tmp_path / "router.py"
        consumer.write_text(textwrap.dedent("""\
            import threading

            class Router:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.replica = None

                def route(self):
                    with self._lock:
                        return self.replica.poll()
            """))
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_file(provider, "replica.py")
        analyzer.add_file(consumer, "router.py")
        collector = analyzer.run()
        assert codes(collector) == ["ODB503"]


class TestReacquisitionAndAnnotations:
    def test_nested_nonreentrant_lock_is_odb504(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Meter:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """)
        assert codes(collector) == ["ODB504"]
        (diagnostic,) = collector.diagnostics
        assert diagnostic.severity is Severity.ERROR
        assert "self-deadlock" in diagnostic.message

    def test_nested_rlock_is_clean(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Meter:
                def __init__(self):
                    self._lock = threading.RLock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """)
        assert codes(collector) == []

    def test_unknown_guard_name_is_odb505(self, tmp_path):
        collector = run_on(tmp_path, """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lokc
            """)
        assert codes(collector) == ["ODB505"]
        (diagnostic,) = collector.diagnostics
        assert diagnostic.severity is Severity.WARNING
        assert "_lokc" in diagnostic.message


class TestEntryPoints:
    def test_directory_and_file_inputs_agree(self, tmp_path):
        source = """\
            import threading

            class Meter:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        from_file = run_on(tmp_path, source)
        from_dir = analyze_concurrency(tmp_path)
        assert codes(from_file) == codes(from_dir) == ["ODB504"]

    def test_cli_concurrency_subcommand(self, tmp_path, capsys):
        from repro.analysis.cli import main

        (tmp_path / "bad.py").write_text(textwrap.dedent("""\
            import threading

            class Meter:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """))
        assert main(["concurrency", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ODB504" in out
        assert "1 error(s)" in out

    def test_cli_usage_errors(self, tmp_path, capsys):
        from repro.analysis.cli import main

        assert main(["concurrency"]) == 2
        assert main(["concurrency", str(tmp_path / "missing")]) == 2
