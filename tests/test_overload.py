"""Adaptive overload control: the battery behind DESIGN.md §8.

Covers the overload kernel (:mod:`repro.core.overload`) unit by unit
— QoS classification, the bounded priority admission queue, the AIMD
limiter, per-tenant retry budgets, the brownout ladder, hedged calls
— and the gateway/platform integration: deadline-in-queue aging
answered 504 without ever invoking a handler, Retry-After on every
shed/degraded/timeout response, the dispatch-log ring buffer, the
deterministic decision log (same seed ⇒ identical log), and zero
unhandled escapes under 30% fault injection with the limiter active.
"""

import threading

import pytest

from repro.core.gateway import RequestGateway
from repro.core.overload import (
    QOS_BATCH,
    QOS_INTERACTIVE,
    QOS_REPORTING,
    AIMDLimiter,
    AdmissionQueue,
    BrownoutController,
    LatencyTracker,
    OverloadController,
    RetryBudget,
    classify_request,
    hedged_call,
)
from repro.core.platform import OdbisPlatform
from repro.core.resilience import (
    Bulkhead,
    CircuitBreaker,
    Deadline,
    FakeClock,
    FaultInjector,
    RetryPolicy,
)
from repro.core.tenancy import TenancyMode, TenantManager
from repro.errors import BulkheadReleaseError, RetryExhaustedError
from repro.web import JsonResponse, WebApplication

pytestmark = pytest.mark.overload


# -- QoS classification -----------------------------------------------------------


class TestClassification:
    @pytest.mark.parametrize("method,path,sql,expected", [
        ("GET", "/tenants/acme/dashboards", None, QOS_INTERACTIVE),
        ("GET", "/tenants/acme/datasets", None, QOS_INTERACTIVE),
        ("POST", "/tenants/acme/mdx", None, QOS_INTERACTIVE),
        ("POST", "/tenants/acme/sql", "SELECT 1", QOS_INTERACTIVE),
        ("POST", "/tenants/acme/sql", "EXPLAIN UPDATE t SET a = 1",
         QOS_INTERACTIVE),
        ("GET", "/tenants/acme/reports", None, QOS_REPORTING),
        ("POST", "/tenants/acme/reports/r/run", None, QOS_REPORTING),
        ("POST", "/tenants/acme/sql", "INSERT INTO t VALUES (1)",
         QOS_BATCH),
        ("POST", "/tenants/acme/sql", "not really sql", QOS_BATCH),
        ("POST", "/tenants/acme/design", None, QOS_BATCH),
        ("GET", "/admin/health", None, QOS_BATCH),
        ("GET", "/ping", None, QOS_INTERACTIVE),
    ])
    def test_classes(self, method, path, sql, expected):
        assert classify_request(method, path, sql) == expected

    def test_gateway_read_only_delegates_to_overload(self):
        assert RequestGateway.read_only_statement("SELECT 1")
        assert not RequestGateway.read_only_statement(
            "DELETE FROM t")


# -- AIMD limiter -----------------------------------------------------------------


class TestAimdLimiter:
    def test_additive_increase_on_success(self):
        limiter = AIMDLimiter(initial_limit=4, clock=FakeClock())
        for _ in range(5):
            limiter.on_success(0.01)
        # increase/limit per success: ~one full window per unit gained.
        assert limiter.limit == 5

    def test_multiplicative_decrease_on_failure(self):
        limiter = AIMDLimiter(initial_limit=16, decrease=0.5,
                              clock=FakeClock())
        limiter.on_failure("5xx")
        assert limiter.limit == 8

    def test_floor_and_ceiling_hold(self):
        clock = FakeClock()
        limiter = AIMDLimiter(initial_limit=2, min_limit=2,
                              max_limit=4, clock=clock)
        for _ in range(100):
            limiter.on_failure()
            clock.advance(10.0)
        assert limiter.limit == 2
        for _ in range(1000):
            limiter.on_success(0.01)
        assert limiter.limit == 4

    def test_decrease_cooldown_bounds_a_burst_to_one_halving(self):
        clock = FakeClock()
        limiter = AIMDLimiter(initial_limit=16, decrease=0.5,
                              decrease_cooldown=1.0, clock=clock)
        for _ in range(5):  # one burst of misses, same instant
            limiter.on_failure()
        assert limiter.limit == 8  # halved once, not five times
        clock.advance(1.5)
        limiter.on_failure()
        assert limiter.limit == 4

    def test_latency_gradient_backs_off_before_errors(self):
        clock = FakeClock()
        limiter = AIMDLimiter(initial_limit=8,
                              gradient_tolerance=2.0,
                              baseline_smoothing=0.05,
                              observed_smoothing=0.5, clock=clock)
        for _ in range(50):
            limiter.on_success(0.01)  # establish the baseline
        before = limiter.limit
        clock.advance(10.0)
        for _ in range(20):
            limiter.on_success(0.2)  # 20x the baseline, no errors
        snap = limiter.snapshot()
        assert snap["gradient_decreases"] >= 1
        assert limiter.limit < before

    def test_try_acquire_enforces_the_limit(self):
        limiter = AIMDLimiter(initial_limit=2, clock=FakeClock())
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.try_acquire()


# -- priority admission queue -----------------------------------------------------


class TestAdmissionQueue:
    def test_poll_serves_by_class_then_fifo(self):
        queue = AdmissionQueue(8, clock=FakeClock())
        queue.offer(QOS_BATCH, payload="b1")
        queue.offer(QOS_INTERACTIVE, payload="i1")
        queue.offer(QOS_REPORTING, payload="r1")
        queue.offer(QOS_INTERACTIVE, payload="i2")
        order = [queue.poll().payload for _ in range(4)]
        assert order == ["i1", "i2", "r1", "b1"]
        assert queue.poll() is None

    def test_full_queue_displaces_newest_lower_class(self):
        queue = AdmissionQueue(2, clock=FakeClock())
        queue.offer(QOS_BATCH, payload="b1")
        queue.offer(QOS_BATCH, payload="b2")
        entry, displaced = queue.offer(QOS_INTERACTIVE, payload="i1")
        assert entry is not None
        assert displaced.payload == "b2"  # newest batch, not oldest
        assert queue.snapshot()["displaced"] == 1

    def test_full_queue_refuses_equal_or_lower_class(self):
        queue = AdmissionQueue(2, clock=FakeClock())
        queue.offer(QOS_INTERACTIVE, payload="i1")
        queue.offer(QOS_INTERACTIVE, payload="i2")
        entry, displaced = queue.offer(QOS_INTERACTIVE, payload="i3")
        assert entry is None and displaced is None
        entry, displaced = queue.offer(QOS_BATCH, payload="b1")
        assert entry is None and displaced is None
        assert queue.snapshot()["refused"] == 2

    def test_take_expired_harvests_aged_entries_in_order(self):
        clock = FakeClock()
        queue = AdmissionQueue(8, clock=clock)
        first, _ = queue.offer(
            QOS_INTERACTIVE, deadline=Deadline(1.0, clock=clock),
            payload="short")
        queue.offer(QOS_INTERACTIVE,
                    deadline=Deadline(10.0, clock=clock),
                    payload="long")
        clock.advance(2.0)
        expired = queue.take_expired()
        assert [entry.payload for entry in expired] == ["short"]
        assert expired[0] is first
        assert len(queue) == 1
        assert queue.poll().payload == "long"

    def test_estimated_drain_scales_with_depth(self):
        queue = AdmissionQueue(16, clock=FakeClock())
        for _ in range(8):
            queue.offer(QOS_BATCH)
        assert queue.estimated_drain(0.1, 4) == pytest.approx(0.2)
        assert queue.estimated_drain(0.1, 1) == pytest.approx(0.8)


# -- retry budgets ----------------------------------------------------------------


class TestRetryBudget:
    def test_spend_until_empty_then_denied(self):
        budget = RetryBudget(capacity=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.snapshot()["denied"] == 1

    def test_successes_refill_up_to_capacity(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=0.5)
        assert budget.try_spend()
        assert not budget.try_spend()
        budget.record_success()
        budget.record_success()
        assert budget.try_spend()
        for _ in range(100):
            budget.record_success()
        assert budget.tokens == pytest.approx(1.0)  # capped

    def test_retry_policy_stops_when_budget_is_exhausted(self):
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        policy = RetryPolicy(attempts=5, base_delay=0.0)
        budget = RetryBudget(capacity=2.0, refill_per_success=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            policy.call(always_down, clock=FakeClock(), budget=budget)
        # 1 first attempt + 2 budgeted retries, not 5 attempts.
        assert len(calls) == 3
        assert "retry budget exhausted" in str(info.value)

    def test_first_attempt_success_refills_the_budget(self):
        policy = RetryPolicy(attempts=3)
        budget = RetryBudget(capacity=10.0, refill_per_success=1.0,
                             initial=0.0)
        assert policy.call(lambda: "ok", clock=FakeClock(),
                           budget=budget) == "ok"
        assert budget.tokens == pytest.approx(1.0)

    def test_budgets_are_per_tenant_on_the_controller(self):
        controller = OverloadController(clock=FakeClock())
        acme = controller.budget("acme")
        assert controller.budget("acme") is acme
        assert controller.budget("globex") is not acme
        acme.try_spend(acme.capacity)
        assert controller.budget("globex").try_spend()


# -- brownout ladder --------------------------------------------------------------


class TestBrownoutLadder:
    def test_ladder_steps_up_in_contract_order(self):
        clock = FakeClock()
        brownout = BrownoutController(thresholds=(0.5, 0.75, 0.9),
                                      smoothing=1.0, clock=clock)
        assert brownout.level == 0
        assert brownout.allows_cache_fill()
        brownout.observe(0.6)
        assert brownout.stage == "no-cache-fill"
        assert not brownout.allows_cache_fill()
        assert not brownout.sheds(QOS_BATCH)
        brownout.observe(0.8)
        assert brownout.stage == "shed-batch"
        assert brownout.sheds(QOS_BATCH)
        assert not brownout.degrades(QOS_REPORTING)
        brownout.observe(0.95)
        assert brownout.stage == "degrade-reporting"
        assert brownout.degrades(QOS_REPORTING)
        # Interactive is never shed or degraded by the ladder.
        assert not brownout.sheds(QOS_INTERACTIVE)
        assert not brownout.degrades(QOS_INTERACTIVE)

    def test_step_down_needs_hysteresis_and_dwell(self):
        clock = FakeClock()
        brownout = BrownoutController(thresholds=(0.5, 0.75, 0.9),
                                      smoothing=1.0, hysteresis=0.1,
                                      min_dwell=5.0, clock=clock)
        brownout.observe(0.6)
        assert brownout.level == 1
        # Just under the threshold: inside the hysteresis band.
        brownout.observe(0.45)
        assert brownout.level == 1
        # Clear of the band but before the dwell elapses.
        brownout.observe(0.1)
        assert brownout.level == 1
        clock.advance(6.0)
        brownout.observe(0.1)
        assert brownout.level == 0

    def test_steps_down_one_rung_at_a_time(self):
        clock = FakeClock()
        brownout = BrownoutController(thresholds=(0.5, 0.75, 0.9),
                                      smoothing=1.0, min_dwell=1.0,
                                      clock=clock)
        brownout.observe(1.0)
        assert brownout.level == 3
        clock.advance(2.0)
        brownout.observe(0.0)
        assert brownout.level == 2
        clock.advance(2.0)
        brownout.observe(0.0)
        assert brownout.level == 1


# -- Retry-After and typed guard errors -------------------------------------------


class TestRetryAfterAndGuards:
    def test_breaker_retry_after_is_never_negative(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(4.999)
        assert breaker.retry_after() >= 0.0
        # At and past the open→half-open boundary: exactly 0.0, never
        # a negative remainder.
        clock.advance(0.002)
        assert breaker.retry_after() == 0.0
        clock.advance(1000.0)
        assert breaker.retry_after() == 0.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_unmatched_bulkhead_release_raises_typed_error(
            self, monkeypatch):
        # The typed-error path is the non-sanitized contract; pin the
        # env so a REPRO_SANITIZE=1 rerun still tests it.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        bulkhead = Bulkhead(2, name="t")
        with pytest.raises(BulkheadReleaseError):
            bulkhead.release()
        # The counter was not driven negative by the attempt.
        assert bulkhead.in_use == 0
        assert bulkhead.try_acquire()
        bulkhead.release()

    def test_sanitize_mode_floors_at_zero_and_reports(self, monkeypatch):
        from repro.analysis.concurrency.sanitizer import (
            default_sanitizer,
            reset_default_sanitizer,
        )

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        reset_default_sanitizer()
        try:
            bulkhead = Bulkhead(2, name="t")
            bulkhead.release()  # no raise under the sanitizer
            assert bulkhead.in_use == 0
            reports = default_sanitizer().reports
            assert any(report.kind == "bulkhead-overrelease"
                       for report in reports)
        finally:
            reset_default_sanitizer()


# -- hedged calls -----------------------------------------------------------------


class TestHedgedCalls:
    def test_fast_primary_wins_without_hedging(self):
        result, info = hedged_call(lambda: "fast", lambda: "backup",
                                   hedge_after=1.0)
        assert result == "fast"
        assert info == {"winner": "primary", "hedged": False}

    def test_slow_primary_loses_to_the_backup(self):
        release = threading.Event()

        def slow():
            release.wait(5.0)
            return "slow"

        result, info = hedged_call(slow, lambda: "backup",
                                   hedge_after=0.01)
        release.set()
        assert result == "backup"
        assert info["hedged"] and info["winner"] == "backup"

    def test_empty_budget_denies_the_hedge(self):
        release = threading.Event()
        backup_calls = []

        def slow():
            release.wait(5.0)
            return "slow"

        def backup():
            backup_calls.append(1)
            return "backup"

        budget = RetryBudget(capacity=1.0, initial=0.0)
        timer = threading.Timer(0.05, release.set)
        timer.start()
        result, info = hedged_call(slow, backup, hedge_after=0.01,
                                   budget=budget)
        timer.cancel()
        assert result == "slow"
        assert info.get("hedge_denied") is True
        assert backup_calls == []

    def test_hedge_spends_a_budget_token(self):
        release = threading.Event()

        def slow():
            release.wait(5.0)
            return "slow"

        budget = RetryBudget(capacity=2.0)
        result, _ = hedged_call(slow, lambda: "backup",
                                hedge_after=0.01, budget=budget)
        release.set()
        assert result == "backup"
        assert budget.tokens == pytest.approx(1.0)

    def test_failed_primary_falls_through_to_backup(self):
        def bad():
            raise OSError("replica gone")

        result, info = hedged_call(bad, lambda: "backup",
                                   hedge_after=0.01)
        assert result == "backup"

    def test_both_failing_raises_the_primary_error(self):
        def bad_primary():
            raise OSError("primary down")

        def bad_backup():
            raise ValueError("backup down")

        with pytest.raises(OSError):
            hedged_call(bad_primary, bad_backup, hedge_after=0.01)


# -- gateway integration ----------------------------------------------------------


def build_gateway(clock, controller, deadline_seconds=5.0,
                  handler=None, **kwargs):
    """A minimal gateway over one `/work` route with a call counter."""
    web = WebApplication("overload-test")
    calls = []

    def default_handler(request):
        calls.append(request.path)
        return JsonResponse({"ok": True})

    web.get("/work", handler or default_handler)
    gateway = RequestGateway(
        web, TenantManager(TenancyMode.SHARED), clock=clock,
        deadline_seconds=deadline_seconds, overload=controller,
        **kwargs)
    return gateway, calls


class TestDeadlineInQueueAging:
    def test_expired_queued_request_is_504_and_never_runs(self):
        clock = FakeClock()
        controller = OverloadController(
            clock=clock, queue_capacity=8, initial_limit=1,
            min_limit=1, max_limit=1)
        block = threading.Event()
        entered = threading.Event()
        calls = []

        def blocking_handler(request):
            calls.append(request.path)
            entered.set()
            block.wait(30)
            return JsonResponse({"ok": True})

        gateway, _ = build_gateway(clock, controller,
                                   deadline_seconds=2.0,
                                   handler=blocking_handler)
        try:
            running = gateway.submit("GET", "/work")
            assert entered.wait(10)
            queued = gateway.submit("GET", "/work")
            assert not queued.done()
            assert controller.queue.depths()[QOS_INTERACTIVE] == 1

            clock.advance(3.0)  # past the 2s deadline, still queued
            gateway.pump()
            response = queued.result(10)
            assert response.status == 504
            payload = response.json()
            assert payload["code"] == "deadline_exceeded"
            assert payload["retry_after"] >= 0.0
            assert "retry-after" in response.headers
            # The handler ran exactly once — for the blocking request,
            # never for the one that aged out in the queue.
            assert len(calls) == 1
            assert ("/work", "expired") in gateway.dispatch_log
        finally:
            block.set()
            running.result(10)
            gateway.shutdown()

    def test_aging_under_a_full_queue_ahead_of_it(self):
        clock = FakeClock()
        controller = OverloadController(
            clock=clock, queue_capacity=3, initial_limit=1,
            min_limit=1, max_limit=1)
        block = threading.Event()
        entered = threading.Event()
        calls = []

        def blocking_handler(request):
            calls.append(request.path)
            entered.set()
            block.wait(30)
            return JsonResponse({"ok": True})

        gateway, _ = build_gateway(clock, controller,
                                   deadline_seconds=2.0,
                                   handler=blocking_handler)
        try:
            running = gateway.submit("GET", "/work")
            assert entered.wait(10)
            queued = [gateway.submit("GET", "/work")
                      for _ in range(3)]  # fills the queue
            overflow = gateway.submit("GET", "/work")
            response = overflow.result(10)
            assert response.status == 503
            assert response.json()["code"] == "queue_full"
            assert response.json()["retry_after"] > 0.0

            clock.advance(3.0)
            gateway.pump()
            for future in queued:
                response = future.result(10)
                assert response.status == 504
                assert response.json()["code"] == "deadline_exceeded"
            assert len(calls) == 1  # only the blocker ever ran
        finally:
            block.set()
            running.result(10)
            gateway.shutdown()


class TestQueuePriorityAtTheGateway:
    def test_interactive_displaces_queued_batch(self):
        clock = FakeClock()
        controller = OverloadController(
            clock=clock, queue_capacity=1, initial_limit=1,
            min_limit=1, max_limit=1)
        block = threading.Event()
        entered = threading.Event()

        def blocking_handler(request):
            entered.set()
            block.wait(30)
            return JsonResponse({"ok": True})

        web = WebApplication("qos-test")
        web.get("/admin/work", blocking_handler)   # batch class
        web.get("/work", blocking_handler)         # interactive
        gateway = RequestGateway(
            web, TenantManager(TenancyMode.SHARED), clock=clock,
            overload=controller)
        try:
            running = gateway.submit("GET", "/admin/work")
            assert entered.wait(10)
            parked_batch = gateway.submit("GET", "/admin/work")
            interactive = gateway.submit("GET", "/work")
            displaced = parked_batch.result(10)
            assert displaced.status == 503
            assert displaced.json()["code"] == "queue_displaced"
            assert not interactive.done()
            assert controller.queue.depths()[QOS_INTERACTIVE] == 1
        finally:
            block.set()
            running.result(10)
            gateway.shutdown()
            assert interactive.result(10).status in (200, 503)


class TestDispatchLogRingBuffer:
    def test_ring_caps_length_but_counts_stay_exact(self):
        clock = FakeClock()
        gateway, calls = build_gateway(
            clock, None, deadline_seconds=None,
            dispatch_log_capacity=4)
        try:
            for _ in range(10):
                assert gateway.submit(
                    "GET", "/work").result(10).status == 200
            assert len(gateway.dispatch_log) == 4
            assert list(gateway.dispatch_log) == \
                [("/work", "accepted")] * 4
            assert gateway.decision_counts == {"accepted": 10}
            assert len(calls) == 10
        finally:
            gateway.shutdown()

    def test_log_keeps_the_tuple_shape(self):
        gateway, _ = build_gateway(FakeClock(), None,
                                   deadline_seconds=None)
        try:
            gateway.submit("GET", "/work").result(10)
            path, decision = gateway.dispatch_log[-1]
            assert path == "/work" and decision == "accepted"
        finally:
            gateway.shutdown()


class TestDeterministicDecisions:
    @staticmethod
    def run_seeded_simulation(seed):
        """A single-threaded seeded overload episode; returns the
        controller's decision log."""
        import random

        rng = random.Random(seed)
        clock = FakeClock()
        controller = OverloadController(
            clock=clock, queue_capacity=4, initial_limit=2,
            min_limit=1, max_limit=4)
        paths = [("/tenants/t/dashboards", None),
                 ("/tenants/t/reports", None),
                 ("/admin/usage", None),
                 ("/tenants/t/sql", "SELECT 1"),
                 ("/tenants/t/sql", "INSERT INTO t VALUES (1)")]
        inflight = []
        for step in range(200):
            clock.advance(0.01)
            path, sql = paths[rng.randrange(len(paths))]
            qos = controller.classify("GET", path, sql)
            controller.observe()
            if controller.brownout.sheds(qos):
                controller.record(path, qos, "brownout-shed")
            elif controller.brownout.degrades(qos):
                controller.record(path, qos, "brownout-degraded")
            elif controller.limiter.try_acquire():
                controller.record(path, qos, "accepted")
                inflight.append((path, qos))
            else:
                entry, displaced = controller.queue.offer(
                    qos, deadline=Deadline(0.5, clock=clock),
                    payload=path)
                if displaced is not None:
                    controller.record(displaced.payload,
                                      displaced.qos,
                                      "queue-displaced")
                controller.record(
                    path, qos,
                    "queued" if entry is not None else "queue-shed")
            # Slow completions: each step finishes at most one
            # in-flight request, so pressure builds.
            if inflight and rng.random() < 0.4:
                done_path, done_qos = inflight.pop(0)
                controller.limiter.release()
                latency = 0.02 + 0.08 * rng.random()
                controller.note_result(latency, rng.random() > 0.3)
            for expired in controller.queue.take_expired():
                controller.record(expired.payload, expired.qos,
                                  "expired")
        return list(controller.decision_log)

    def test_same_seed_same_decision_log(self):
        first = self.run_seeded_simulation(42)
        second = self.run_seeded_simulation(42)
        assert first == second
        assert len(first) >= 200  # every step decided something

    def test_decision_log_exercises_the_overload_paths(self):
        log = self.run_seeded_simulation(42)
        decisions = {decision for _, _, decision in log}
        assert "accepted" in decisions
        assert "queued" in decisions
        # Saturation showed up as at least one shedding decision.
        assert decisions & {"queue-shed", "queue-displaced",
                            "expired", "brownout-shed",
                            "brownout-degraded"}


class TestChaosWithLimiter:
    def test_no_unhandled_escapes_under_30pct_faults(self):
        faults = FaultInjector()
        faults.inject("gateway.handle", rate=0.3, seed=7)
        clock = FakeClock()
        controller = OverloadController(
            clock=clock, queue_capacity=16, initial_limit=4)
        web = WebApplication("chaos")
        web.get("/work", lambda r: JsonResponse({"ok": True}))
        gateway = RequestGateway(
            web, TenantManager(TenancyMode.SHARED), clock=clock,
            faults=faults, deadline_seconds=30.0,
            overload=controller)
        try:
            futures = [gateway.submit("GET", "/work")
                       for _ in range(120)]
            statuses = [future.result(30).status
                        for future in futures]
            # Every request resolved to a typed response — injected
            # faults became 500s, overload became 503/504, nothing
            # escaped as an exception.
            assert all(status in (200, 500, 503, 504)
                       for status in statuses)
            assert statuses.count(500) > 0  # the chaos really fired
            assert statuses.count(200) > 0
            snap = controller.limiter.snapshot()
            assert snap["failures"] > 0  # 500s fed the limiter
            assert snap["in_flight"] == 0  # every slot released
        finally:
            gateway.shutdown()


# -- platform integration ---------------------------------------------------------


TENANTS = ("acme", "globex")


@pytest.fixture
def platform():
    platform = OdbisPlatform(overload=True, deadline_seconds=30.0)
    for tenant in TENANTS:
        platform.provisioning.provision(tenant, tenant.title(),
                                        plan="team")
    yield platform
    platform.gateway.shutdown()


def login(platform, username, password="changeme"):
    response = platform.web.request(
        "POST", "/login",
        body={"username": username, "password": password})
    assert response.status == 200
    return {"x-auth-token": response.json()["token"]}


class TestPlatformIntegration:
    def force_brownout(self, platform, level):
        targets = {1: 0.6, 2: 0.8, 3: 0.95}
        brownout = platform.overload.brownout
        for _ in range(200):
            if brownout.level >= level:
                break
            brownout.observe(targets[level])
        assert brownout.level >= level

    def test_brownout_sheds_batch_but_serves_interactive(
            self, platform):
        headers = login(platform, "admin@acme")
        self.force_brownout(platform, 2)
        shed = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "CREATE TABLE t (a INTEGER)"}).result(30)
        assert shed.status == 503
        payload = shed.json()
        assert payload["code"] == "brownout_shed"
        assert payload["retry_after"] > 0.0
        assert shed.headers.get("retry-after") is not None
        interactive = platform.gateway.submit(
            "GET", "/tenants/acme/dashboards",
            headers=headers).result(30)
        assert interactive.status == 200
        assert ("/tenants/acme/sql", "brownout-shed") in \
            platform.gateway.dispatch_log

    def test_brownout_degrades_reporting_to_stale(self, platform):
        headers = login(platform, "admin@acme")
        # Warm the stale cache with a fresh reports listing.
        fresh = platform.gateway.submit(
            "GET", "/tenants/acme/reports", headers=headers).result(30)
        assert fresh.status == 200
        self.force_brownout(platform, 3)
        degraded = platform.gateway.submit(
            "GET", "/tenants/acme/reports", headers=headers).result(30)
        assert degraded.status == 200  # stale hit
        payload = degraded.json()
        assert payload["degraded"] is True
        assert payload["stale"] is True
        assert payload["data"] == fresh.json()
        assert ("/tenants/acme/reports", "brownout-degraded") in \
            platform.gateway.dispatch_log

    def test_brownout_stops_stale_cache_fills(self, platform):
        headers = login(platform, "admin@acme")
        self.force_brownout(platform, 1)
        assert not platform.overload.brownout.allows_cache_fill()
        response = platform.gateway.submit(
            "GET", "/tenants/acme/datasets",
            headers=headers).result(30)
        assert response.status == 200
        # Nothing was cached during the brownout.
        assert len(platform.gateway._stale_cache) == 0

    def test_health_report_exposes_overload_state(self, platform):
        platform.admin.create_account("root", "s3cret",
                                      roles=["platform-admin"])
        headers = login(platform, "root", "s3cret")
        response = platform.gateway.submit(
            "GET", "/admin/health", headers=headers).result(30)
        assert response.status == 200
        overload = response.json()["overload"]
        assert {"limiter", "queue", "brownout", "retry_budgets",
                "latency_p95"} <= set(overload)
        assert overload["limiter"]["limit"] >= 1
        assert overload["queue"]["capacity"] == \
            platform.overload.queue.capacity
        assert overload["brownout"]["stage"] == "normal"

    def test_bulkhead_shed_carries_retry_after(self):
        platform = OdbisPlatform(overload=True, bulkhead_capacity=1)
        try:
            platform.provisioning.provision("acme", "Acme",
                                            plan="team")
            headers = login(platform, "admin@acme")
            block = threading.Event()
            entered = threading.Event()

            def slow(request):
                entered.set()
                block.wait(30)
                return JsonResponse({"ok": True})

            platform.web.get("/tenants/{tenant}/slow", slow)
            first = platform.gateway.submit(
                "GET", "/tenants/acme/slow", headers=headers)
            assert entered.wait(10)
            shed = platform.gateway.submit(
                "GET", "/tenants/acme/dashboards",
                headers=headers).result(30)
            block.set()
            assert first.result(30).status == 200
            assert shed.status == 429
            assert shed.json()["code"] == "bulkhead_rejected"
            assert shed.json()["retry_after"] > 0.0
            assert "retry-after" in shed.headers
        finally:
            platform.gateway.shutdown()

    def test_breaker_degraded_response_carries_retry_after(self):
        clock = FakeClock()
        faults = FaultInjector()
        platform = OdbisPlatform(clock=clock, faults=faults,
                                 overload=True)
        try:
            platform.provisioning.provision("acme", "Acme",
                                            plan="team")
            headers = login(platform, "admin@acme")
            faults.inject("gateway.handle", rate=1.0, seed=1)
            for _ in range(platform.gateway.breaker_threshold):
                response = platform.gateway.submit(
                    "GET", "/tenants/acme/datasets",
                    headers=headers).result(30)
                assert response.status == 500
            degraded = platform.gateway.submit(
                "GET", "/tenants/acme/datasets",
                headers=headers).result(30)
            assert degraded.status == 503
            payload = degraded.json()
            assert payload["degraded"] is True
            assert payload["retry_after"] > 0.0
            assert "retry-after" in degraded.headers
        finally:
            faults.clear()
            platform.gateway.shutdown()


class TestSchedulerDeferral:
    def test_batch_shed_defers_etl_without_failure_pressure(self):
        from repro.etl import EtlJob, RowsSource, Schedule, Scheduler

        admitted = {"allow": False}
        scheduler = Scheduler(
            quarantine_after=2,
            admission=lambda owner: admitted["allow"])
        ran = []

        def rows():
            ran.append(1)
            return [{"x": 1}]

        from repro.etl.sources import CallableSource

        scheduler.add(EtlJob("tick", CallableSource(rows)),
                      Schedule(every_minutes=10), owner="acme")
        records = scheduler.advance(10)
        assert [record.status for record in records] == ["deferred"]
        assert ran == []  # the job never executed
        entry = scheduler._entries["tick"]
        assert entry.consecutive_failures == 0  # no quarantine creep
        assert not entry.quarantined
        assert scheduler.runs_by_owner() == {}  # deferrals don't count

        admitted["allow"] = True
        records = scheduler.advance(10)
        assert [record.status for record in records] == ["ok"]
        assert ran == [1]

    def test_platform_wires_brownout_into_the_scheduler(self, platform):
        assert platform.integration.scheduler.admission is not None
        assert platform.integration.scheduler.admission("acme")
        brownout = platform.overload.brownout
        for _ in range(200):
            if brownout.level >= 2:
                break
            brownout.observe(0.8)
        assert not platform.integration.scheduler.admission("acme")


class TestHedgedShardReads:
    def test_replica_read_route_carries_hedge_fields(self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                 shards=1, replicas_per_shard=1,
                                 staleness_budget=4, overload=True)
        try:
            platform.provisioning.provision("acme", "Acme",
                                            plan="team")
            headers = login(platform, "admin@acme")
            for sql in ("CREATE TABLE kpis "
                        "(id INTEGER PRIMARY KEY, v INTEGER)",
                        "INSERT INTO kpis VALUES (1, 41)"):
                response = platform.gateway.submit(
                    "POST", "/tenants/acme/sql", headers=headers,
                    body={"sql": sql}).result(30)
                assert response.status == 200, response.body
            read = platform.gateway.submit(
                "POST", "/tenants/acme/sql", headers=headers,
                body={"sql": "SELECT v FROM kpis"}).result(30)
            payload = read.json()
            assert payload["rows"] == [{"v": 41}]
            # The replica served through the hedged dispatch: the
            # route records whether a hedge fired and who won.
            assert "hedged" in payload and "winner" in payload
        finally:
            platform.close()

    def test_dispatch_read_hedged_falls_back_to_primary(self, tmp_path):
        from repro.core.sharding import ShardMap

        shard_map = ShardMap(tmp_path / "shards", shards=1,
                             replicas=1, fsync="off",
                             staleness_budget=10)
        shard = shard_map.all_shards()[0]
        shard.primary.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY)")
        shard.primary.execute("INSERT INTO t VALUES (7)")
        shard.poll_replicas()
        replica_handle = shard.read_handle(10)
        primary_handle = shard.write_handle()
        budget = RetryBudget(capacity=5.0)
        rows, route = shard_map.dispatch_read_hedged(
            replica_handle, primary_handle, "SELECT id FROM t",
            hedge_after=0.5, budget=budget)
        assert rows == [{"id": 7}]
        assert route["hedged"] is False
        assert route["winner"] == "primary"
        shard_map.close()
