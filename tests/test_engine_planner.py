"""Tests for the plan/compile layer: parity, EXPLAIN, and the plan cache.

The planner compiles supported SELECTs into positional-slot closures;
``Database(compile=False)`` is the ablation knob that forces the
interpreted executor.  Every behavioural test here runs the same SQL
through both paths and requires byte-identical results.
"""

import pytest

from repro.engine import Database
from repro.errors import EngineError


def seed(database):
    database.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary REAL)")
    database.execute(
        "INSERT INTO emp (id, name, dept, salary) VALUES "
        "(1, 'ada', 'eng', 100.0), "
        "(2, 'bob', 'eng', 90.0), "
        "(3, 'cy', 'ops', 80.0), "
        "(4, 'dee', NULL, NULL), "
        "(5, 'eve', 'ops', 80.0)")
    database.execute(
        "CREATE TABLE dept (code TEXT PRIMARY KEY, label TEXT)")
    database.execute(
        "INSERT INTO dept VALUES ('eng', 'Engineering'), "
        "('ops', 'Operations'), ('hr', 'People')")
    return database


@pytest.fixture
def db():
    return seed(Database("compiled"))


@pytest.fixture
def interpreted():
    return seed(Database("interpreted", compile=False))


PARITY_QUERIES = [
    ("SELECT * FROM emp", ()),
    ("SELECT name, salary FROM emp WHERE salary >= 80.0", ()),
    ("SELECT name FROM emp WHERE dept = ?", ("eng",)),
    ("SELECT name FROM emp WHERE salary > 50 AND dept = 'ops'", ()),
    ("SELECT e.name, d.label FROM emp e JOIN dept d "
     "ON e.dept = d.code ORDER BY e.id", ()),
    ("SELECT e.name, d.label FROM emp e LEFT JOIN dept d "
     "ON e.dept = d.code ORDER BY e.id", ()),
    ("SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp "
     "GROUP BY dept ORDER BY dept", ()),
    ("SELECT dept, AVG(salary) AS a FROM emp GROUP BY dept "
     "HAVING COUNT(*) > 1 ORDER BY dept", ()),
    ("SELECT DISTINCT salary FROM emp ORDER BY salary", ()),
    ("SELECT COUNT(*) FROM emp WHERE salary IS NULL", ()),
    ("SELECT name FROM emp WHERE salary BETWEEN 80 AND 95 "
     "ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept IN ('eng', 'hr')", ()),
    ("SELECT name FROM emp WHERE name LIKE 'a%'", ()),
    ("SELECT UPPER(name) AS shout FROM emp ORDER BY shout", ()),
    ("SELECT CASE WHEN salary >= 90 THEN 'high' ELSE 'low' END AS band "
     "FROM emp ORDER BY id", ()),
    ("SELECT 1 + 2 AS three", ()),
]


@pytest.mark.parametrize("sql,params", PARITY_QUERIES)
def test_compiled_matches_interpreted(db, interpreted, sql, params):
    compiled_result = db.execute(sql, params)
    interpreted_result = interpreted.execute(sql, params)
    assert compiled_result.columns == interpreted_result.columns
    assert compiled_result.rows == interpreted_result.rows


class TestOrderByEdges:
    """ORDER BY with NULLs and mixed directions, on both paths."""

    def both(self, db, interpreted, sql, params=()):
        compiled_rows = db.execute(sql, params).rows
        assert compiled_rows == interpreted.execute(sql, params).rows
        return compiled_rows

    def test_nulls_sort_first_ascending(self, db, interpreted):
        rows = self.both(
            db, interpreted,
            "SELECT name, salary FROM emp ORDER BY salary, name")
        assert rows[0] == ("dee", None)

    def test_nulls_sort_last_descending(self, db, interpreted):
        rows = self.both(
            db, interpreted,
            "SELECT name, salary FROM emp ORDER BY salary DESC, name")
        assert rows[-1] == ("dee", None)

    def test_mixed_asc_desc(self, db, interpreted):
        rows = self.both(
            db, interpreted,
            "SELECT dept, name FROM emp WHERE dept IS NOT NULL "
            "ORDER BY dept ASC, name DESC")
        assert rows == [("eng", "bob"), ("eng", "ada"),
                        ("ops", "eve"), ("ops", "cy")]

    def test_order_by_output_alias(self, db, interpreted):
        rows = self.both(
            db, interpreted,
            "SELECT name, salary * 2 AS twice FROM emp "
            "WHERE salary IS NOT NULL ORDER BY twice DESC")
        assert rows[0][0] == "ada"


class TestLimitOffsetEdges:
    def both(self, db, interpreted, sql):
        compiled_rows = db.execute(sql).rows
        assert compiled_rows == interpreted.execute(sql).rows
        return compiled_rows

    def test_limit_zero(self, db, interpreted):
        assert self.both(
            db, interpreted,
            "SELECT id FROM emp ORDER BY id LIMIT 0") == []

    def test_limit_beyond_rows(self, db, interpreted):
        assert len(self.both(
            db, interpreted,
            "SELECT id FROM emp ORDER BY id LIMIT 99")) == 5

    def test_offset_beyond_rows(self, db, interpreted):
        assert self.both(
            db, interpreted,
            "SELECT id FROM emp ORDER BY id LIMIT 10 OFFSET 99") == []

    def test_limit_offset_window(self, db, interpreted):
        assert self.both(
            db, interpreted,
            "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2") \
            == [(3,), (4,)]

    def test_offset_without_order(self, db, interpreted):
        assert len(self.both(
            db, interpreted,
            "SELECT id FROM emp LIMIT 3 OFFSET 1")) == 3


class TestExplain:
    def test_full_scan_before_index(self, db):
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT id, name FROM emp WHERE dept = 'eng'").rows]
        assert lines[0] == "scan emp emp: full scan (~5 rows)"
        assert lines[1] == "  filter [pushed]: dept = 'eng'"
        assert lines[-1] == "project: id, name"

    def test_index_scan_after_create_index(self, db):
        db.execute("CREATE INDEX idx_dept ON emp (dept)")
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT id, name FROM emp WHERE dept = 'eng'").rows]
        assert lines[0].startswith(
            "scan emp emp: index point scan idx_dept (dept = 'eng')")
        # The pushed predicate is still applied after the index probe.
        assert "  filter [pushed]: dept = 'eng'" in lines

    def test_hash_join_and_grouping(self, db):
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT d.label, COUNT(*) AS n FROM emp e "
            "JOIN dept d ON e.dept = d.code GROUP BY d.label "
            "ORDER BY n DESC LIMIT 2").rows]
        assert any(line.startswith("hash join INNER dept d: "
                                   "e.dept = d.code") for line in lines)
        assert "group by: d.label  aggregates: COUNT(*)" in lines
        assert "order by: n desc" in lines
        assert "limit: 2" in lines

    def test_view_reports_interpreted_fallback(self, db):
        db.execute("CREATE VIEW ops_emp AS "
                   "SELECT * FROM emp WHERE dept = 'ops'")
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT name FROM ops_emp").rows]
        assert lines == ["interpreted execution: view source 'ops_emp'"]

    def test_explain_union_labels_parts(self, db):
        lines = [row[0] for row in db.execute(
            "EXPLAIN SELECT name FROM emp UNION "
            "SELECT label FROM dept").rows]
        assert lines[0] == "union part 1:"
        assert "union part 2:" in lines

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(EngineError):
            db.execute("EXPLAIN INSERT INTO dept VALUES ('x', 'X')")

    def test_explain_works_with_compile_disabled(self, interpreted):
        lines = [row[0] for row in interpreted.execute(
            "EXPLAIN SELECT id FROM emp").rows]
        assert lines[0].startswith("scan emp emp: full scan")


class TestPlanCache:
    def test_repeated_statement_reuses_plan(self, db):
        sql = "SELECT name FROM emp WHERE id = ?"
        db.execute(sql, (1,))
        assert len(db._plan_cache) == 1
        (cached_entry,) = db._plan_cache.values()
        db.execute(sql, (2,))
        assert len(db._plan_cache) == 1
        assert next(iter(db._plan_cache.values())) is cached_entry

    def test_ddl_invalidates_plans(self, db):
        db.execute("SELECT name FROM emp")
        assert db._plan_cache
        db.execute("CREATE INDEX idx_salary ON emp (salary)")
        assert not db._plan_cache

    def test_alter_table_invalidates_plans(self, db):
        db.execute("SELECT name FROM emp")
        assert db._plan_cache
        db.execute("ALTER TABLE emp ADD COLUMN bonus REAL")
        assert not db._plan_cache
        # The recompiled plan sees the new column.
        assert db.query("SELECT bonus FROM emp WHERE id = 1") \
            == [{"bonus": None}]

    def test_rollback_of_create_table_invalidates_plans(self, db):
        db.execute("SELECT name FROM emp")
        db.execute("BEGIN")
        db.execute("CREATE TABLE temp_t (x INTEGER)")
        db.execute("SELECT name FROM emp")
        db.execute("ROLLBACK")
        assert not db._plan_cache

    def test_compile_disabled_never_plans(self, interpreted):
        interpreted.execute("SELECT name FROM emp")
        assert not interpreted._plan_cache

    def test_dml_results_identical_after_plan_reuse(self, db):
        sql = "SELECT COUNT(*) FROM emp"
        before = db.query_value(sql)
        db.execute("INSERT INTO emp (id, name) VALUES (6, 'fin')")
        assert db.query_value(sql) == before + 1


class TestFallbackParity:
    """Statements the planner refuses still behave identically."""

    def test_unknown_column_raises_same_error(self, db, interpreted):
        with pytest.raises(EngineError) as compiled_exc:
            db.execute("SELECT missing FROM emp")
        with pytest.raises(EngineError) as interpreted_exc:
            interpreted.execute("SELECT missing FROM emp")
        assert str(compiled_exc.value) == str(interpreted_exc.value)

    def test_ambiguous_column_raises_same_error(self, db, interpreted):
        sql = ("SELECT label FROM dept d1 JOIN dept d2 "
               "ON d1.code = d2.code")
        with pytest.raises(EngineError) as compiled_exc:
            db.execute(sql)
        with pytest.raises(EngineError) as interpreted_exc:
            interpreted.execute(sql)
        assert str(compiled_exc.value) == str(interpreted_exc.value)

    def test_view_query_matches(self, db, interpreted):
        for database in (db, interpreted):
            database.execute(
                "CREATE VIEW rich AS SELECT name, salary FROM emp "
                "WHERE salary >= 90")
        sql = "SELECT name FROM rich ORDER BY name"
        assert db.execute(sql).rows == interpreted.execute(sql).rows

    def test_missing_parameter_raises_same_error(self, db, interpreted):
        sql = "SELECT name FROM emp WHERE id = ?"
        with pytest.raises(EngineError) as compiled_exc:
            db.execute(sql, ())
        with pytest.raises(EngineError) as interpreted_exc:
            interpreted.execute(sql, ())
        assert str(compiled_exc.value) == str(interpreted_exc.value)
