"""Tests for the ODM package and semantic schema integration."""

import pytest

from repro.cwm import (
    OdmBuilder,
    RelationalBuilder,
    SemanticMatcher,
    cwm_metamodel,
)
from repro.mof import ModelExtent, read_xmi, write_xmi


@pytest.fixture(scope="module")
def metamodel():
    return cwm_metamodel()


@pytest.fixture
def extent(metamodel):
    return ModelExtent(metamodel, "semantic")


@pytest.fixture
def odm(extent):
    return OdmBuilder(extent)


class TestOntologyConstruction:
    def test_class_with_synonyms(self, odm):
        ontology = odm.ontology("commerce")
        revenue = odm.ont_class(ontology, "Revenue",
                                synonyms=["turnover", "sales_amount"])
        vocabulary = odm.vocabulary_of(revenue)
        assert {"revenue", "turnover", "sales_amount"} <= vocabulary

    def test_subclass_hierarchy(self, odm):
        ontology = odm.ontology("commerce")
        amount = odm.ont_class(ontology, "Amount")
        revenue = odm.ont_class(ontology, "Revenue")
        odm.subclass(revenue, amount)
        assert revenue.refs("subClassOf") == [amount]

    def test_equivalence_is_symmetric_and_merges_vocabulary(self, odm):
        ontology = odm.ontology("commerce")
        customer = odm.ont_class(ontology, "Customer",
                                 synonyms=["client"])
        patient = odm.ont_class(ontology, "Patient",
                                synonyms=["case"])
        odm.equivalent(customer, patient)
        assert "case" in odm.vocabulary_of(customer)
        assert "client" in odm.vocabulary_of(patient)

    def test_properties_and_individuals(self, odm, extent):
        ontology = odm.ontology("commerce")
        order = odm.ont_class(ontology, "Order")
        customer = odm.ont_class(ontology, "Customer")
        odm.datatype_property(order, "total", "float")
        odm.object_property(order, "placedBy", customer)
        odm.individual(customer, "acme-gmbh")
        assert extent.validate() == []

    def test_ontology_roundtrips_through_xmi(self, odm, extent,
                                             metamodel):
        ontology = odm.ontology("commerce")
        odm.ont_class(ontology, "Revenue", synonyms=["turnover"])
        restored = read_xmi(write_xmi(extent), metamodel)
        revenue = restored.find_by_name("OntClass", "Revenue")
        again = OdmBuilder(restored)
        assert "turnover" in again.vocabulary_of(revenue)


class TestSemanticMatcher:
    @pytest.fixture
    def tables(self, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("integration")
        source = relational.table(schema, "src_orders")
        relational.column(source, "turnover", "REAL")
        relational.column(source, "client", "TEXT")
        relational.column(source, "order_date", "DATE")
        relational.column(source, "mystery", "TEXT")
        target = relational.table(schema, "dw_sales")
        relational.column(target, "revenue", "REAL")
        relational.column(target, "customer", "TEXT")
        relational.column(target, "order_date", "DATE")
        return source, target

    @pytest.fixture
    def matcher(self, odm, tables):
        ontology = odm.ontology("commerce")
        odm.ont_class(ontology, "Revenue",
                      synonyms=["turnover", "sales_amount"])
        odm.ont_class(ontology, "Customer",
                      synonyms=["client", "buyer"])
        return SemanticMatcher(odm)

    def test_exact_name_match(self, matcher, tables):
        source, target = tables
        matches = matcher.match_tables(source, target)
        exact = [m for m in matches if m.reason == "exact-name"]
        assert [(m.source_column, m.target_column) for m in exact] == \
            [("order_date", "order_date")]
        assert exact[0].confidence == 1.0

    def test_synonym_match_crosses_spellings(self, matcher, tables):
        source, target = tables
        matches = {m.source_column: m
                   for m in matcher.match_tables(source, target)}
        assert matches["turnover"].target_column == "revenue"
        assert matches["turnover"].reason == "ontology-synonym"
        assert matches["turnover"].concept == "Revenue"
        assert matches["client"].target_column == "customer"

    def test_unmatched_columns_reported(self, matcher, tables):
        source, target = tables
        sources, targets = matcher.unmatched_columns(source, target)
        assert sources == ["mystery"]
        assert targets == []

    def test_equivalence_match(self, odm, extent):
        relational = RelationalBuilder(extent)
        schema = relational.schema("s")
        source = relational.table(schema, "a")
        relational.column(source, "patient", "TEXT")
        target = relational.table(schema, "b")
        relational.column(target, "customer", "TEXT")

        ontology = odm.ontology("bridge")
        patient = odm.ont_class(ontology, "Patient")
        customer = odm.ont_class(ontology, "Customer")
        odm.equivalent(patient, customer)
        matcher = SemanticMatcher(odm)
        matches = matcher.match_tables(source, target)
        assert matches[0].source_column == "patient"
        assert matches[0].target_column == "customer"
        assert matches[0].reason in ("ontology-synonym",
                                     "ontology-equivalence")

    def test_no_ontology_means_only_exact_matches(self, odm, tables):
        source, target = tables
        matcher = SemanticMatcher(odm)  # empty ontology
        matches = matcher.match_tables(source, target)
        assert all(m.reason == "exact-name" for m in matches)
        assert len(matches) == 1

    def test_matches_sorted_by_confidence(self, matcher, tables):
        source, target = tables
        matches = matcher.match_tables(source, target)
        confidences = [match.confidence for match in matches]
        assert confidences == sorted(confidences, reverse=True)


class TestMdsSemanticIntegration:
    """The ODM extension wired through the metadata service."""

    @pytest.fixture
    def platform(self):
        from repro import Database, OdbisPlatform

        platform = OdbisPlatform()
        context = platform.provisioning.provision("acme", "Acme")
        context.warehouse_db.execute(
            "CREATE TABLE dw_sales (revenue REAL, customer TEXT)")
        staging = Database("staging")
        staging.execute(
            "CREATE TABLE src (turnover REAL, client TEXT, junk TEXT)")
        platform.resources.register_database("acme", "staging", staging)
        platform.metadata.create_datasource(
            "acme", "staging", "repro://staging")
        return platform

    def test_mapping_via_tenant_ontology(self, platform):
        odm = platform.metadata.ontology("acme")
        ontology = odm.ontology("commerce")
        odm.ont_class(ontology, "Revenue", synonyms=["turnover"])
        odm.ont_class(ontology, "Customer", synonyms=["client"])
        matches = platform.metadata.suggest_column_mapping(
            "acme", "staging", "src", "warehouse", "dw_sales")
        mapping = {m.source_column: m.target_column for m in matches}
        assert mapping == {"turnover": "revenue",
                           "client": "customer"}

    def test_ontology_and_glossary_share_one_extent(self, platform):
        odm = platform.metadata.ontology("acme")
        glossary_builder = platform.metadata.glossary("acme")
        assert odm.extent is glossary_builder.extent

    def test_empty_ontology_gives_no_semantic_matches(self, platform):
        matches = platform.metadata.suggest_column_mapping(
            "acme", "staging", "src", "warehouse", "dw_sales")
        assert matches == []

    def test_reflection_preserves_column_types(self, platform):
        from repro.cwm import cwm_metamodel
        from repro.cwm.relational import (
            RelationalBuilder,
            reflect_physical_table,
        )
        from repro.mof import ModelExtent

        extent = ModelExtent(cwm_metamodel(), "r")
        warehouse = platform.tenants.context("acme").warehouse_db
        table = reflect_physical_table(extent, warehouse, "dw_sales")
        columns = {column.name: column.get("sqlType")
                   for column in RelationalBuilder.columns_of(table)}
        assert columns == {"revenue": "REAL", "customer": "TEXT"}

    def test_reflection_is_idempotent(self, platform):
        from repro.cwm import cwm_metamodel
        from repro.cwm.relational import reflect_physical_table
        from repro.mof import ModelExtent

        extent = ModelExtent(cwm_metamodel(), "r")
        warehouse = platform.tenants.context("acme").warehouse_db
        first = reflect_physical_table(extent, warehouse, "dw_sales")
        second = reflect_physical_table(extent, warehouse, "dw_sales")
        assert first is second
