"""Unit tests for the model and rule-DSL linters."""

import pytest

from repro.analysis import lint_cube_schema, lint_model, lint_rules
from repro.cwm import TransformationBuilder, cwm_metamodel
from repro.engine import Catalog, make_schema
from repro.mof import ModelExtent


@pytest.fixture
def extent():
    return ModelExtent(cwm_metamodel(), "under-test")


def codes(collector):
    return collector.codes()


class TestModelLinter:
    def test_clean_pipeline_has_no_errors(self, extent):
        builder = TransformationBuilder(extent)
        activity = builder.activity("nightly")
        task = builder.task("load")
        first = builder.step(activity, "extract", task)
        builder.step(activity, "transform", task, after=[first])
        collector = lint_model(extent)
        assert not collector.has_errors(), collector.render()

    def test_dangling_reference(self, extent):
        builder = TransformationBuilder(extent)
        other = ModelExtent(cwm_metamodel(), "elsewhere")
        foreign = other.create("Package", name="alien")
        builder.transformation("load", sources=[foreign])
        assert "ODB201" in codes(lint_model(extent))

    def test_required_reference_unset(self, extent):
        extent.create("TransformationStep", name="taskless")
        collector = lint_model(extent)
        assert "ODB205" in codes(collector)
        assert "task" in str(collector.by_code("ODB205")[0])

    def test_orphan_composite_child(self, extent):
        builder = TransformationBuilder(extent)
        task = builder.task("load")
        # A step never attached to any activity: composite-owned class
        # with no owner.
        step = extent.create("TransformationStep", name="lost")
        step.link("task", task)
        collector = lint_model(extent)
        assert "ODB202" in codes(collector)
        assert not collector.has_errors()  # orphans are warnings

    def test_conflicting_composite_owners(self, extent):
        builder = TransformationBuilder(extent)
        task = builder.task("load")
        first = builder.activity("one")
        second = builder.activity("two")
        step = builder.step(first, "shared", task)
        second.link("step", step)
        assert "ODB206" in codes(lint_model(extent))

    def test_step_precedence_cycle(self, extent):
        builder = TransformationBuilder(extent)
        activity = builder.activity("cyclic")
        task = builder.task("load")
        first = builder.step(activity, "s1", task)
        second = builder.step(activity, "s2", task, after=[first])
        first.link("precedence", second)
        collector = lint_model(extent)
        cycle_errors = collector.by_code("ODB203")
        assert cycle_errors
        assert "->" in cycle_errors[0].message

    def test_transformation_chain_cycle(self, extent):
        builder = TransformationBuilder(extent)
        staging = extent.create("Package", name="staging")
        mart = extent.create("Package", name="mart")
        builder.transformation("up", sources=[staging],
                               targets=[mart])
        builder.transformation("down", sources=[mart],
                               targets=[staging])
        assert "ODB203" in codes(lint_model(extent))

    def test_acyclic_chain_is_clean(self, extent):
        builder = TransformationBuilder(extent)
        staging = extent.create("Package", name="staging")
        mart = extent.create("Package", name="mart")
        builder.transformation("up", sources=[staging],
                               targets=[mart])
        assert "ODB203" not in codes(lint_model(extent))


class TestCubeSchemaLint:
    def catalog(self):
        catalog = Catalog()
        catalog.add_table(make_schema("fact_sales", [
            ("region_id", "INTEGER"),
            ("amount", "REAL"),
        ]))
        catalog.add_table(make_schema("dim_region", [
            ("region_id", "INTEGER"),
            ("country", "TEXT"),
        ]))
        return catalog

    def definition(self, **overrides):
        definition = {
            "name": "sales",
            "fact_table": "fact_sales",
            "measures": [{"name": "revenue", "column": "amount",
                          "aggregator": "sum"}],
            "dimensions": [{"name": "region", "table": "dim_region",
                            "key": "region_id",
                            "levels": ["country"]}],
        }
        definition.update(overrides)
        return definition

    def test_valid_cube_is_clean(self):
        collector = lint_cube_schema(self.definition(), self.catalog())
        assert codes(collector) == []

    def test_missing_fact_table(self):
        definition = self.definition(fact_table="fact_ghost")
        collector = lint_cube_schema(definition, self.catalog())
        assert codes(collector) == ["ODB204"]

    def test_missing_measure_column(self):
        definition = self.definition(
            measures=[{"name": "revenue", "column": "profit",
                       "aggregator": "sum"}])
        collector = lint_cube_schema(definition, self.catalog())
        assert "ODB204" in codes(collector)

    def test_missing_dimension_table_and_level(self):
        definition = self.definition(
            dimensions=[{"name": "region", "table": "dim_ghost",
                         "key": "region_id", "levels": ["country"]},
                        {"name": "geo", "table": "dim_region",
                         "key": "region_id", "levels": ["city"]}])
        collector = lint_cube_schema(definition, self.catalog())
        assert codes(collector) == ["ODB204", "ODB204"]


CLEAN_RULES = '''
rule "flag-high-usage"
when
    usage: Usage(amount > 1000)
then
    modify(usage, flagged=True)
    log("high usage: " + usage.tenant)
end
'''


class TestRuleLinter:
    def test_clean_rules_have_no_findings(self):
        assert codes(lint_rules(CLEAN_RULES)) == []

    def test_unbound_variable_in_action(self):
        text = ('rule "r"\nwhen\n    u: Usage()\nthen\n'
                '    modify(other, flagged=True)\nend')
        collector = lint_rules(text)
        assert codes(collector) == ["ODB301"]
        assert "other" in str(collector.errors[0])

    def test_forward_reference_in_condition(self):
        text = ('rule "r"\nwhen\n'
                '    a: Alert(a.tenant == u.tenant)\n'
                '    u: Usage()\nthen\n    retract(a)\nend')
        collector = lint_rules(text)
        assert codes(collector) == ["ODB301"]

    def test_bare_names_in_conditions_may_be_fact_attributes(self):
        text = ('rule "r"\nwhen\n    u: Usage(amount > 10)\nthen\n'
                '    retract(u)\nend')
        assert codes(lint_rules(text)) == []

    def test_duplicate_rule_name(self):
        duplicated = CLEAN_RULES + CLEAN_RULES
        collector = lint_rules(duplicated)
        assert "ODB302" in codes(collector)

    def test_shadowed_rule_despite_renamed_variable(self):
        text = ('rule "first"\nwhen\n    u: Usage(u.amount > 5)\n'
                'then\n    retract(u)\nend\n'
                'rule "second"\nwhen\n    x: Usage(x.amount > 5)\n'
                'then\n    log("still matches")\nend')
        collector = lint_rules(text)
        assert codes(collector) == ["ODB303"]
        assert not collector.has_errors()  # shadowing is a warning
        assert "first" in str(collector.warnings[0])

    def test_structural_syntax_error(self):
        collector = lint_rules('rule "broken"\nwhen\nthen\nend')
        # missing actions; scan stops at the structural problem
        assert "ODB304" in codes(collector)

    def test_bad_expression_syntax(self):
        text = ('rule "r"\nwhen\n    u: Usage(u.amount >)\nthen\n'
                '    retract(u)\nend')
        assert "ODB304" in codes(lint_rules(text))

    def test_retract_of_unbound_variable(self):
        text = ('rule "r"\nwhen\n    u: Usage()\nthen\n'
                '    retract(ghost)\nend')
        assert codes(lint_rules(text)) == ["ODB301"]

    def test_findings_carry_line_numbers(self):
        text = ('rule "r"\nwhen\n    u: Usage()\nthen\n'
                '    retract(ghost)\nend')
        collector = lint_rules(text)
        assert collector.errors[0].span.line == 5
