"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {script.stem for script in EXAMPLES}
    assert {"quickstart", "healthcare_dashboard",
            "model_driven_warehouse", "multi_tenant_saas",
            "semantic_integration", "olap_navigation"} <= names
