"""Performance smoke tests (``pytest -m perfsmoke``).

A fast sanity layer between the unit tests and the full benchmark
suite: a ~2-second check that plan compilation still beats the
interpreted executor on the two E12 microbenchmark shapes, plus one
end-to-end run of the analysis CLI over the example artifacts.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import Database

pytestmark = pytest.mark.perfsmoke

REPO_ROOT = Path(__file__).resolve().parent.parent


def build(fact_rows, compile=True):
    database = Database(compile=compile)
    database.execute(
        "CREATE TABLE dim (k INTEGER PRIMARY KEY, label TEXT)")
    database.executemany(
        "INSERT INTO dim VALUES (?, ?)",
        [(key, f"l{key % 10}") for key in range(1, 201)])
    database.execute("CREATE TABLE fact (k INTEGER, amount REAL)")
    database.executemany(
        "INSERT INTO fact VALUES (?, ?)",
        [(index % 200 + 1, float(index % 50))
         for index in range(fact_rows)])
    return database


def best_ms(fn, repeats=3):
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings) * 1000.0


@pytest.mark.parametrize("sql", [
    "SELECT d.label, SUM(f.amount) AS total FROM fact f "
    "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label",
    "SELECT k, amount FROM fact WHERE amount > 25.0 AND k < 150 "
    "ORDER BY amount",
])
def test_compiled_plans_still_fast(sql):
    """Compiled execution beats the interpreter with margin to spare.

    The full >= 3x claim lives in benchmarks/test_bench_e12_engine.py;
    this smoke check uses a small dataset and a loose 1.5x bar so it
    stays fast and never flakes on a loaded machine.
    """
    compiled = build(4_000)
    interpreted = build(4_000, compile=False)
    assert compiled.query(sql) == interpreted.query(sql)
    compiled_ms = best_ms(lambda: compiled.query(sql))
    interpreted_ms = best_ms(lambda: interpreted.query(sql))
    assert interpreted_ms > 1.5 * compiled_ms, (
        f"compiled {compiled_ms:.2f}ms vs "
        f"interpreted {interpreted_ms:.2f}ms")


def test_analysis_cli_runs_clean():
    """The static-analysis CLI still validates the example artifacts."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "") \
        if env.get("PYTHONPATH") else src
    completed = subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli",
         "examples/artifacts"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=60)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "0 error(s)" in completed.stdout
