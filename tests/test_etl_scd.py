"""Tests for SCD Type-2 dimension loading."""

import datetime

import pytest

from repro.engine import Database
from repro.errors import JobExecutionError, JobValidationError
from repro.etl import EtlJob, JobRunner, RowsSource
from repro.etl.scd import ScdType2Load


def day(offset):
    return datetime.date(2009, 1, 1) + datetime.timedelta(days=offset)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE dim_customer ("
        "row_key INTEGER PRIMARY KEY, "
        "customer_id INTEGER NOT NULL, "
        "name TEXT, city TEXT, "
        "valid_from DATE, valid_to DATE, is_current BOOLEAN)")
    return database


def load(db, rows, effective):
    job = EtlJob("scd", RowsSource(rows),
                 load=ScdType2Load(db, "dim_customer",
                                   natural_key=["customer_id"],
                                   tracked=["name", "city"],
                                   effective_date=effective))
    return JobRunner().run(job)


class TestScdValidation:
    def test_requires_key_and_tracked(self, db):
        with pytest.raises(JobValidationError):
            ScdType2Load(db, "dim_customer", [], ["name"], day(0))
        with pytest.raises(JobValidationError):
            ScdType2Load(db, "dim_customer", ["customer_id"], [],
                         day(0))

    def test_key_tracked_overlap_rejected(self, db):
        with pytest.raises(JobValidationError):
            ScdType2Load(db, "dim_customer", ["name"],
                         ["name", "city"], day(0))

    def test_contract_checked(self, db):
        db.execute("CREATE TABLE bad (customer_id INTEGER)")
        job = EtlJob("scd", RowsSource([{"customer_id": 1}]),
                     load=ScdType2Load(db, "bad", ["customer_id"],
                                       ["customer_id2"], day(0)))
        with pytest.raises(JobExecutionError):
            JobRunner().run(job)

    def test_row_without_natural_key_rejected(self, db):
        with pytest.raises(JobExecutionError):
            load(db, [{"name": "ada"}], day(0))


class TestScdSemantics:
    def test_initial_load_creates_current_versions(self, db):
        result = load(db, [
            {"customer_id": 1, "name": "ada", "city": "Paris"},
            {"customer_id": 2, "name": "bob", "city": "Lyon"},
        ], day(0))
        assert result.rows_written == 2
        rows = db.query("SELECT * FROM dim_customer ORDER BY row_key")
        assert all(row["is_current"] for row in rows)
        assert all(row["valid_to"] is None for row in rows)
        assert rows[0]["valid_from"] == day(0)

    def test_unchanged_row_writes_nothing(self, db):
        load(db, [{"customer_id": 1, "name": "ada", "city": "Paris"}],
             day(0))
        result = load(
            db, [{"customer_id": 1, "name": "ada", "city": "Paris"}],
            day(30))
        assert result.rows_written == 0
        assert db.query_value(
            "SELECT COUNT(*) FROM dim_customer") == 1

    def test_change_closes_old_and_opens_new_version(self, db):
        load(db, [{"customer_id": 1, "name": "ada", "city": "Paris"}],
             day(0))
        load(db, [{"customer_id": 1, "name": "ada", "city": "Nice"}],
             day(90))
        history = db.query(
            "SELECT city, valid_from, valid_to, is_current "
            "FROM dim_customer WHERE customer_id = 1 "
            "ORDER BY valid_from")
        assert len(history) == 2
        old, new = history
        assert old["city"] == "Paris"
        assert old["valid_to"] == day(90)
        assert old["is_current"] is False
        assert new["city"] == "Nice"
        assert new["valid_to"] is None
        assert new["is_current"] is True

    def test_full_history_across_three_changes(self, db):
        for offset, city in ((0, "Paris"), (10, "Lyon"), (20, "Nice")):
            load(db, [{"customer_id": 1, "name": "ada",
                       "city": city}], day(offset))
        versions = db.query(
            "SELECT city FROM dim_customer WHERE customer_id = 1 "
            "ORDER BY valid_from")
        assert [row["city"] for row in versions] == \
            ["Paris", "Lyon", "Nice"]
        current = db.query(
            "SELECT city FROM dim_customer "
            "WHERE customer_id = 1 AND is_current = TRUE")
        assert current == [{"city": "Nice"}]

    def test_surrogate_keys_are_dense_and_unique(self, db):
        load(db, [{"customer_id": 1, "name": "a", "city": "X"},
                  {"customer_id": 2, "name": "b", "city": "Y"}],
             day(0))
        load(db, [{"customer_id": 1, "name": "a", "city": "Z"}],
             day(5))
        keys = db.execute(
            "SELECT row_key FROM dim_customer ORDER BY row_key") \
            .column("row_key")
        assert keys == [1, 2, 3]

    def test_point_in_time_query(self, db):
        """The whole point of SCD2: as-of queries over history."""
        load(db, [{"customer_id": 1, "name": "ada", "city": "Paris"}],
             day(0))
        load(db, [{"customer_id": 1, "name": "ada", "city": "Nice"}],
             day(100))
        as_of = day(50)
        row = db.query(
            "SELECT city FROM dim_customer WHERE customer_id = 1 "
            "AND valid_from <= ? AND (valid_to IS NULL "
            "OR valid_to > ?)", (as_of, as_of))
        assert row == [{"city": "Paris"}]

    def test_changes_only_affect_their_own_key(self, db):
        load(db, [{"customer_id": 1, "name": "a", "city": "X"},
                  {"customer_id": 2, "name": "b", "city": "Y"}],
             day(0))
        load(db, [{"customer_id": 1, "name": "a", "city": "Z"}],
             day(5))
        other = db.query(
            "SELECT is_current FROM dim_customer "
            "WHERE customer_id = 2")
        assert other == [{"is_current": True}]
