"""Tests for ALTER TABLE and index-accelerated scans."""

import pytest

from repro.engine import Database
from repro.errors import CatalogError, ConstraintViolation, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    return database


class TestAlterTable:
    def test_add_column_with_default_backfills(self, db):
        db.execute("ALTER TABLE t ADD COLUMN score REAL DEFAULT 1.5")
        rows = db.query("SELECT score FROM t")
        assert [row["score"] for row in rows] == [1.5, 1.5]

    def test_add_nullable_column_backfills_null(self, db):
        db.execute("ALTER TABLE t ADD flag BOOLEAN")
        assert db.query("SELECT flag FROM t")[0]["flag"] is None

    def test_new_column_usable_in_dml(self, db):
        db.execute("ALTER TABLE t ADD COLUMN score REAL DEFAULT 0.0")
        db.execute("UPDATE t SET score = 9.0 WHERE id = 1")
        db.execute("INSERT INTO t (id, name, score) VALUES (3, 'c', 5.0)")
        assert db.query_value(
            "SELECT SUM(score) FROM t") == 14.0

    def test_add_not_null_without_default_rejected_when_rows_exist(
            self, db):
        with pytest.raises(ConstraintViolation):
            db.execute("ALTER TABLE t ADD COLUMN req TEXT NOT NULL")

    def test_add_not_null_with_default_allowed(self, db):
        db.execute(
            "ALTER TABLE t ADD COLUMN req TEXT NOT NULL DEFAULT 'x'")
        with pytest.raises(ConstraintViolation):
            db.execute(
                "INSERT INTO t (id, name, req) VALUES (9, 'z', NULL)")

    def test_add_unique_column_builds_index(self, db):
        db.execute("ALTER TABLE t ADD COLUMN code TEXT UNIQUE")
        db.execute("UPDATE t SET code = 'c1' WHERE id = 1")
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE t SET code = 'c1' WHERE id = 2")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE t ADD COLUMN name TEXT")

    def test_primary_key_addition_rejected_at_parse(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("ALTER TABLE t ADD COLUMN k INTEGER PRIMARY KEY")

    def test_alter_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("ALTER TABLE ghost ADD COLUMN x INTEGER")


class TestIndexScan:
    @pytest.fixture
    def big(self):
        database = Database()
        database.execute(
            "CREATE TABLE big (id INTEGER PRIMARY KEY, bucket INTEGER, "
            "payload TEXT)")
        database.executemany(
            "INSERT INTO big VALUES (?, ?, ?)",
            [(index, index % 50, f"p{index}") for index in range(500)])
        return database

    def test_pk_index_point_lookup(self, big):
        row = big.query("SELECT payload FROM big WHERE id = 123")
        assert row == [{"payload": "p123"}]

    def test_secondary_index_matches_full_scan(self, big):
        expected = big.query(
            "SELECT id FROM big WHERE bucket = 7 ORDER BY id")
        big.execute("CREATE INDEX big_bucket ON big (bucket)")
        indexed = big.query(
            "SELECT id FROM big WHERE bucket = 7 ORDER BY id")
        assert indexed == expected

    def test_index_with_extra_conjuncts_still_filters(self, big):
        big.execute("CREATE INDEX big_bucket ON big (bucket)")
        rows = big.query(
            "SELECT id FROM big WHERE bucket = 7 AND id < 100 "
            "ORDER BY id")
        assert [row["id"] for row in rows] == [7, 57]

    def test_parameterized_index_lookup(self, big):
        rows = big.query("SELECT payload FROM big WHERE id = ?", (42,))
        assert rows == [{"payload": "p42"}]

    def test_qualified_column_uses_index(self, big):
        rows = big.query("SELECT b.payload FROM big b WHERE b.id = 7")
        assert rows == [{"payload": "p7"}]

    def test_null_equality_never_uses_index_and_matches_nothing(
            self, big):
        big.execute("INSERT INTO big (id, bucket) VALUES (1000, NULL)")
        assert big.query("SELECT id FROM big WHERE bucket = NULL") == []

    def test_index_lookup_respects_updates(self, big):
        big.execute("CREATE INDEX big_bucket ON big (bucket)")
        big.execute("UPDATE big SET bucket = 99 WHERE id = 7")
        rows = big.query("SELECT id FROM big WHERE bucket = 99")
        assert [row["id"] for row in rows] == [7]
        remaining = big.query(
            "SELECT id FROM big WHERE bucket = 7 ORDER BY id")
        assert 7 not in [row["id"] for row in remaining]

    def test_index_lookup_respects_deletes(self, big):
        big.execute("DELETE FROM big WHERE id = 123")
        assert big.query("SELECT id FROM big WHERE id = 123") == []

    def test_index_scan_inside_transaction_rollback(self, big):
        big.begin()
        big.execute("DELETE FROM big WHERE id = 5")
        big.rollback()
        assert big.query("SELECT id FROM big WHERE id = 5") == \
            [{"id": 5}]
