"""Shard-supervision battery: the platform heals itself.

Marker ``supervise``.  Four properties carry the tentpole:

* the deadline-miss failure detector promotes a replica within the
  probe budget (MTTR measured in fake-clock seconds), and flap damping
  bounds how often it may try;
* every routed dispatch is epoch-fenced: a handle resolved before a
  promotion fails with a typed, retryable
  :class:`~repro.errors.StaleEpochError` — including the straggler
  that raced the fence itself and would otherwise surface a log-level
  ``WalError`` (or worse, a silent commit);
* the anti-entropy auditor catches *silent* divergence — commit
  numbers agree, content does not — quarantines the replica out of
  routing, and heals it via checkpoint + forced snapshot resync;
* the whole loop is deterministic: same seed, same fault schedule,
  same tick cadence ⇒ identical incident log, promotion order and
  health report, with zero unhandled escapes.
"""

import pytest

from repro.core import OdbisPlatform
from repro.core.resilience import FakeClock, FaultInjector
from repro.core.sharding import ShardMap, content_checksum
from repro.core.supervision import ShardSupervisor
from repro.errors import (
    ShardError,
    StaleEpochError,
    SupervisionError,
    WalError,
)

pytestmark = pytest.mark.supervise


def make_map(tmp_path, clock, faults, shards=1, replicas=1):
    return ShardMap(tmp_path / "shards", shards=shards,
                    replicas=replicas, fsync="off", clock=clock,
                    faults=faults)


def seed(shard, rows=5):
    shard.primary.execute(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, note TEXT)")
    for index in range(rows):
        shard.primary.execute(
            "INSERT INTO events VALUES (?, ?)", (index, f"n-{index}"))
    return shard


def kill_primary(shard):
    """The failure the detector exists for: the primary's log dies
    (fenced / crashed holder) while the process stays up."""
    shard.primary.wal.close()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def faults():
    return FaultInjector()


class TestFailureDetector:
    def test_healthy_shards_never_escalate(self, tmp_path, clock,
                                           faults):
        shard_map = make_map(tmp_path, clock, faults, shards=2)
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=0)
        reports = supervisor.run(4)
        assert all(not report["incidents"] for report in reports)
        assert supervisor.incidents == []
        health = supervisor.health()
        assert health["ticks"] == 4
        assert all(watch["status"] == "healthy"
                   and watch["misses"] == 0
                   for watch in health["watches"].values())
        shard_map.close()

    def test_dead_primary_is_promoted_within_the_probe_budget(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        shard.replicas[0].poll()
        kill_primary(shard)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, probe_interval=1.0,
            miss_threshold=3, audit_every=0)
        supervisor.run(4)
        (incident,) = supervisor.incidents
        assert incident.outcome == "promoted"
        assert incident.reason == "probe-misses"
        assert incident.misses == supervisor.miss_threshold
        # Detected at the first miss (t=0), promoted on the tick the
        # threshold tripped (t=2): MTTR is exact in fake seconds and
        # inside the (threshold x interval) budget.
        assert incident.mttr == 2.0
        assert incident.mttr <= (supervisor.miss_threshold
                                 * supervisor.probe_interval)
        assert incident.from_generation == 0
        assert incident.to_generation == 1
        # The promoted primary serves and accepts writes.
        assert shard.generation == 1
        shard.primary.execute(
            "INSERT INTO events VALUES (99, 'after-heal')")
        assert shard.primary.query(
            "SELECT COUNT(*) AS c FROM events") == [{"c": 6}]
        shard_map.close()

    def test_injected_probe_faults_count_as_misses(self, tmp_path,
                                                   clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        seed(shard_map.shard("shard-0")).replicas[0].poll()
        faults.inject("supervision.probe.shard-0", limit=2)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, miss_threshold=2,
            audit_every=0)
        supervisor.run(3)
        (incident,) = supervisor.incidents
        assert incident.outcome == "promoted"
        assert incident.misses == 2
        shard_map.close()

    def test_transient_misses_below_threshold_reset(self, tmp_path,
                                                    clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        faults.inject("supervision.probe.shard-0", limit=2)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, miss_threshold=3,
            audit_every=0)
        supervisor.run(4)  # 2 misses, then healthy probes
        assert supervisor.incidents == []
        watch = supervisor.health()["watches"]["shard-0"]
        assert watch["status"] == "healthy"
        assert watch["misses"] == 0
        shard_map.close()

    def test_slow_probe_misses_the_deadline(self, tmp_path, clock,
                                            faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = shard_map.shard("shard-0")
        original = shard.probe

        def slow_probe():
            clock.advance(supervisor.probe_timeout + 0.1)
            return original()

        shard.probe = slow_probe
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, miss_threshold=2,
            audit_every=0)
        report = supervisor.tick()
        probe = report["probes"]["shard-0"]
        assert probe["ok"] is False
        assert "deadline" in probe["error"]
        shard_map.close()

    def test_open_breaker_is_an_immediate_suspect(self, tmp_path,
                                                  clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        shard.replicas[0].poll()
        shard.breaker.record_failure()  # threshold 1: opens
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=0)
        supervisor.tick()
        (incident,) = supervisor.incidents
        assert incident.reason == "breaker-open"
        assert incident.outcome == "promoted"
        assert incident.misses == 0  # no miss counting needed
        shard_map.close()

    def test_config_is_validated(self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        with pytest.raises(SupervisionError):
            ShardSupervisor(shard_map, probe_interval=0.0)
        with pytest.raises(SupervisionError):
            ShardSupervisor(shard_map, miss_threshold=0)
        with pytest.raises(SupervisionError):
            ShardSupervisor(shard_map, max_failovers_per_window=0)
        shard_map.close()


class TestFlapDamping:
    def test_detector_records_damped_incidents_without_escaping(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults, replicas=2)
        shard = seed(shard_map.shard("shard-0"))
        for replica in shard.replicas:
            replica.poll()
        kill_primary(shard)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, miss_threshold=1,
            min_failover_interval=10.0, audit_every=0)
        supervisor.tick()  # t=0: miss -> promoted (gen 1)
        kill_primary(shard)  # the promoted primary dies too
        clock.advance(1.0)
        supervisor.tick()  # t=1: miss -> damped, 9s early
        outcomes = [incident.outcome
                    for incident in supervisor.incidents]
        assert outcomes == ["promoted", "damped"]
        damped = supervisor.incidents[-1]
        assert "damping" in damped.error
        assert supervisor.health()["watches"]["shard-0"]["status"] \
            == "damped"
        # Once the interval has passed the next attempt is admitted.
        clock.advance(10.0)
        supervisor.tick()
        assert supervisor.incidents[-1].outcome == "promoted"
        assert shard.generation == 2
        shard_map.close()

    def test_manual_failover_raises_typed_damping_errors(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults, replicas=2)
        seed(shard_map.shard("shard-0")).replicas[0].poll()
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults,
            min_failover_interval=30.0, audit_every=0)
        assert supervisor.failover("shard-0").outcome == "promoted"
        with pytest.raises(SupervisionError) as excinfo:
            supervisor.failover("shard-0")
        assert excinfo.value.reason == "flap-damped"
        assert excinfo.value.shard == "shard-0"
        assert excinfo.value.retry_after > 0
        shard_map.close()

    def test_window_budget_exhausts_even_across_failed_attempts(
            self, tmp_path, clock, faults):
        # Zero replicas: every attempt fails -- and still burns the
        # window budget, because a failing failover is exactly the
        # flapping the damper exists to stop.
        shard_map = make_map(tmp_path, clock, faults, replicas=0)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults,
            min_failover_interval=0.0, max_failovers_per_window=2,
            failover_window=300.0, audit_every=0)
        for _ in range(2):
            incident = supervisor.failover("shard-0")
            assert incident.outcome == "failed"
            assert "no replica" in incident.error
        with pytest.raises(SupervisionError) as excinfo:
            supervisor.failover("shard-0")
        assert excinfo.value.reason == "window-exhausted"
        assert excinfo.value.retry_after > 0
        shard_map.close()


class TestEpochFencing:
    def test_stale_write_handle_is_typed_and_attributed(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        shard.replicas[0].poll()
        tenant = "acme"
        handle = shard_map.write_handle(tenant)
        assert handle.generation == 0
        shard_map.failover("shard-0")
        with pytest.raises(StaleEpochError) as excinfo:
            shard_map.dispatch_write(
                handle, "INSERT INTO events VALUES (99, 'late')")
        assert excinfo.value.carried_generation == 0
        assert excinfo.value.current_generation == 1
        # The straggler's row never landed anywhere.
        assert shard.primary.query(
            "SELECT COUNT(*) AS c FROM events WHERE id = 99") \
            == [{"c": 0}]
        shard_map.close()

    def test_stale_read_handle_is_typed(self, tmp_path, clock,
                                        faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        shard.replicas[0].poll()
        handle = shard_map.read_handle("acme")
        shard_map.failover("shard-0")
        with pytest.raises(StaleEpochError):
            shard_map.dispatch_read(handle, "SELECT 1 AS one")
        shard_map.close()

    def test_wal_failure_without_promotion_stays_a_wal_error(
            self, tmp_path, clock, faults):
        # A closed log with an *unchanged* epoch is an engine fault,
        # not a routing race: the dispatch must not mislabel it.
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        handle = shard_map.write_handle("acme")
        kill_primary(shard)
        with pytest.raises(WalError):
            shard_map.dispatch_write(
                handle, "INSERT INTO events VALUES (99, 'x')")
        shard_map.close()

    def test_wal_error_racing_the_fence_converts_to_stale_epoch(
            self, tmp_path, clock, faults):
        # The exact straggler interleaving: the epoch check passes,
        # then the fence lands before the commit.  The WalError is
        # re-diagnosed as a stale epoch, with the log failure chained
        # as its cause.
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        handle = shard_map.write_handle("acme")

        def racing_execute(sql, params=()):
            with shard._lock:
                shard.generation += 1
            raise WalError("write-ahead log is closed")

        handle.database.execute = racing_execute
        with pytest.raises(StaleEpochError) as excinfo:
            shard_map.dispatch_write(
                handle, "INSERT INTO events VALUES (99, 'x')")
        assert isinstance(excinfo.value.__cause__, WalError)
        shard_map.close()

    def test_promotion_window_fences_routing(self, tmp_path, clock,
                                             faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        shard.replicas[0].poll()
        with shard._lock:
            shard._promoting = True
        try:
            with pytest.raises(StaleEpochError):
                shard.write_handle()
            with pytest.raises(StaleEpochError):
                shard.read_handle(0)
            with pytest.raises(StaleEpochError):
                shard.check_epoch(shard.generation)
            with pytest.raises(ShardError):
                shard.probe()
        finally:
            with shard._lock:
                shard._promoting = False
        shard_map.close()


class TestStragglerThroughGateway:
    """Satellite (c): the end-to-end regression.  A writer that
    resolved its route before a failover and dispatches through the
    gateway during/after the window gets a typed, retryable 503 —
    never a silent commit, never an unhandled ``WalError``."""

    def login(self, platform, tenant):
        response = platform.web.request(
            "POST", "/login",
            body={"username": f"admin@{tenant}",
                  "password": "changeme"})
        assert response.status == 200
        return {"x-auth-token": response.json()["token"]}

    def test_straggler_write_gets_retryable_503_not_silent_commit(
            self, tmp_path):
        platform = OdbisPlatform(data_dir=tmp_path, fsync="off",
                                 shards=1, replicas_per_shard=1)
        platform.provisioning.provision("acme", "Acme", plan="team")
        headers = self.login(platform, "acme")
        created = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "CREATE TABLE kpis "
                         "(id INTEGER PRIMARY KEY, v INTEGER)"}
        ).result(30)
        assert created.status == 200, created.body

        # The straggler resolves its route, then the shard fails over.
        stale = platform.shards.write_handle("acme")
        shard_id = platform.shards.place("acme")
        platform.failover(shard_id)
        resolve = platform.shards.write_handle
        platform.shards.write_handle = lambda tenant: stale
        try:
            response = platform.gateway.submit(
                "POST", "/tenants/acme/sql", headers=headers,
                body={"sql": "INSERT INTO kpis VALUES (1, 41)"}
            ).result(30)
        finally:
            platform.shards.write_handle = resolve
        assert response.status == 503
        payload = response.json()
        assert payload["code"] == "stale_epoch"
        assert payload["retryable"] is True
        assert payload["carried_generation"] == 0
        assert payload["current_generation"] == 1

        # No silent commit: the row is nowhere.
        read = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "SELECT COUNT(*) AS c FROM kpis"}).result(30)
        assert read.json()["rows"] == [{"c": 0}]
        # The 503 did not poison the tenant's breaker: a re-routed
        # retry succeeds immediately.
        retry = platform.gateway.submit(
            "POST", "/tenants/acme/sql", headers=headers,
            body={"sql": "INSERT INTO kpis VALUES (1, 41)"}).result(30)
        assert retry.status == 200, retry.body
        platform.close()


class TestAntiEntropy:
    def test_silent_divergence_is_quarantined_then_healed(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"), rows=6)
        replica = shard.replicas[0]
        replica.poll()
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=1)
        # Bit-rot on the next applied frame: commit numbers stay
        # perfect, only the content checksum can see it.
        faults.inject(f"replica.divergence.{replica.replica_id}",
                      limit=1)
        shard.primary.execute(
            "INSERT INTO events VALUES (100, 'poisoned')")

        report = supervisor.audit()
        entry = report["shard-0"][replica.replica_id]
        assert entry["verdict"] == "quarantined"
        assert entry["reason"] == "divergence"
        assert replica.applied_cn == shard.primary.committed_cn
        assert content_checksum(replica.database) \
            != content_checksum(shard.primary)
        # Quarantine is visible everywhere and excludes the replica
        # from routing.
        assert replica.replica_id \
            in shard.health()["quarantined_replicas"]
        assert replica.replica_id \
            in supervisor.health()["quarantined_replicas"]
        assert shard_map.read_handle("acme").served_by == "primary"

        heal = supervisor.audit()
        entry = heal["shard-0"][replica.replica_id]
        assert entry["verdict"] == "healed"
        assert entry["reason"].startswith("divergence")
        assert entry["quarantined_for"] >= 0.0
        assert replica.quarantined is None
        assert content_checksum(replica.database) \
            == content_checksum(shard.primary)
        # Back in the rotation.
        handle = shard_map.read_handle("acme")
        assert handle.served_by == replica.replica_id
        shard_map.close()

    def test_partitioned_replica_is_recorded_not_escalated(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        replica = shard.replicas[0]
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=1)
        faults.inject(f"replica.partition.{replica.replica_id}",
                      limit=1)
        report = supervisor.audit()
        entry = report["shard-0"][replica.replica_id]
        assert entry["verdict"] == "unreachable"
        assert replica.quarantined is None
        assert supervisor.incidents == []
        # The partition lifts; the next pass converges and verifies.
        again = supervisor.audit()
        assert again["shard-0"][replica.replica_id]["verdict"] \
            == "consistent"
        shard_map.close()

    def test_replication_gap_without_snapshot_quarantines_then_heals(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"), rows=5)
        replica = shard.replicas[0]
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=1)
        # Checkpoint past the never-polled replica, then lose the
        # snapshot: the replica cannot converge at all.
        shard.primary.checkpoint()
        for index in range(200, 203):
            shard.primary.execute(
                "INSERT INTO events VALUES (?, 'post')", (index,))
        shard.snapshot_path.unlink()
        report = supervisor.audit()
        entry = report["shard-0"][replica.replica_id]
        assert entry["verdict"] == "quarantined"
        assert entry["reason"] == "corrupt"
        # The heal pass re-checkpoints the primary, which mints the
        # snapshot the forced resync needs.
        heal = supervisor.audit()
        assert heal["shard-0"][replica.replica_id]["verdict"] \
            == "healed"
        assert content_checksum(replica.database) \
            == content_checksum(shard.primary)
        shard_map.close()

    def test_lagging_replica_defers_the_checksum(self, tmp_path,
                                                 clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        replica = shard.replicas[0]
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=1)
        original = replica.poll
        replica.poll = lambda: 0  # shipment stalls; no divergence
        try:
            report = supervisor.audit()
        finally:
            replica.poll = original
        entry = report["shard-0"][replica.replica_id]
        assert entry["verdict"] == "lagging"
        assert entry["lag"] == shard.primary.committed_cn
        assert replica.quarantined is None
        shard_map.close()

    def test_audit_runs_on_its_tick_cadence(self, tmp_path, clock,
                                            faults):
        shard_map = make_map(tmp_path, clock, faults)
        supervisor = ShardSupervisor(shard_map, clock=clock,
                                     faults=faults, audit_every=3)
        audited = [supervisor.tick()["audited"] for _ in range(6)]
        assert audited == [False, False, True, False, False, True]
        shard_map.close()


class TestDeterministicChaos:
    """Acceptance criterion: a seeded chaos run — primary kill,
    replica divergence and a transient partition together — is
    byte-identical across runs and escapes nothing."""

    def chaos_run(self, base):
        clock = FakeClock()
        faults = FaultInjector()
        shard_map = ShardMap(base / "shards", shards=2, replicas=2,
                             fsync="off", clock=clock, faults=faults)
        for shard in shard_map.all_shards():
            seed(shard, rows=10)
        supervisor = ShardSupervisor(
            shard_map, clock=clock, faults=faults, probe_interval=1.0,
            miss_threshold=2, min_failover_interval=0.0,
            audit_every=2)
        faults.inject("supervision.probe.shard-0", limit=2)
        divergent = shard_map.shard("shard-1").replicas[0]
        partitioned = shard_map.shard("shard-1").replicas[1]
        faults.inject(f"replica.divergence.{divergent.replica_id}",
                      limit=1)
        faults.inject(f"replica.partition.{partitioned.replica_id}",
                      limit=1)
        supervisor.run(8)  # nothing escapes, or the test errors here
        outcome = {
            "incidents": [incident.to_dict()
                          for incident in supervisor.incidents],
            "promotions": [incident.promoted
                           for incident in supervisor.incidents
                           if incident.outcome == "promoted"],
            "audit": [(entry["replica"], entry["verdict"])
                      for entry in supervisor.audit_log],
            "health": supervisor.health(),
            "shards": shard_map.health(),
        }
        shard_map.close()
        return outcome

    def test_same_schedule_same_story(self, tmp_path):
        first = self.chaos_run(tmp_path / "run1")
        second = self.chaos_run(tmp_path / "run2")
        assert first == second

    def test_the_story_itself(self, tmp_path):
        outcome = self.chaos_run(tmp_path / "run")
        # Exactly one failover: shard-0, within the probe budget.
        (incident,) = outcome["incidents"]
        assert incident["shard"] == "shard-0"
        assert incident["outcome"] == "promoted"
        assert incident["mttr"] == 1.0  # (threshold-1) x interval
        assert outcome["promotions"] == ["shard-0-replica-0"]
        # The divergent replica was quarantined then healed; the
        # partitioned one was recorded, never escalated.
        verdicts = dict(outcome["audit"])
        assert verdicts["shard-1-replica-0"] == "healed"
        assert verdicts["shard-1-replica-1"] == "unreachable"
        assert outcome["health"]["quarantined_replicas"] == {}
        assert outcome["shards"]["shard-0"]["generation"] == 1
        assert outcome["shards"]["shard-1"]["generation"] == 0


class TestResourceLifecycle:
    """Satellite (b): ``close`` releases *everything* — replicas and
    fenced ex-primaries included — and the replica's snapshot probe
    stats the file exactly once."""

    def test_close_releases_replicas_and_retired_primaries(
            self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults, replicas=2)
        shard = seed(shard_map.shard("shard-0"))
        for replica in shard.replicas:
            replica.poll()
        old_primary = shard.primary
        shard_map.failover("shard-0")
        survivors = list(shard.replicas)
        assert len(survivors) == 1
        shard_map.close()
        assert all(replica.closed for replica in survivors)
        # The fenced ex-primary's log handle was released too.
        assert old_primary.wal is None
        assert shard.primary.wal is None

    def test_close_is_idempotent(self, tmp_path, clock, faults):
        shard_map = make_map(tmp_path, clock, faults)
        seed(shard_map.shard("shard-0"))
        shard_map.close()
        shard_map.close()  # second close must be a no-op, not a raise
        replica = shard_map.shard("shard-0").replicas[0]
        replica.close()
        replica.close()

    def test_idle_poll_stats_the_snapshot_exactly_once(
            self, tmp_path, clock, faults):
        # Regression for the double-stat TOCTOU: a checkpoint landing
        # between two stats made the freshness comparison incoherent.
        shard_map = make_map(tmp_path, clock, faults)
        shard = seed(shard_map.shard("shard-0"))
        replica = shard.replicas[0]
        replica.poll()  # caught up; the next poll has no fresh frames
        calls = []
        original = replica._snapshot_stat
        replica._snapshot_stat = \
            lambda: (calls.append(1), original())[1]
        assert replica.poll() == 0
        assert len(calls) == 1
        shard_map.close()


class TestPlatformIntegration:
    def test_supervisor_heals_the_platform_and_reports_health(
            self, tmp_path):
        platform = OdbisPlatform(
            data_dir=tmp_path, fsync="off", shards=1,
            replicas_per_shard=1,
            supervision={"miss_threshold": 2,
                         "min_failover_interval": 0.0,
                         "audit_every": 0})
        platform.provisioning.provision("acme", "Acme", plan="team")
        db = platform.tenants.context("acme").operational_db
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (7)")
        shard_id = platform.shards.place("acme")
        shard = platform.shards.shard(shard_id)
        shard.replicas[0].poll()
        kill_primary(shard)
        platform.supervisor.run(3)
        (incident,) = platform.supervisor.incidents
        assert incident.outcome == "promoted"
        # The supervisor went through platform.failover, so the
        # tenant context was re-pointed at the promoted engine.
        assert platform.tenants.context("acme").operational_db \
            is shard.primary
        assert shard.primary.query("SELECT id FROM t") == [{"id": 7}]
        report = platform.health_report().to_dict()
        assert report["supervision"]["ticks"] == 3
        assert report["supervision"]["incidents"][0]["outcome"] \
            == "promoted"
        assert report["supervision"]["config"]["miss_threshold"] == 2
        platform.close()

    def test_pump_mode_moves_shipment_off_the_read_path(
            self, tmp_path):
        platform = OdbisPlatform(
            data_dir=tmp_path, fsync="off", shards=1,
            replicas_per_shard=1, supervision={"pump": True})
        assert platform.shards.route_polling is False
        platform.provisioning.provision("acme", "Acme", plan="team")
        db = platform.tenants.context("acme").operational_db
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        # Routed reads no longer ship frames: the replica is behind
        # budget, so the primary serves.
        handle = platform.shards.read_handle("acme")
        assert handle.served_by == "primary"
        # One supervision tick pumps; the next read offloads.
        platform.supervisor.tick()
        handle = platform.shards.read_handle("acme")
        assert handle.served_by.endswith("-replica-0")
        assert handle.replica_lag == 0
        platform.close()
