"""The deterministic chaos battery (marker: ``chaos``).

Every test drives the assembled platform with a seeded
:class:`FaultInjector` and asserts *exact* outcomes: same seed ⇒ same
injected fault sites ⇒ same final platform state.  All clocks are
fake, so breaker cooldowns and retry backoff never sleep for real, and
the battery runs in tier-1.
"""

import pytest

from repro.core import OdbisPlatform
from repro.core.gateway import DegradedResponse
from repro.core.resilience import FakeClock, FaultInjector, RetryPolicy
from repro.engine.database import Database
from repro.errors import InjectedFault, SnapshotError
from repro.etl import RowsSource, Schedule

pytestmark = pytest.mark.chaos

TENANTS = ("acme", "globex")


def build_platform(**kwargs):
    platform = OdbisPlatform(clock=FakeClock(), **kwargs)
    for tenant in TENANTS:
        platform.provisioning.provision(tenant, tenant.title(),
                                        plan="team")
    return platform


def login(platform, tenant):
    response = platform.web.request(
        "POST", "/login",
        body={"username": f"admin@{tenant}", "password": "changeme"})
    assert response.status == 200
    return {"x-auth-token": response.json()["token"]}


def run_chaos_session(seed):
    """One fully seeded platform lifetime; returns its fingerprint.

    The workload covers every instrumented layer: gateway requests
    whose handler publishes on the ESB (``esb.publish`` +
    ``esb.deliver`` sites), scheduled ETL ticks (``etl.job`` site) and
    request handling itself (``gateway.handle`` site) — all at a 30%
    injected fault rate.
    """
    platform = build_platform()
    delivered = []
    platform.resources.bus.service_activator(
        "platform-events", delivered.append)

    def touch(request):
        platform.resources.publish_event(request.tenant, "touch")
        return_payload = {"tenant": request.tenant, "ok": True}
        from repro.web import JsonResponse
        return JsonResponse(return_payload)

    platform.web.get("/tenants/{tenant}/touch", touch)
    headers = {tenant: login(platform, tenant) for tenant in TENANTS}

    # A flaky nightly job per tenant: the etl.job fault site decides
    # whether a given run fails.
    for tenant in TENANTS:
        platform.integration.define_job(
            tenant, "nightly", RowsSource([{"x": 1}]))
        platform.integration.schedule_job(
            tenant, "nightly", Schedule(every_minutes=10))

    # Chaos goes live only after clean provisioning.
    platform.faults.inject("esb.publish", rate=0.3, seed=seed)
    platform.faults.inject("esb.deliver", rate=0.3, seed=seed + 1)
    platform.faults.inject("etl.job", rate=0.3, seed=seed + 2)
    platform.faults.inject("gateway.handle", rate=0.3, seed=seed + 3)

    statuses = []
    # Sequential submits keep the fault-draw order deterministic.
    for round_number in range(15):
        for tenant in TENANTS:
            future = platform.gateway.submit(
                "GET", f"/tenants/{tenant}/touch",
                headers=headers[tenant])
            response = future.result(30)
            statuses.append((tenant, response.status,
                             bool(getattr(response, "degraded",
                                          False))))
        platform.integration.advance_clock(10)

    fingerprint = {
        "fault_history": list(platform.faults.history),
        "statuses": statuses,
        "dead_letters": len(platform.resources.bus.dead_letters),
        "delivered": len(delivered),
        # Message ids come from a process-wide counter, so normalize
        # them out of the fingerprint: order + attempts is the state.
        "retry_log": [(channel, attempts) for channel, _mid, attempts
                      in platform.resources.bus.retry_log],
        "health": platform.health_report().to_dict(),
        "journal": [
            {key: entry[key] for key in ("tenant", "job",
                                         "rows_written")}
            for entry in platform.integration._run_journal
        ],
    }
    platform.gateway.shutdown()
    return fingerprint


class TestDeterminism:
    def test_same_seed_same_faults_same_final_state(self):
        first = run_chaos_session(seed=7)
        second = run_chaos_session(seed=7)
        assert first["fault_history"] == second["fault_history"]
        assert first == second

    def test_different_seed_different_chaos(self):
        first = run_chaos_session(seed=7)
        other = run_chaos_session(seed=8)
        assert first["fault_history"] != other["fault_history"]


class TestGatewayKeepsServing:
    def test_thirty_percent_faults_zero_unhandled_escapes(self):
        fingerprint = run_chaos_session(seed=42)
        # Chaos really happened...
        assert fingerprint["fault_history"]
        # ...yet every single request resolved to a response: a
        # success, a typed error (500 internal_failure from the
        # injected gateway fault) or a degraded answer — nothing
        # raised out of a future.
        assert len(fingerprint["statuses"]) == 15 * len(TENANTS)
        for _tenant, status, _degraded in fingerprint["statuses"]:
            assert status in (200, 429, 500, 503, 504)
        # The breaker/quarantine state is observable in the report.
        health = fingerprint["health"]
        assert set(health["tenants"]) == set(TENANTS)
        for tenant in TENANTS:
            assert health["tenants"][tenant]["breaker"] in (
                "closed", "open", "half-open")
        assert health["fault_sites"]  # chaos is visible, per site

    def test_exhausted_esb_retries_park_in_dead_letters(self):
        fingerprint = run_chaos_session(seed=42)
        # With a 30% fault rate and 3 attempts, some publishes and
        # deliveries exhausted their retries: the messages are parked,
        # not lost, and some retries recovered (retry_log non-empty).
        assert fingerprint["dead_letters"] > 0
        assert fingerprint["retry_log"]
        # But most deliveries still landed.
        assert fingerprint["delivered"] > 0


class TestBreakerDegradedMode:
    def test_open_breaker_serves_stale_with_marker(self):
        platform = build_platform()
        headers = login(platform, "acme")
        path = "/tenants/acme/datasources"
        # Prime the stale cache with one good response.
        good = platform.gateway.submit("GET", path,
                                       headers=headers).result(30)
        assert good.status == 200
        baseline = good.json()

        # Now the backend "breaks": every handled request fails until
        # the breaker trips.
        platform.faults.inject("gateway.handle", rate=1.0, seed=0)
        threshold = platform.gateway.breaker_threshold
        for _ in range(threshold):
            response = platform.gateway.submit(
                "GET", path, headers=headers).result(30)
            assert response.status == 500
            assert response.json()["code"] == "internal_failure"

        assert platform.gateway.breaker("acme").state == "open"
        degraded = platform.gateway.submit(
            "GET", path, headers=headers).result(30)
        assert isinstance(degraded, DegradedResponse)
        assert degraded.degraded and degraded.stale
        body = degraded.json()
        assert body["stale"] is True
        assert "stale_as_of" in body
        assert body["data"] == baseline  # the cached report
        # Degraded answers never occupy a worker or touch the backend:
        # the dispatch log shows the short-circuit.
        assert platform.gateway.dispatch_log[-1] == (path, "degraded")

        # Past cooldown (fake clock!) the half-open probe runs; with
        # the faults cleared it closes the breaker again.
        platform.faults.clear()
        platform.clock.advance(platform.gateway.breaker_cooldown + 1)
        recovered = platform.gateway.submit(
            "GET", path, headers=headers).result(30)
        assert recovered.status == 200
        assert platform.gateway.breaker("acme").state == "closed"
        assert platform.health_report().tenants["acme"].healthy
        platform.gateway.shutdown()

    def test_open_breaker_without_cache_is_typed_503(self):
        platform = build_platform()
        headers = login(platform, "acme")
        platform.faults.inject("gateway.handle", rate=1.0, seed=0)
        path = "/tenants/acme/datasets"
        for _ in range(platform.gateway.breaker_threshold):
            platform.gateway.submit("GET", path,
                                    headers=headers).result(30)
        degraded = platform.gateway.submit(
            "GET", path, headers=headers).result(30)
        assert isinstance(degraded, DegradedResponse)
        assert degraded.status == 503
        assert not degraded.stale
        platform.gateway.shutdown()


class TestQuarantineVisibility:
    def test_failing_job_quarantines_and_reports(self):
        platform = build_platform()

        def always_down():
            raise OSError("source system unreachable")

        from repro.etl.sources import CallableSource
        platform.integration.define_job(
            "acme", "doomed", CallableSource(always_down))
        platform.integration.schedule_job(
            "acme", "doomed", Schedule(every_minutes=10))
        quarantine_after = platform.integration.QUARANTINE_AFTER
        platform.integration.advance_clock(10 * (quarantine_after + 2))

        assert platform.integration.quarantined_jobs("acme") == \
            ["doomed"]
        report = platform.health_report()
        assert report.tenants["acme"].quarantined_jobs == ["doomed"]
        assert not report.healthy
        # Skips are journalled ("reported, not dropped").
        history = platform.integration.run_history("acme")
        assert any(entry.get("status") == "quarantined"
                   for entry in history)
        # A manual run is refused with a typed error until readmitted.
        from repro.errors import JobQuarantinedError
        with pytest.raises(JobQuarantinedError):
            platform.integration.run_job("acme", "doomed")
        platform.integration.unquarantine_job("acme", "doomed")
        assert platform.integration.quarantined_jobs("acme") == []
        platform.gateway.shutdown()


class TestSnapshotTornWrite:
    def test_torn_write_leaves_previous_snapshot_intact(self, tmp_path):
        database = Database("wh")
        database.execute("CREATE TABLE t (x INTEGER)")
        database.execute("INSERT INTO t (x) VALUES (1)")
        target = tmp_path / "wh.snap"
        database.save(target)

        database.execute("INSERT INTO t (x) VALUES (2)")
        faults = FaultInjector()
        faults.inject("storage.write", rate=1.0, seed=3)
        with pytest.raises(InjectedFault):
            database.save(target, faults=faults)

        # The torn write hit only the temp file (cleaned up), and the
        # previous snapshot still loads.
        assert list(tmp_path.iterdir()) == [target]
        restored = Database.load(target)
        assert restored.query("SELECT x FROM t ORDER BY x") == \
            [{"x": 1}]

    def test_truncated_snapshot_is_a_typed_error(self, tmp_path):
        database = Database("wh")
        database.execute("CREATE TABLE t (x INTEGER)")
        target = tmp_path / "wh.snap"
        database.save(target)
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])  # torn on disk
        with pytest.raises(SnapshotError):
            Database.load(target)

    def test_save_retried_past_injected_faults_recovers(self, tmp_path):
        database = Database("wh")
        database.execute("CREATE TABLE t (x INTEGER)")
        database.execute("INSERT INTO t (x) VALUES (7)")
        target = tmp_path / "wh.snap"
        faults = FaultInjector()
        # Fires on the first two draws with this seed, then passes.
        faults.inject("storage.write", rate=1.0, seed=0, limit=2)
        policy = RetryPolicy(attempts=4)
        policy.call(lambda: database.save(target, faults=faults),
                    clock=FakeClock())
        assert len(faults.history) == 2
        restored = Database.load(target)
        assert restored.query("SELECT x FROM t") == [{"x": 7}]
