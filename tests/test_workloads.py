"""Tests for the synthetic workload generators and cost models."""

import pytest

from repro.engine import Database
from repro.workloads import (
    HealthcareWorkload,
    OnPremisesCostModel,
    RetailWorkload,
    SaasCostModel,
    TenantWorkload,
    UsageProfile,
    crossover_month,
    cumulative_costs,
)
from repro.workloads.healthcare import DEPARTMENTS, SEVERITIES
from repro.workloads.tco import tco_summary


class TestHealthcareWorkload:
    def test_determinism_per_seed(self):
        first = HealthcareWorkload(seed=5).admissions(50)
        second = HealthcareWorkload(seed=5).admissions(50)
        assert first == second

    def test_different_seeds_differ(self):
        assert HealthcareWorkload(seed=1).admissions(50) != \
            HealthcareWorkload(seed=2).admissions(50)

    def test_values_in_domain(self):
        rows = HealthcareWorkload().admissions(200)
        assert {row["department"] for row in rows} <= set(DEPARTMENTS)
        assert {row["severity"] for row in rows} <= set(SEVERITIES)
        assert all(row["cost"] > 0 for row in rows)
        assert all(row["length_of_stay"] >= 1 for row in rows)

    def test_high_severity_costs_more_on_average(self):
        rows = HealthcareWorkload().admissions(1000)
        def mean_cost(severity):
            costs = [row["cost"] for row in rows
                     if row["severity"] == severity]
            return sum(costs) / len(costs)
        assert mean_cost("high") > mean_cost("medium") > mean_cost("low")

    def test_load_creates_and_fills_table(self):
        db = Database()
        count = HealthcareWorkload().load(db, count=120)
        assert count == 120
        assert db.query_value("SELECT COUNT(*) FROM admissions") == 120


class TestRetailWorkload:
    def test_build_star_schema(self):
        db = Database()
        counts = RetailWorkload().build(db, fact_rows=300)
        assert counts["fact_sales"] == 300
        assert counts["dim_product"] == 10
        assert db.query_value("SELECT COUNT(*) FROM dim_store") == 6

    def test_facts_join_cleanly_to_dimensions(self):
        db = Database()
        RetailWorkload().build(db, fact_rows=200)
        joined = db.query_value(
            "SELECT COUNT(*) FROM fact_sales f "
            "JOIN dim_time t ON f.time_key = t.time_key "
            "JOIN dim_product p ON f.product_key = p.product_key "
            "JOIN dim_store s ON f.store_key = s.store_key")
        assert joined == 200

    def test_cube_definition_validates_against_schema(self):
        from repro.olap import CubeSchema

        db = Database()
        workload = RetailWorkload()
        workload.build(db, fact_rows=50)
        schema = CubeSchema.from_definition(workload.cube_definition())
        assert schema.validate_against(db) == []


class TestTenantWorkload:
    def test_deterministic_population(self):
        assert TenantWorkload(seed=3).tenants(10) == \
            TenantWorkload(seed=3).tenants(10)

    def test_profiles_are_plausible(self):
        profiles = TenantWorkload().tenants(50)
        assert len({profile.name for profile in profiles}) == 50
        for profile in profiles:
            assert profile.user_count >= 2
            assert profile.monthly_queries >= profile.user_count

    def test_activity_events_scale_with_usage(self):
        workload = TenantWorkload()
        light, heavy = None, None
        for profile in workload.tenants(30):
            if profile.plan == "starter" and light is None:
                light = profile
            if profile.plan == "enterprise" and heavy is None:
                heavy = profile
        assert light is not None and heavy is not None
        assert len(workload.activity_events(heavy)) > \
            len(workload.activity_events(light))


class TestCostModels:
    def test_cumulative_costs(self):
        assert cumulative_costs([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]

    def test_on_premises_front_loads_costs(self):
        model = OnPremisesCostModel()
        monthly = model.monthly_costs(UsageProfile(40), months=12)
        assert monthly[0] > 10 * monthly[1]

    def test_server_steps_with_user_growth(self):
        model = OnPremisesCostModel(users_per_server=50)
        assert model.servers_needed(50) == 1
        assert model.servers_needed(51) == 2

    def test_saas_costs_track_users(self):
        model = SaasCostModel()
        flat = model.monthly_costs(UsageProfile(10), months=6)
        growing = model.monthly_costs(
            UsageProfile(10, user_growth_per_year=1.0), months=6)
        assert flat[1:] == [flat[1]] * 5  # constant after onboarding
        assert growing[-1] > flat[-1]

    def test_saas_is_cheaper_for_typical_midsize_customer(self):
        summary = tco_summary(UsageProfile(40), months=36)
        assert summary["saas_cheaper"]
        assert summary["crossover_month"] == 0  # upfront license wall

    def test_very_large_static_fleet_can_favor_on_premises(self):
        # With thousands of users and no growth, subscriptions
        # eventually overtake a one-time licence.
        summary = tco_summary(
            UsageProfile(2000), months=120,
            saas=SaasCostModel(price_per_user_month=75.0),
            on_premises=OnPremisesCostModel(users_per_server=500))
        crossover = crossover_month(
            OnPremisesCostModel(users_per_server=500).monthly_costs(
                UsageProfile(2000), 120),
            SaasCostModel().monthly_costs(UsageProfile(2000), 120))
        assert summary["saas_cheaper"] is (crossover == 0)

    def test_crossover_none_when_on_prem_never_exceeds(self):
        cheap_op = [1.0] * 12
        pricey_saas = [100.0] * 12
        assert crossover_month(cheap_op, pricey_saas) is None
