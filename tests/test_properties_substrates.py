"""Property-based tests across the higher substrates (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.etl.operators import (
    Aggregate,
    Deduplicate,
    Project,
    Rename,
    Sort,
    SurrogateKey,
)
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
    cim_to_pim,
    generate_code,
    pim_to_psm,
)
from repro.mof import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    Metamodel,
    ModelExtent,
    read_xmi,
    write_xmi,
)
from repro.olap import CubeSchema

identifiers = st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                      min_size=1, max_size=8)
small_ints = st.integers(min_value=-1000, max_value=1000)


@st.composite
def etl_rows(draw, max_rows=25):
    count = draw(st.integers(min_value=0, max_value=max_rows))
    return [
        {"k": draw(small_ints), "v": draw(small_ints),
         "tag": draw(identifiers)}
        for _ in range(count)
    ]


def run(operator, rows):
    return list(operator.process(iter([dict(r) for r in rows])))


class TestEtlOperatorProperties:
    @settings(max_examples=30)
    @given(etl_rows())
    def test_project_preserves_cardinality(self, rows):
        assert len(run(Project(["k", "v"]), rows)) == len(rows)

    @settings(max_examples=30)
    @given(etl_rows())
    def test_deduplicate_is_idempotent(self, rows):
        once = run(Deduplicate(["k"]), rows)
        twice = run(Deduplicate(["k"]), once)
        assert once == twice

    @settings(max_examples=30)
    @given(etl_rows())
    def test_deduplicate_keys_are_unique(self, rows):
        output = run(Deduplicate(["k", "tag"]), rows)
        keys = [(row["k"], row["tag"]) for row in output]
        assert len(keys) == len(set(keys))

    @settings(max_examples=30)
    @given(etl_rows())
    def test_sort_output_is_sorted_and_same_multiset(self, rows):
        output = run(Sort(["k"]), rows)
        values = [row["k"] for row in output]
        assert values == sorted(values)
        assert sorted(map(repr, output)) == sorted(
            map(repr, [dict(r) for r in rows]))

    @settings(max_examples=30)
    @given(etl_rows())
    def test_aggregate_sum_matches_python(self, rows):
        output = run(Aggregate(["tag"], {"total": ("sum", "v"),
                                         "n": ("count", "v")}), rows)
        total_from_groups = sum(row["total"] for row in output
                                if row["total"] is not None)
        assert total_from_groups == sum(row["v"] for row in rows)
        assert sum(row["n"] for row in output) == len(rows)

    @settings(max_examples=30)
    @given(etl_rows(), st.integers(min_value=1, max_value=100))
    def test_surrogate_keys_are_dense(self, rows, start):
        output = run(SurrogateKey("sk", start=start), rows)
        assert [row["sk"] for row in output] == \
            list(range(start, start + len(rows)))

    @settings(max_examples=30)
    @given(etl_rows())
    def test_rename_then_reverse_is_identity(self, rows):
        there = run(Rename({"k": "key"}), rows)
        back = run(Rename({"key": "k"}), there)
        assert back == [dict(r) for r in rows]


class TestXmiProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(identifiers, small_ints), min_size=0,
                    max_size=15))
    def test_xmi_roundtrip_preserves_elements_and_links(self, specs):
        metamodel = Metamodel("P", [
            MetaClass("Node", attributes=[
                MetaAttribute("name", "string"),
                MetaAttribute("weight", "integer"),
            ], references=[
                MetaReference("next", "Node"),
            ]),
        ])
        extent = ModelExtent(metamodel, "chain")
        elements = []
        for name, weight in specs:
            elements.append(extent.create(
                "Node", name=name, weight=weight))
        for first, second in zip(elements, elements[1:]):
            first.link("next", second)

        restored = read_xmi(write_xmi(extent), metamodel)
        assert len(restored) == len(extent)
        restored_chain = sorted(
            ((element.get("name"), element.get("weight"),
              element.ref("next").element_id
              if element.ref("next") else None)
             for element in restored),
            key=repr)
        original_chain = sorted(
            ((element.get("name"), element.get("weight"),
              element.ref("next").element_id
              if element.ref("next") else None)
             for element in extent),
            key=repr)
        assert restored_chain == original_chain


@st.composite
def cim_models(draw):
    subject_count = draw(st.integers(min_value=1, max_value=4))
    dimension_pool = [
        DimensionSpec("Time", ["year", "month"], is_time=True),
        DimensionSpec("Product", ["category", "sku"]),
        DimensionSpec("Geo", ["region"]),
        DimensionSpec("Channel", ["kind", "name"]),
    ]
    requirements = []
    for index in range(subject_count):
        measure_count = draw(st.integers(min_value=1, max_value=3))
        dimension_count = draw(st.integers(min_value=1, max_value=4))
        requirements.append(BusinessRequirement(
            subject=f"Subject{index}",
            measures=[MeasureSpec(f"m{index}_{m}")
                      for m in range(measure_count)],
            dimensions=dimension_pool[:dimension_count]))
    return CimModel("prop", requirements)


class TestMdaChainProperties:
    @settings(max_examples=20, deadline=None)
    @given(cim_models())
    def test_chain_always_yields_valid_deployable_artifacts(self, cim):
        """For arbitrary CIMs: PIM valid, PSM valid, DDL deploys, and
        every generated cube validates against the deployed schema."""
        pim, _ = cim_to_pim(cim)
        assert pim.validate() == []
        psm, _ = pim_to_psm(pim, cim.technical)
        assert psm.validate() == []
        artifacts = generate_code(psm, pim)
        database = Database()
        for statement in artifacts.ddl:
            database.execute(statement)
        assert len(artifacts.cube_definitions) == \
            len(cim.requirements)
        for definition in artifacts.cube_definitions:
            schema = CubeSchema.from_definition(definition)
            assert schema.validate_against(database) == []

    @settings(max_examples=20, deadline=None)
    @given(cim_models())
    def test_dimension_conformance(self, cim):
        """Shared dimension specs never duplicate PSM tables."""
        pim, _ = cim_to_pim(cim)
        psm, _ = pim_to_psm(pim, cim.technical)
        names = [table.name for table in psm.tables()]
        assert len(names) == len(set(names))
        distinct_dimensions = {
            spec.name
            for requirement in cim.requirements
            for spec in requirement.dimensions
        }
        dim_tables = [name for name in names
                      if name.startswith("dim_")]
        assert len(dim_tables) == len(distinct_dimensions)


class TestOlapVsSqlProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),
                  st.integers(min_value=1, max_value=3),
                  st.floats(min_value=0, max_value=1000,
                            allow_nan=False)),
        min_size=1, max_size=40))
    def test_cube_totals_match_direct_sql(self, facts):
        """The OLAP engine's aggregates must equal direct SQL."""
        from repro.olap import CubeDimension, Measure, OlapEngine

        database = Database()
        database.execute(
            "CREATE TABLE dim_g (g_key INTEGER PRIMARY KEY, "
            "bucket TEXT)")
        for key in range(1, 6):
            database.execute("INSERT INTO dim_g VALUES (?, ?)",
                             (key, f"b{key % 2}"))
        database.execute(
            "CREATE TABLE dim_h (h_key INTEGER PRIMARY KEY, "
            "label TEXT)")
        for key in range(1, 4):
            database.execute("INSERT INTO dim_h VALUES (?, ?)",
                             (key, f"l{key}"))
        database.execute(
            "CREATE TABLE fact_f (g_key INTEGER, h_key INTEGER, "
            "amount REAL)")
        for g_key, h_key, amount in facts:
            database.execute("INSERT INTO fact_f VALUES (?, ?, ?)",
                             (g_key, h_key, amount))

        schema = CubeSchema(
            "F", "fact_f",
            measures=[Measure("amount", "amount", "sum")],
            dimensions=[
                CubeDimension("G", "dim_g", "g_key", ["bucket"]),
                CubeDimension("H", "dim_h", "h_key", ["label"]),
            ])
        engine = OlapEngine(database, schema)
        cells = engine.query(["amount"], [("G", "bucket")])
        direct = database.query(
            "SELECT d.bucket AS bucket, SUM(f.amount) AS amount "
            "FROM fact_f f JOIN dim_g d ON f.g_key = d.g_key "
            "GROUP BY d.bucket ORDER BY d.bucket")
        assert [(row["G.bucket"], row["amount"])
                for row in cells.rows] == \
            [(row["bucket"], row["amount"]) for row in direct]
