"""Targeted tests for less-travelled branches across modules."""

import pytest

from repro.cwm import RelationalBuilder, cwm_metamodel
from repro.errors import MdaError, XmiError
from repro.mda.codegen import generate_code
from repro.mda.viewpoints import PsmModel
from repro.mof import ModelExtent, read_xmi


class TestCodegenEdgeCases:
    def test_cyclic_foreign_keys_detected(self):
        psm = PsmModel("cyclic")
        relational = RelationalBuilder(psm.extent)
        schema = relational.schema("s")
        first = relational.table(schema, "a")
        second = relational.table(schema, "b")
        a_key = relational.column(first, "id", "INTEGER",
                                  nullable=False)
        b_key = relational.column(second, "id", "INTEGER",
                                  nullable=False)
        a_fk = relational.column(first, "b_id", "INTEGER")
        b_fk = relational.column(second, "a_id", "INTEGER")
        a_pk = relational.primary_key(first, "pk_a", [a_key])
        b_pk = relational.primary_key(second, "pk_b", [b_key])
        relational.foreign_key(first, "fk_ab", [a_fk], b_pk)
        relational.foreign_key(second, "fk_ba", [b_fk], a_pk)
        with pytest.raises(MdaError):
            generate_code(psm)

    def test_table_without_columns_rejected(self):
        psm = PsmModel("empty")
        relational = RelationalBuilder(psm.extent)
        schema = relational.schema("s")
        relational.table(schema, "bare")
        with pytest.raises(MdaError):
            generate_code(psm)

    def test_index_elements_emit_ddl(self):
        psm = PsmModel("indexed")
        relational = RelationalBuilder(psm.extent)
        schema = relational.schema("s")
        table = relational.table(schema, "t")
        column = relational.column(table, "x", "INTEGER")
        relational.index(table, "ix_t_x", [column], unique=True)
        artifacts = generate_code(psm)
        assert any("CREATE UNIQUE INDEX ix_t_x" in line
                   for line in artifacts.ddl)


class TestXmiEdgeCases:
    def test_dangling_reference_rejected(self):
        metamodel = cwm_metamodel()
        document = (
            '<xmi version="2.1" metamodel="CWM" extent="e">'
            '<Package xmi.id="p1" name="p">'
            '<reference name="ownedElement" idref="ghost"/>'
            '</Package></xmi>')
        with pytest.raises(XmiError):
            read_xmi(document, metamodel)

    def test_element_without_id_rejected(self):
        metamodel = cwm_metamodel()
        document = ('<xmi version="2.1" metamodel="CWM" extent="e">'
                    '<Package name="p"/></xmi>')
        with pytest.raises(XmiError):
            read_xmi(document, metamodel)


class TestEngineEdgeCases:
    def test_having_without_group_by(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.query(
            "SELECT SUM(x) AS s FROM t HAVING SUM(x) > 10") == []
        assert db.query(
            "SELECT SUM(x) AS s FROM t HAVING SUM(x) > 1") == \
            [{"s": 3}]

    def test_order_by_aggregate(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (g TEXT, x INTEGER)")
        db.executemany("INSERT INTO t VALUES (?, ?)",
                       [("a", 1), ("a", 2), ("b", 10)])
        rows = db.query(
            "SELECT g FROM t GROUP BY g ORDER BY SUM(x) DESC")
        assert [row["g"] for row in rows] == ["b", "a"]

    def test_case_insensitive_table_and_column_names(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE Mixed (Col INTEGER)")
        db.execute("INSERT INTO mixed (col) VALUES (1)")
        assert db.query_value("SELECT COL FROM MIXED") == 1

    def test_scalar_functions_in_where(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (name TEXT)")
        db.execute("INSERT INTO t VALUES ('Ada'), ('bob')")
        rows = db.query(
            "SELECT name FROM t WHERE UPPER(name) = 'ADA'")
        assert rows == [{"name": "Ada"}]

    def test_coalesce_and_nullif(self):
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (NULL), (5)")
        rows = db.query(
            "SELECT COALESCE(x, 0) AS v, NULLIF(x, 5) AS n FROM t "
            "ORDER BY v")
        assert rows == [{"v": 0, "n": None}, {"v": 5, "n": None}]


class TestDeliveryEdgeCases:
    def test_structured_payload_is_json_serializable(self):
        import json

        from repro.core.delivery_service import (
            Channel,
            InformationDeliveryService,
        )
        from repro.reporting import AdhocReportBuilder, Dashboard

        builder = AdhocReportBuilder(
            [{"g": "a", "v": 1.5}, {"g": "b", "v": None}])
        dashboard = Dashboard("d")
        dashboard.add_row(builder.bar_chart("c", "g", "v"),
                          builder.data_table("t", ["g", "v"]))
        payload = InformationDeliveryService().deliver_dashboard(
            dashboard, Channel.WEB_SERVICE)
        assert json.dumps(payload)  # round-trippable
