"""Model-based stateful testing of the engine (hypothesis).

A random interleaving of inserts, updates, deletes, transactions and
rollbacks runs against both the SQL engine and a plain-Python oracle
(a list of dicts).  After every step the full table contents must
match the oracle — the strongest correctness net over the substrate
everything else stands on.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine import Database

keys = st.integers(min_value=0, max_value=20)
values = st.integers(min_value=-100, max_value=100)
tags = st.sampled_from(["a", "b", "c"])


class EngineModel(RuleBasedStateMachine):
    """The engine must stay equivalent to a list-of-dicts oracle."""

    def __init__(self):
        super().__init__()
        self.db = Database()
        self.db.execute(
            "CREATE TABLE t (k INTEGER, v INTEGER, tag TEXT)")
        self.oracle = []          # committed + pending rows
        self.snapshot = None      # oracle at BEGIN, for rollback

    # -- mutations -----------------------------------------------------------

    @rule(k=keys, v=values, tag=tags)
    def insert(self, k, v, tag):
        self.db.execute("INSERT INTO t VALUES (?, ?, ?)", (k, v, tag))
        self.oracle.append({"k": k, "v": v, "tag": tag})

    @rule(k=keys, v=values)
    def update_by_key(self, k, v):
        self.db.execute("UPDATE t SET v = ? WHERE k = ?", (v, k))
        for row in self.oracle:
            if row["k"] == k:
                row["v"] = v

    @rule(tag=tags, delta=values)
    def update_arithmetic(self, tag, delta):
        self.db.execute(
            "UPDATE t SET v = v + ? WHERE tag = ?", (delta, tag))
        for row in self.oracle:
            if row["tag"] == tag:
                row["v"] += delta

    @rule(k=keys)
    def delete_by_key(self, k):
        self.db.execute("DELETE FROM t WHERE k = ?", (k,))
        self.oracle = [row for row in self.oracle if row["k"] != k]

    @rule(threshold=values)
    def delete_below(self, threshold):
        self.db.execute("DELETE FROM t WHERE v < ?", (threshold,))
        self.oracle = [row for row in self.oracle
                       if row["v"] >= threshold]

    # -- transactions -----------------------------------------------------------

    @precondition(lambda self: self.snapshot is None)
    @rule()
    def begin(self):
        self.db.begin()
        self.snapshot = [dict(row) for row in self.oracle]

    @precondition(lambda self: self.snapshot is not None)
    @rule()
    def commit(self):
        self.db.commit()
        self.snapshot = None

    @precondition(lambda self: self.snapshot is not None)
    @rule()
    def rollback(self):
        self.db.rollback()
        self.oracle = self.snapshot
        self.snapshot = None

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def table_matches_oracle(self):
        engine_rows = sorted(
            self.db.query("SELECT k, v, tag FROM t"),
            key=lambda row: (row["k"], row["v"], row["tag"]))
        oracle_rows = sorted(
            ({"k": r["k"], "v": r["v"], "tag": r["tag"]}
             for r in self.oracle),
            key=lambda row: (row["k"], row["v"], row["tag"]))
        assert engine_rows == oracle_rows

    @invariant()
    def aggregates_match_oracle(self):
        count = self.db.query_value("SELECT COUNT(*) FROM t")
        assert count == len(self.oracle)
        total = self.db.query_value("SELECT SUM(v) FROM t")
        expected = sum(row["v"] for row in self.oracle) \
            if self.oracle else None
        assert total == expected

    def teardown(self):
        if self.snapshot is not None:
            self.db.rollback()


EngineModel.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)
TestEngineStateful = EngineModel.TestCase
