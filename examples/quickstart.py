"""Quickstart: provision a tenant and tour every ODBIS service.

Run with::

    python examples/quickstart.py
"""

from repro import OdbisPlatform
from repro.workloads import RetailWorkload


def main() -> None:
    # 1. Stand up the platform and on-board a customer.
    platform = OdbisPlatform()
    context = platform.provisioning.provision(
        "acme", "Acme Corp", plan="team")
    print(f"provisioned tenant {context.tenant_id!r} "
          f"on plan {context.plan!r}")

    # 2. Populate the tenant's warehouse (stand-in for a real DW load).
    workload = RetailWorkload(seed=11)
    counts = workload.build(context.warehouse_db, fact_rows=2000)
    print(f"warehouse loaded: {counts}")

    # 3. Meta-data service: declare a reusable data set.
    platform.metadata.create_dataset(
        "acme", "revenue-by-region", "warehouse",
        "SELECT s.region AS region, SUM(f.revenue) AS revenue "
        "FROM fact_sales f "
        "JOIN dim_store s ON f.store_key = s.store_key "
        "GROUP BY s.region ORDER BY s.region")

    # 4. Analysis service: define the cube and run an MDX query.
    platform.analysis.define_cube("acme", workload.cube_definition())
    cells = platform.analysis.execute_mdx(
        "acme",
        "SELECT {[Measures].[revenue], [Measures].[quantity]} "
        "ON COLUMNS, {[Product].[category].Members} ON ROWS "
        "FROM [RetailSales]")
    print("\nrevenue by product category (MDX):")
    for row in cells.rows:
        print(f"  {row['Product.category']:<12} "
              f"{row['revenue']:>12,.2f}  qty {row['quantity']}")

    # 5. Reporting service: an ad-hoc dashboard from the data set.
    from repro.reporting import Dashboard

    builder = platform.reporting.adhoc_builder(
        "acme", "revenue-by-region")
    dashboard = Dashboard("regional-overview", "Revenue per region")
    dashboard.add_row(
        builder.bar_chart("revenue", "region", "revenue"))
    platform.reporting.save_dashboard("acme", dashboard)

    # 6. Information delivery: render for two channels.
    from repro.core import Channel

    print("\n" + platform.delivery.deliver_dashboard(
        dashboard, Channel.MOBILE))

    # 7. The web API: what a browser client actually calls.
    login = platform.web.request(
        "POST", "/login",
        body={"username": "admin@acme", "password": "changeme"})
    headers = {"X-Auth-Token": login.json()["token"]}
    cubes = platform.web.request(
        "GET", "/tenants/acme/cubes", headers=headers)
    print(f"\nGET /tenants/acme/cubes -> {cubes.json()}")
    print(f"layer trace: {platform.last_trace}")

    # 8. Pay-as-you-go: the invoice reflects exactly what we used.
    invoice = platform.billing.invoice("acme", "team")
    print(f"\ninvoice for 'acme' ({invoice.plan} plan): "
          f"{invoice.total:,.2f} "
          f"(base {invoice.base_fee:,.2f} + metered overage)")
    for line in invoice.lines:
        print(f"  {line.kind:<10} used={line.used} "
              f"included={line.included} overage={line.amount:.2f}")


if __name__ == "__main__":
    main()
