"""MDDWS end to end: the paper's Figs. 2-3 on a retail warehouse.

Captures business requirements (BCIM), runs a full 2TUP iteration
whose realization disciplines host the MDA chain (CIM → PIM → PSM →
code), deploys the generated star schema, loads it through the
integration service, and answers an MDX query on the generated cube.

Run with::

    python examples/model_driven_warehouse.py
"""

from repro import OdbisPlatform
from repro.etl import RowsSource, SurrogateKey
from repro.mda import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
)
from repro.mda.process import DISCIPLINES


def main() -> None:
    platform = OdbisPlatform()
    platform.provisioning.provision("retailer", "Retail Chain",
                                    plan="enterprise")
    platform.mddws.create_project("retailer", "retail-dw",
                                  layers=("staging", "warehouse"))

    # 1. The business CIM: what the business wants to analyse.
    cim = CimModel("retail", [
        BusinessRequirement(
            subject="Sales",
            goal="track revenue and volume by product, store, time",
            measures=[MeasureSpec("revenue", "sum"),
                      MeasureSpec("quantity", "sum")],
            dimensions=[
                DimensionSpec("Time", ["year", "quarter", "month"],
                              is_time=True),
                DimensionSpec("Product", ["category", "sku"]),
                DimensionSpec("Store", ["region", "city"]),
            ]),
    ])

    # 2. One 2TUP iteration carrying the MDA transformation chain.
    summary = platform.mddws.design_warehouse("retailer", cim,
                                              layer="warehouse")
    print("=== 2TUP iteration (Fig. 3) ===")
    iteration = platform.mddws.project("retailer") \
        .process.iterations[0]
    for discipline in DISCIPLINES:
        activity = f" [{discipline.mda_activity}]" \
            if discipline.mda_activity else ""
        mark = "x" if discipline.name in iteration.completed else " "
        print(f"  [{mark}] {discipline.branch:<11} "
              f"{discipline.name}{activity}")

    print("\n=== generated artifacts ===")
    artifacts = summary["artifacts"]
    for statement in artifacts.ddl:
        print(f"  {statement.split('(')[0].strip()}")
    print(f"  + {len(artifacts.etl_jobs)} ETL job skeletons, "
          f"{len(artifacts.cube_definitions)} cube definition(s)")
    print(f"  open completion points: "
          f"{len(artifacts.completion_points)}")

    # 3. Code completion: bind real sources to the generated ETL jobs.
    loads = {
        "dim_time": [{"year": "2009", "quarter": "Q1", "month": "Jan"},
                     {"year": "2009", "quarter": "Q2", "month": "Apr"}],
        "dim_product": [{"category": "Food", "sku": "bread"},
                        {"category": "Electronics", "sku": "phone"}],
        "dim_store": [{"region": "North", "city": "Lille"},
                      {"region": "South", "city": "Nice"}],
    }
    for table, rows in loads.items():
        key_column = f"{table[4:]}_key"
        platform.integration.define_job(
            "retailer", f"load-{table}",
            RowsSource(rows), [SurrogateKey(key_column)],
            target_table=table)
    platform.integration.define_job(
        "retailer", "load-fact_sales",
        RowsSource([
            {"time_key": 1, "product_key": 1, "store_key": 1,
             "revenue": 120.0, "quantity": 40},
            {"time_key": 2, "product_key": 2, "store_key": 1,
             "revenue": 1800.0, "quantity": 3},
            {"time_key": 1, "product_key": 1, "store_key": 2,
             "revenue": 60.0, "quantity": 20},
        ]),
        target_table="fact_sales")
    results = platform.integration.run_graph("retailer", {
        "load-dim_time": [], "load-dim_product": [],
        "load-dim_store": [],
        "load-fact_sales": ["load-dim_time", "load-dim_product",
                            "load-dim_store"],
    })
    total = sum(result.rows_written for result in results.values())
    print(f"\nintegration service loaded {total} rows")

    # 4. The generated cube answers MDX immediately.
    cells = platform.analysis.execute_mdx(
        "retailer",
        "SELECT {[Measures].[revenue]} ON COLUMNS, "
        "{[Store].[region].Members} ON ROWS FROM [Sales]")
    print("\nrevenue by region on the generated cube:")
    for row in cells.rows:
        print(f"  {row['Store.region']:<8} {row['revenue']:>10,.2f}")

    print("\nproject status:",
          platform.mddws.project_status("retailer"))


if __name__ == "__main__":
    main()
