-- Analytic queries over the revenue mart.  The view defined here is
-- visible to the dashboard data sets in revenue.json.

CREATE VIEW revenue_by_region AS
SELECT s.region AS region, SUM(f.revenue) AS revenue
FROM fact_sales f
JOIN dim_store s ON f.store_key = s.store_key
GROUP BY s.region;

SELECT region, revenue
FROM revenue_by_region
ORDER BY revenue DESC;

SELECT p.category, SUM(f.quantity) AS units
FROM fact_sales f
JOIN dim_product p ON f.product_key = p.product_key
WHERE f.sold_on >= '2024-01-01'
GROUP BY p.category;

INSERT INTO dim_store (store_key, city, region)
VALUES (99, 'Lyon', 'South');
