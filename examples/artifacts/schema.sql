-- Star schema for the demo revenue mart.  The artifact linter reads
-- schema.sql first, so every other artifact in this directory is
-- checked against the tables declared here.

CREATE TABLE dim_store (
    store_key INTEGER NOT NULL,
    city TEXT,
    region TEXT
);

CREATE TABLE dim_product (
    product_key INTEGER NOT NULL,
    name TEXT,
    category TEXT
);

CREATE TABLE fact_sales (
    store_key INTEGER NOT NULL,
    product_key INTEGER NOT NULL,
    revenue REAL,
    quantity INTEGER,
    sold_on DATE
);
