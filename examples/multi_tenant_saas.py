"""Multi-tenant SaaS operations: the paper's §2 economics, live.

Provisions a fleet of tenants on the shared platform, simulates a
month of metered activity, and prints the administration layer's
usage/performance report plus each tenant's pay-as-you-go invoice.
Also contrasts shared-schema vs database-per-tenant isolation.

Run with::

    python examples/multi_tenant_saas.py
"""

from repro import OdbisPlatform, TenancyMode
from repro.workloads import TenantWorkload


def main() -> None:
    platform = OdbisPlatform(mode=TenancyMode.SHARED)
    workload = TenantWorkload(seed=23)
    profiles = workload.tenants(8)

    # On-board the fleet.
    for profile in profiles:
        platform.provisioning.provision(
            profile.name, profile.name.title(), plan=profile.plan)
    print(f"provisioned {len(profiles)} tenants on one shared "
          f"operational database "
          f"(database_count={platform.tenants.database_count()})")

    # A month of activity, metered per tenant.
    for profile in profiles:
        for event in workload.activity_events(profile):
            kind = "query" if event["kind"] == "query" else (
                "report" if event["kind"] == "report" else
                "dashboard" if event["kind"] == "dashboard" else
                "etl_rows")
            platform.billing.meter(profile.name, kind, event["units"])

    # The administration layer's platform-wide view.
    report = platform.admin.usage_report()
    print("\n=== usage & invoices (administration layer) ===")
    header = f"{'tenant':<12} {'plan':<11} {'queries':>8} {'invoice':>10}"
    print(header)
    print("-" * len(header))
    for profile in profiles:
        usage = report["usage"].get(profile.name, {})
        invoice = report["invoice_totals"][profile.name]
        print(f"{profile.name:<12} {profile.plan:<11} "
              f"{usage.get('query', 0):>8} {invoice:>10,.2f}")

    print("\nperformance:", platform.admin.performance_report())

    # Pay-as-you-go: cost tracks usage inside one plan.
    starters = [profile for profile in profiles
                if profile.plan == "starter"]
    if len(starters) >= 2:
        starters.sort(key=lambda profile: profile.monthly_queries)
        low, high = starters[0], starters[-1]
        low_inv = report["invoice_totals"][low.name]
        high_inv = report["invoice_totals"][high.name]
        print(f"\npay-as-you-go check (starter plan): "
              f"{low.name} ({low.monthly_queries} q/mo) pays "
              f"{low_inv:,.2f}; {high.name} "
              f"({high.monthly_queries} q/mo) pays {high_inv:,.2f}")

    # Contrast: database-per-tenant isolation.
    isolated = OdbisPlatform(mode=TenancyMode.ISOLATED)
    for profile in profiles:
        isolated.provisioning.provision(
            profile.name, profile.name.title(), plan=profile.plan)
    print(f"\nisolated mode would run "
          f"{isolated.tenants.database_count()} operational "
          f"databases for the same fleet — the economy-of-scale "
          f"argument of the paper's Section 2.")


if __name__ == "__main__":
    main()
