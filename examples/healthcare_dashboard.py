"""The paper's Fig. 6: a healthcare dashboard via ad-hoc reporting.

Builds the hospital-admissions warehouse, defines data sets through
the meta-data service, assembles the dashboard with the ad-hoc
reporting module, and renders it for the terminal and as HTML.

Run with::

    python examples/healthcare_dashboard.py [output.html]
"""

import sys

from repro import OdbisPlatform
from repro.core import Channel
from repro.reporting import Dashboard
from repro.workloads import HealthcareWorkload


def main() -> None:
    platform = OdbisPlatform()
    context = platform.provisioning.provision(
        "st-vincent", "St. Vincent Hospital", plan="team")

    # Load a year of synthetic admissions into the tenant warehouse.
    workload = HealthcareWorkload(seed=7)
    count = workload.load(context.warehouse_db, count=2500)
    print(f"loaded {count} admissions")

    # Meta-data service: the data sets behind each dashboard widget.
    platform.metadata.create_dataset(
        "st-vincent", "by-department", "warehouse",
        "SELECT department, COUNT(*) AS admissions, "
        "SUM(cost) AS total_cost, AVG(length_of_stay) AS avg_stay "
        "FROM admissions GROUP BY department ORDER BY department")
    platform.metadata.create_dataset(
        "st-vincent", "by-severity", "warehouse",
        "SELECT severity, COUNT(*) AS admissions FROM admissions "
        "GROUP BY severity")
    platform.metadata.create_dataset(
        "st-vincent", "costly-departments", "warehouse",
        "SELECT department, region, SUM(cost) AS cost "
        "FROM admissions GROUP BY department, region")

    # Ad-hoc reporting: charts + data table, laid out in rows.
    by_department = platform.reporting.adhoc_builder(
        "st-vincent", "by-department")
    by_severity = platform.reporting.adhoc_builder(
        "st-vincent", "by-severity")
    detail = platform.reporting.adhoc_builder(
        "st-vincent", "costly-departments")

    dashboard = Dashboard(
        "healthcare-overview",
        "Admissions, costs and stays across departments")
    dashboard.add_row(
        by_department.bar_chart("admissions-by-department",
                                "department", "admissions"),
        by_severity.pie_chart("admissions-by-severity",
                              "severity", "admissions"),
    )
    dashboard.add_row(
        by_department.line_chart("avg-stay-by-department",
                                 "department", "avg_stay"),
        detail.data_table("top-cost-centres",
                          ["department", "region", "cost"],
                          sort_by="cost", descending=True, limit=8),
    )
    platform.reporting.save_dashboard("st-vincent", dashboard)

    # Deliver to the terminal (mobile channel) and print in full.
    print()
    print(platform.delivery.deliver_dashboard(dashboard,
                                              Channel.MOBILE))
    print()
    from repro.reporting import render_dashboard_text
    print(render_dashboard_text(dashboard))

    # And to a browser (web channel) when an output path is given.
    if len(sys.argv) > 1:
        html = platform.delivery.deliver_dashboard(dashboard,
                                                   Channel.WEB)
        with open(sys.argv[1], "w") as handle:
            handle.write(html)
        print(f"\nwrote {sys.argv[1]}")


if __name__ == "__main__":
    main()
