"""Cube visualization and navigation (paper §3.1, analysis service).

Walks an analyst session: start fully rolled up, drill down into time
and geography, slice to one region, pivot the two visible axes into a
crosstab, and finally drill through one suspicious cell to its raw
fact rows.

Run with::

    python examples/olap_navigation.py
"""

from repro import OdbisPlatform
from repro.reporting import pivot_cellset
from repro.reporting.render import render_table_text
from repro.workloads import RetailWorkload


def show(title, cells):
    print(f"\n--- {title} ---")
    for row in cells.rows[:8]:
        print("  ", row)
    if len(cells.rows) > 8:
        print(f"   ... {len(cells.rows) - 8} more rows")


def main() -> None:
    platform = OdbisPlatform()
    context = platform.provisioning.provision("acme", "Acme",
                                              plan="team")
    workload = RetailWorkload(seed=11)
    workload.build(context.warehouse_db, fact_rows=3000)
    platform.analysis.define_cube("acme", workload.cube_definition())

    navigator = platform.analysis.navigator(
        "acme", "RetailSales", measures=["revenue"])

    show("fully rolled up (grand total)", navigator.current_view())

    navigator.drill_down("Time")
    show("drill-down: revenue by year", navigator.current_view())

    navigator.drill_down("Store")
    show("drill-down: year x region", navigator.current_view())

    navigator.slice("Product", "category", "Electronics")
    show("slice: electronics only", navigator.current_view())

    # Pivot the current two-axis view into a crosstab.
    cells = navigator.current_view()
    print("\n--- pivot (crosstab) ---")
    print(render_table_text(pivot_cellset(cells, "revenue")))

    # Drill through the biggest cell to its underlying fact rows.
    engine = platform.analysis.engine("acme", "RetailSales")
    biggest = max(cells.rows, key=lambda row: row["revenue"] or 0)
    coordinates = [("Time", "year", biggest["Time.year"]),
                   ("Store", "region", biggest["Store.region"]),
                   ("Product", "category", "Electronics")]
    facts = engine.drill_through(coordinates, limit=5)
    print(f"\n--- drill-through {biggest['Time.year']}/"
          f"{biggest['Store.region']} (first 5 fact rows) ---")
    for fact in facts:
        print("  ", fact)

    print("\nnavigation breadcrumbs:")
    for crumb in navigator.breadcrumbs:
        print(f"  - {crumb}")


if __name__ == "__main__":
    main()
