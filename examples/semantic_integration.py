"""Semantic schema integration with ODM (the paper's planned extension).

A hospital group acquires a clinic whose admission system uses a
different vocabulary.  The tenant's ontology (ODM over the metadata
service) bridges the vocabularies, the matcher proposes the column
mapping, and the integration service uses it to load the clinic's
data into the warehouse — semantic data integration end to end.

Run with::

    python examples/semantic_integration.py
"""

from repro import Database, OdbisPlatform
from repro.etl import Rename, TypeCast


def main() -> None:
    platform = OdbisPlatform()
    context = platform.provisioning.provision(
        "st-vincent", "St. Vincent Group", plan="team")

    # The warehouse speaks one vocabulary...
    context.warehouse_db.execute(
        "CREATE TABLE stg_admissions (patient_ref TEXT, "
        "ward TEXT, treatment_cost REAL, admitted DATE)")

    # ...the acquired clinic's extract speaks another.
    clinic = Database("clinic-extract")
    clinic.execute(
        "CREATE TABLE adm_export (case_id TEXT, unit TEXT, "
        "charge TEXT, entry_date TEXT)")
    clinic.executemany(
        "INSERT INTO adm_export VALUES (?, ?, ?, ?)",
        [("C-1", "cardio", "1200.50", "2009-03-01"),
         ("C-2", "onco", "8100.00", "2009-03-02")])
    platform.resources.register_database("st-vincent", "clinic", clinic)
    platform.metadata.create_datasource(
        "st-vincent", "clinic", "repro://clinic")

    # The tenant ontology bridges the two vocabularies.
    odm = platform.metadata.ontology("st-vincent")
    ontology = odm.ontology("care-domain")
    odm.ont_class(ontology, "PatientRef",
                  synonyms=["case_id", "patient_ref"])
    odm.ont_class(ontology, "Ward", synonyms=["unit", "ward"])
    odm.ont_class(ontology, "TreatmentCost",
                  synonyms=["charge", "treatment_cost"])
    odm.ont_class(ontology, "AdmissionDate",
                  synonyms=["entry_date", "admitted"])

    # Ask the metadata service for the mapping.
    matches = platform.metadata.suggest_column_mapping(
        "st-vincent", "clinic", "adm_export",
        "warehouse", "stg_admissions")
    print("proposed column mapping:")
    for match in matches:
        print(f"  {match.source_column:<12} -> "
              f"{match.target_column:<16} "
              f"({match.reason}, confidence {match.confidence})")

    # Turn the proposals into an executable integration job.
    renames = {match.source_column: match.target_column
               for match in matches}
    platform.integration.define_table_copy(
        "st-vincent", "onboard-clinic",
        "clinic", "adm_export", "warehouse", "stg_admissions",
        operators=[
            Rename(renames),
            TypeCast({"treatment_cost": "float", "admitted": "date"}),
        ])
    result = platform.integration.run_job("st-vincent",
                                          "onboard-clinic")
    print(f"\nloaded {result.rows_written} clinic admissions "
          f"into the warehouse")
    rows = context.warehouse_db.query(
        "SELECT patient_ref, ward, treatment_cost "
        "FROM stg_admissions ORDER BY patient_ref")
    for row in rows:
        print(f"  {row}")


if __name__ == "__main__":
    main()
