"""Static analysis of tenant artifacts before they reach the platform.

Walks through the three ways the analyzer subsystem is used:

1. lint a directory of artifacts (what ``python -m repro.analysis.cli``
   does),
2. analyze individual artifacts programmatically and read the
   diagnostics,
3. let the provisioning service reject broken artifacts at
   registration time.

Run with::

    python examples/artifact_linting.py
"""

import pathlib
import tempfile

from repro import OdbisPlatform
from repro.analysis import SqlAnalyzer, lint_rules
from repro.analysis.cli import lint_directory, render_report
from repro.engine import Catalog, make_schema
from repro.errors import ProvisioningError

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def main() -> None:
    # 1. Directory linting — the shipped demo artifacts are clean.
    collector = lint_directory(ARTIFACTS)
    print(f"examples/artifacts: {render_report(collector)}")

    # A broken copy shows what findings look like.  Every finding has
    # a stable ODBnnn code, a severity and a source position.
    with tempfile.TemporaryDirectory() as scratch:
        scratch_dir = pathlib.Path(scratch)
        (scratch_dir / "schema.sql").write_text(
            "CREATE TABLE sales (region TEXT, amount REAL);\n")
        (scratch_dir / "bad.sql").write_text(
            "SELECT colour, SUM(amount)\n"
            "FROM sales\n"
            "GROUP BY region;\n")
        print("\na broken script is reported with positions:")
        print(render_report(lint_directory(scratch_dir)))

    # 2. Programmatic analysis against an explicit catalog.
    catalog = Catalog()
    catalog.add_table(make_schema("usage_facts", [
        ("tenant", "TEXT"), ("amount", "REAL")]))
    findings = SqlAnalyzer(catalog).analyze(
        "SELECT tenant FROM usage_facts WHERE amount > 'lots'")
    print("\ntype checking a single statement:")
    for diagnostic in findings:
        print(f"  {diagnostic}")

    rule_findings = lint_rules(
        'rule "notify"\nwhen\n    u: Usage(amount > 100)\nthen\n'
        '    log("usage by " + other.tenant)\nend')
    print("rule linting finds unbound variables:")
    for diagnostic in rule_findings:
        print(f"  {diagnostic}")

    # 3. The provisioning gate: errors reject the artifact outright.
    platform = OdbisPlatform()
    context = platform.provisioning.provision(
        "acme", "Acme Corp", plan="team")
    context.warehouse_db.execute(
        "CREATE TABLE sales (region TEXT, amount REAL)")
    try:
        platform.provisioning.register_artifact(
            "acme", "sql", "SELECT profit FROM sales",
            name="bad-query.sql")
    except ProvisioningError as error:
        print(f"\nprovisioning rejected the artifact:\n  {error}")

    accepted = platform.provisioning.register_artifact(
        "acme", "sql",
        "SELECT region, SUM(amount) AS total FROM sales "
        "GROUP BY region", name="totals.sql")
    print(f"clean artifact accepted "
          f"({len(accepted)} finding(s)); artifact log: "
          f"{platform.provisioning.artifact_log[-1]}")


if __name__ == "__main__":
    main()
