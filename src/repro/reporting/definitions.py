"""Dashboard definitions: stored specs re-rendered from live data.

A :class:`DashboardDefinition` records *how* to build a dashboard —
which data set feeds each chart/table spec, laid out in rows — so the
reporting service can persist it and re-render it on every access with
fresh data (the "publish dashboards" behaviour of real BI suites).
Definitions serialize to/from JSON-able dicts for storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.errors import ReportDefinitionError
from repro.reporting.adhoc import AdhocReportBuilder
from repro.reporting.model import ChartSpec, Dashboard, DataTableSpec

#: dataset-name -> rows; how definitions fetch data at render time.
DatasetResolver = Callable[[str], List[Dict[str, Any]]]


@dataclass
class ElementDefinition:
    """One widget: a spec plus the data set feeding it."""

    dataset: str
    spec: Any  # ChartSpec | DataTableSpec

    def to_dict(self) -> Dict[str, Any]:
        if isinstance(self.spec, ChartSpec):
            return {
                "kind": "chart",
                "dataset": self.dataset,
                "name": self.spec.name,
                "chart_kind": self.spec.kind,
                "category": self.spec.category,
                "value": self.spec.value,
                "aggregator": self.spec.aggregator,
            }
        return {
            "kind": "table",
            "dataset": self.dataset,
            "name": self.spec.name,
            "columns": list(self.spec.columns),
            "sort_by": self.spec.sort_by,
            "descending": self.spec.descending,
            "limit": self.spec.limit,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ElementDefinition":
        kind = payload.get("kind")
        if kind == "chart":
            spec: Any = ChartSpec(
                payload["name"], payload["chart_kind"],
                payload["category"], payload["value"],
                payload.get("aggregator", "sum"))
        elif kind == "table":
            spec = DataTableSpec(
                payload["name"], list(payload["columns"]),
                payload.get("sort_by"),
                bool(payload.get("descending", False)),
                payload.get("limit"))
        else:
            raise ReportDefinitionError(
                f"unknown element kind {kind!r}")
        return cls(payload["dataset"], spec)


class DashboardDefinition:
    """A named, persistable dashboard layout."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._rows: List[List[ElementDefinition]] = []

    def add_row(self, *elements: ElementDefinition) \
            -> "DashboardDefinition":
        if not elements:
            raise ReportDefinitionError(
                "a dashboard row needs at least one element")
        self._rows.append(list(elements))
        return self

    def chart(self, dataset: str, name: str, kind: str,
              category: str, value: str,
              aggregator: str = "sum") -> ElementDefinition:
        return ElementDefinition(
            dataset, ChartSpec(name, kind, category, value, aggregator))

    def table(self, dataset: str, name: str,
              columns: Sequence[str], sort_by: str = None,
              descending: bool = False,
              limit: int = None) -> ElementDefinition:
        return ElementDefinition(
            dataset, DataTableSpec(name, list(columns), sort_by,
                                   descending, limit))

    @property
    def rows(self) -> List[List[ElementDefinition]]:
        return [list(row) for row in self._rows]

    def datasets(self) -> List[str]:
        """The distinct data sets this dashboard reads."""
        seen: List[str] = []
        for row in self._rows:
            for element in row:
                if element.dataset not in seen:
                    seen.append(element.dataset)
        return seen

    # -- rendering ---------------------------------------------------------------

    def render(self, resolve: DatasetResolver) -> Dashboard:
        """Materialize the dashboard from live data."""
        if not self._rows:
            raise ReportDefinitionError(
                f"dashboard {self.name!r} has no rows")
        builders = {
            dataset: AdhocReportBuilder(resolve(dataset))
            for dataset in self.datasets()
        }
        dashboard = Dashboard(self.name, self.description)
        for row in self._rows:
            rendered = []
            for element in row:
                builder = builders[element.dataset]
                if isinstance(element.spec, ChartSpec):
                    rendered.append(builder.chart(element.spec))
                else:
                    rendered.append(builder.table(element.spec))
            dashboard.add_row(*rendered)
        return dashboard

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "rows": [[element.to_dict() for element in row]
                     for row in self._rows],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) \
            -> "DashboardDefinition":
        definition = cls(payload["name"],
                         payload.get("description", ""))
        for row in payload.get("rows", []):
            definition.add_row(*[
                ElementDefinition.from_dict(element)
                for element in row
            ])
        return definition
