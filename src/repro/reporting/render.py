"""Renderers: dashboards and report elements to text and HTML.

The text renderer draws ASCII bar charts and aligned tables for
terminal delivery; the HTML renderer emits a self-contained document
for browser delivery — the two channels the information delivery
service routes to by default.
"""

from __future__ import annotations

import html
from typing import Any, List

from repro.errors import RenderError
from repro.reporting.model import Dashboard, RenderedChart, RenderedTable

_BAR_WIDTH = 40


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def render_chart_text(chart: RenderedChart) -> str:
    """An ASCII bar representation of a chart (any kind)."""
    lines = [f"=== {chart.name} ({chart.spec.kind}) ==="]
    numeric = [value for value in chart.values()
               if isinstance(value, (int, float))]
    peak = max((abs(value) for value in numeric), default=0)
    label_width = max(
        (len(_format_value(category))
         for category in chart.categories()), default=0)
    for category, value in chart.series:
        label = _format_value(category).rjust(label_width)
        if isinstance(value, (int, float)) and peak > 0:
            bar = "#" * max(1, round(abs(value) / peak * _BAR_WIDTH))
        else:
            bar = ""
        lines.append(f"{label} | {bar} {_format_value(value)}")
    return "\n".join(lines)


def render_table_text(table: RenderedTable) -> str:
    """An aligned plain-text table."""
    columns = table.spec.columns
    widths = {column: len(column) for column in columns}
    formatted_rows: List[List[str]] = []
    for row in table.rows:
        formatted = [_format_value(row.get(column)) for column in columns]
        formatted_rows.append(formatted)
        for column, text in zip(columns, formatted):
            widths[column] = max(widths[column], len(text))
    header = " | ".join(column.ljust(widths[column])
                        for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [f"=== {table.name} ===", header, separator]
    for formatted in formatted_rows:
        lines.append(" | ".join(
            text.ljust(widths[column])
            for column, text in zip(columns, formatted)))
    return "\n".join(lines)


def render_element_text(element: Any) -> str:
    if isinstance(element, RenderedChart):
        return render_chart_text(element)
    if isinstance(element, RenderedTable):
        return render_table_text(element)
    raise RenderError(
        f"cannot render a {type(element).__name__} as text")


def render_dashboard_text(dashboard: Dashboard) -> str:
    """The whole dashboard as plain text (row by row)."""
    sections = [f"### Dashboard: {dashboard.name} ###"]
    if dashboard.description:
        sections.append(dashboard.description)
    for row in dashboard.rows:
        for element in row:
            sections.append(render_element_text(element))
    return "\n\n".join(sections)


# -- HTML ---------------------------------------------------------------------


def _chart_html(chart: RenderedChart) -> str:
    rows = []
    numeric = [value for value in chart.values()
               if isinstance(value, (int, float))]
    peak = max((abs(value) for value in numeric), default=0)
    for category, value in chart.series:
        if isinstance(value, (int, float)) and peak > 0:
            width = max(1, round(abs(value) / peak * 100))
        else:
            width = 0
        rows.append(
            "<tr>"
            f"<td>{html.escape(_format_value(category))}</td>"
            f"<td><div class='bar' style='width:{width}%'></div></td>"
            f"<td>{html.escape(_format_value(value))}</td>"
            "</tr>")
    return (
        f"<div class='chart chart-{chart.spec.kind}'>"
        f"<h3>{html.escape(chart.name)}</h3>"
        f"<table>{''.join(rows)}</table></div>")


def _table_html(table: RenderedTable) -> str:
    header = "".join(
        f"<th>{html.escape(column)}</th>"
        for column in table.spec.columns)
    body = []
    for row in table.rows:
        cells = "".join(
            f"<td>{html.escape(_format_value(row.get(column)))}</td>"
            for column in table.spec.columns)
        body.append(f"<tr>{cells}</tr>")
    return (
        f"<div class='data-table'><h3>{html.escape(table.name)}</h3>"
        f"<table><thead><tr>{header}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table></div>")


_STYLE = (
    "body{font-family:sans-serif}"
    ".dashboard-row{display:flex;gap:1em}"
    ".bar{background:#4a90d9;height:1em}"
    "table{border-collapse:collapse}"
    "td,th{padding:2px 8px;border:1px solid #ccc}"
)


def render_dashboard_html(dashboard: Dashboard) -> str:
    """A self-contained HTML document for the dashboard."""
    rows_html = []
    for row in dashboard.rows:
        cells = []
        for element in row:
            if isinstance(element, RenderedChart):
                cells.append(_chart_html(element))
            elif isinstance(element, RenderedTable):
                cells.append(_table_html(element))
            else:
                raise RenderError(
                    f"cannot render a {type(element).__name__} as HTML")
        rows_html.append(
            f"<div class='dashboard-row'>{''.join(cells)}</div>")
    description = (
        f"<p>{html.escape(dashboard.description)}</p>"
        if dashboard.description else "")
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{html.escape(dashboard.name)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(dashboard.name)}</h1>{description}"
        f"{''.join(rows_html)}</body></html>")
