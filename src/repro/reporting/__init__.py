"""Reporting substrate: BIRT-style designs, ad-hoc reports, dashboards.

The reporting service (RS) in the paper supports two paths, both
implemented here:

* **BIRT reporting** — upload an XML report design and execute it
  (:mod:`repro.reporting.birt`),
* **ad-hoc reporting** — assemble chart reports, data-table reports and
  dashboards programmatically (:mod:`repro.reporting.adhoc`).

Rendering to text and HTML lives in :mod:`repro.reporting.render`.
"""

from repro.reporting.adhoc import AdhocReportBuilder
from repro.reporting.birt import BirtRunner, ReportDesign, parse_report_design
from repro.reporting.definitions import DashboardDefinition, ElementDefinition
from repro.reporting.pivot import pivot_cellset
from repro.reporting.model import (
    ChartSpec,
    Dashboard,
    DataTableSpec,
    RenderedChart,
    RenderedTable,
)
from repro.reporting.render import render_dashboard_html, render_dashboard_text

__all__ = [
    "AdhocReportBuilder",
    "BirtRunner",
    "ChartSpec",
    "Dashboard",
    "DashboardDefinition",
    "DataTableSpec",
    "ElementDefinition",
    "RenderedChart",
    "RenderedTable",
    "ReportDesign",
    "parse_report_design",
    "pivot_cellset",
    "render_dashboard_html",
    "render_dashboard_text",
]
