"""Pivot (crosstab) rendering of OLAP cell sets.

Turns a two-axis cell set into the classic crosstab the analysis
service shows during cube navigation: first axis as rows, second as
columns, one measure in the cells, with row/column totals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReportDefinitionError
from repro.olap.engine import CellSet
from repro.reporting.model import DataTableSpec, RenderedTable

_TOTAL_LABEL = "TOTAL"


def pivot_cellset(cells: CellSet, measure: str,
                  name: Optional[str] = None,
                  totals: bool = True) -> RenderedTable:
    """Crosstab a 2-axis cell set on ``measure``.

    The first axis becomes the row header, the second axis's members
    become columns.  With ``totals`` a TOTAL column and row are added
    (sums; missing cells count as 0 only if any cell is present).
    """
    if measure not in cells.measures:
        raise ReportDefinitionError(
            f"cell set has no measure {measure!r}")
    if len(cells.axes) != 2:
        raise ReportDefinitionError(
            f"pivot needs exactly 2 axes, cell set has "
            f"{len(cells.axes)}")
    row_axis, column_axis = cells.axis_columns()
    row_members: List[Any] = []
    column_members: List[Any] = []
    values: Dict[tuple, Any] = {}
    for record in cells.rows:
        row_member = record[row_axis]
        column_member = record[column_axis]
        if row_member not in row_members:
            row_members.append(row_member)
        if column_member not in column_members:
            column_members.append(column_member)
        values[(row_member, column_member)] = record[measure]

    header = [row_axis] + [str(member) for member in column_members]
    if totals:
        header.append(_TOTAL_LABEL)
    rows: List[Dict[str, Any]] = []
    column_sums: Dict[str, float] = {}
    for row_member in row_members:
        row: Dict[str, Any] = {row_axis: row_member}
        row_total = 0.0
        saw_value = False
        for column_member in column_members:
            value = values.get((row_member, column_member))
            row[str(column_member)] = value
            if isinstance(value, (int, float)):
                row_total += value
                saw_value = True
                column_sums[str(column_member)] = \
                    column_sums.get(str(column_member), 0.0) + value
        if totals:
            row[_TOTAL_LABEL] = row_total if saw_value else None
        rows.append(row)
    if totals and rows:
        grand: Dict[str, Any] = {row_axis: _TOTAL_LABEL}
        grand_total = 0.0
        for column_member in column_members:
            column_total = column_sums.get(str(column_member))
            grand[str(column_member)] = column_total
            if column_total is not None:
                grand_total += column_total
        grand[_TOTAL_LABEL] = grand_total
        rows.append(grand)
    spec = DataTableSpec(
        name or f"pivot:{measure}", columns=header)
    return RenderedTable(spec, rows)
