"""Ad-hoc reporting: build charts, tables and dashboards from rows.

"An ad-hoc reporting module which offers an easy way to define chart
reports, data-table reports and to build dashboards" (paper §3.3).
The builder consumes plain row dictionaries — typically a DataSet from
the metadata service or a cube cell set — and materializes report
elements.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReportDefinitionError
from repro.reporting.model import (
    ChartSpec,
    Dashboard,
    DataTableSpec,
    RenderedChart,
    RenderedTable,
)

Row = Dict[str, Any]


class AdhocReportBuilder:
    """Materializes report elements from a row set."""

    def __init__(self, rows: Sequence[Row]):
        self.rows = [dict(row) for row in rows]

    # -- charts -------------------------------------------------------------------

    def chart(self, spec: ChartSpec) -> RenderedChart:
        """Aggregate ``spec.value`` per ``spec.category`` member."""
        groups: Dict[Any, List[Any]] = {}
        order: List[Any] = []
        for row in self.rows:
            if spec.category not in row:
                raise ReportDefinitionError(
                    f"chart {spec.name!r}: rows lack category column "
                    f"{spec.category!r}")
            key = row[spec.category]
            if key not in groups:
                groups[key] = []
                order.append(key)
            value = row.get(spec.value)
            if value is not None:
                groups[key].append(value)
        series: List[Tuple[Any, Any]] = []
        for key in order:
            values = groups[key]
            if spec.aggregator == "count":
                aggregated: Any = len(values)
            elif not values:
                aggregated = None
            elif spec.aggregator == "sum":
                aggregated = sum(values)
            elif spec.aggregator == "avg":
                aggregated = sum(values) / len(values)
            elif spec.aggregator == "min":
                aggregated = min(values)
            else:
                aggregated = max(values)
            series.append((key, aggregated))
        return RenderedChart(spec, series)

    def bar_chart(self, name: str, category: str, value: str,
                  aggregator: str = "sum") -> RenderedChart:
        return self.chart(ChartSpec(name, "bar", category, value,
                                    aggregator))

    def line_chart(self, name: str, category: str, value: str,
                   aggregator: str = "sum") -> RenderedChart:
        return self.chart(ChartSpec(name, "line", category, value,
                                    aggregator))

    def pie_chart(self, name: str, category: str, value: str,
                  aggregator: str = "sum") -> RenderedChart:
        return self.chart(ChartSpec(name, "pie", category, value,
                                    aggregator))

    # -- tables -------------------------------------------------------------------

    def table(self, spec: DataTableSpec) -> RenderedTable:
        missing = [column for column in spec.columns
                   if self.rows and column not in self.rows[0]]
        if missing:
            raise ReportDefinitionError(
                f"table {spec.name!r}: rows lack column {missing[0]!r}")
        rows = [
            {column: row.get(column) for column in spec.columns}
            for row in self.rows
        ]
        if spec.sort_by is not None:
            if spec.sort_by not in spec.columns:
                raise ReportDefinitionError(
                    f"table {spec.name!r}: sort column "
                    f"{spec.sort_by!r} is not in the table")
            present = [row for row in rows
                       if row[spec.sort_by] is not None]
            absent = [row for row in rows if row[spec.sort_by] is None]
            present.sort(key=lambda row: row[spec.sort_by],
                         reverse=spec.descending)
            rows = present + absent  # NULLs always sort last
        if spec.limit is not None:
            rows = rows[:spec.limit]
        return RenderedTable(spec, rows)

    def data_table(self, name: str, columns: Sequence[str],
                   sort_by: Optional[str] = None,
                   descending: bool = False,
                   limit: Optional[int] = None) -> RenderedTable:
        return self.table(DataTableSpec(
            name, list(columns), sort_by, descending, limit))
