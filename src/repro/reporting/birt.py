"""BIRT-style XML report designs and their runner.

A report design is an XML document declaring parameters, data sets
(SQL over a data source) and report items (tables and charts) bound to
those data sets — structurally the same contract as a ``.rptdesign``
file.  :class:`BirtRunner` executes a design against an embedded
database, producing rendered tables and charts.

Example design::

    <report name="regional-sales">
      <parameter name="year" type="int" default="2020"/>
      <data-set name="sales"
                query="SELECT region, revenue FROM v WHERE year = :year"/>
      <table name="by-region" data-set="sales"
             columns="region,revenue"/>
      <chart name="rev" kind="bar" data-set="sales"
             category="region" value="revenue"/>
    </report>
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.database import Database
from repro.errors import RenderError, ReportDefinitionError
from repro.reporting.adhoc import AdhocReportBuilder
from repro.reporting.model import (
    ChartSpec,
    DataTableSpec,
    RenderedChart,
    RenderedTable,
)

_PARAM_TYPES = {
    "str": str,
    "int": int,
    "float": float,
}

_NAMED_PARAM = re.compile(r":([A-Za-z_][A-Za-z0-9_]*)")


@dataclass
class ReportParameter:
    name: str
    type_name: str = "str"
    default: Any = None
    required: bool = False

    def coerce(self, value: Any) -> Any:
        converter = _PARAM_TYPES[self.type_name]
        try:
            return converter(value)
        except (TypeError, ValueError) as exc:
            raise RenderError(
                f"parameter {self.name!r}: cannot convert "
                f"{value!r} to {self.type_name}") from exc


@dataclass
class ReportDataSet:
    name: str
    query: str


@dataclass
class ReportItem:
    kind: str  # 'table' | 'chart'
    data_set: str
    spec: Any  # DataTableSpec | ChartSpec


@dataclass
class ReportDesign:
    """A parsed report design."""

    name: str
    parameters: List[ReportParameter] = field(default_factory=list)
    data_sets: List[ReportDataSet] = field(default_factory=list)
    items: List[ReportItem] = field(default_factory=list)

    def parameter(self, name: str) -> ReportParameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ReportDefinitionError(
            f"report {self.name!r} has no parameter {name!r}")

    def data_set(self, name: str) -> ReportDataSet:
        for data_set in self.data_sets:
            if data_set.name == name:
                return data_set
        raise ReportDefinitionError(
            f"report {self.name!r} has no data set {name!r}")


def parse_report_design(document: str) -> ReportDesign:
    """Parse a report-design XML document."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ReportDefinitionError(
            f"malformed report design: {exc}") from exc
    if root.tag != "report":
        raise ReportDefinitionError(
            f"expected <report> root, found <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ReportDefinitionError("report design needs a name")
    design = ReportDesign(name=name)

    for node in root:
        if node.tag == "parameter":
            type_name = node.get("type", "str")
            if type_name not in _PARAM_TYPES:
                raise ReportDefinitionError(
                    f"parameter {node.get('name')!r}: unknown type "
                    f"{type_name!r}")
            parameter = ReportParameter(
                name=_required(node, "name"),
                type_name=type_name,
                required=node.get("required", "false") == "true")
            default = node.get("default")
            if default is not None:
                parameter.default = parameter.coerce(default)
            design.parameters.append(parameter)
        elif node.tag == "data-set":
            design.data_sets.append(ReportDataSet(
                name=_required(node, "name"),
                query=_required(node, "query")))
        elif node.tag == "table":
            columns = [column.strip() for column in
                       _required(node, "columns").split(",")]
            spec = DataTableSpec(
                name=_required(node, "name"),
                columns=columns,
                sort_by=node.get("sort-by"),
                descending=node.get("descending", "false") == "true",
                limit=int(node.get("limit"))
                if node.get("limit") else None)
            design.items.append(ReportItem(
                "table", _required(node, "data-set"), spec))
        elif node.tag == "chart":
            spec = ChartSpec(
                name=_required(node, "name"),
                kind=_required(node, "kind"),
                category=_required(node, "category"),
                value=_required(node, "value"),
                aggregator=node.get("aggregator", "sum"))
            design.items.append(ReportItem(
                "chart", _required(node, "data-set"), spec))
        else:
            raise ReportDefinitionError(
                f"unknown report element <{node.tag}>")

    known_sets = {data_set.name for data_set in design.data_sets}
    for item in design.items:
        if item.data_set not in known_sets:
            raise ReportDefinitionError(
                f"item {item.spec.name!r} references unknown "
                f"data set {item.data_set!r}")
    if not design.items:
        raise ReportDefinitionError(
            f"report {name!r} declares no tables or charts")
    return design


def _required(node: ET.Element, attribute: str) -> str:
    value = node.get(attribute)
    if value is None:
        raise ReportDefinitionError(
            f"<{node.tag}> is missing the {attribute!r} attribute")
    return value


@dataclass
class ReportOutput:
    """The result of executing a report design."""

    design: ReportDesign
    elements: List[Any]  # RenderedChart | RenderedTable
    parameters: Dict[str, Any]

    def element(self, name: str) -> Any:
        for element in self.elements:
            if element.name == name:
                return element
        raise RenderError(
            f"report output has no element {name!r}")


class BirtRunner:
    """Executes report designs against an embedded database."""

    def __init__(self, database: Database):
        self.database = database

    def run(self, design: ReportDesign,
            parameters: Optional[Dict[str, Any]] = None) -> ReportOutput:
        values = self._resolve_parameters(design, parameters or {})
        data: Dict[str, List[Dict[str, Any]]] = {}
        for data_set in design.data_sets:
            sql, params = self._bind(data_set.query, values)
            data[data_set.name] = self.database.query(sql, params)
        elements: List[Any] = []
        for item in design.items:
            builder = AdhocReportBuilder(data[item.data_set])
            if item.kind == "table":
                elements.append(builder.table(item.spec))
            else:
                elements.append(builder.chart(item.spec))
        return ReportOutput(design, elements, values)

    def _resolve_parameters(self, design: ReportDesign,
                            given: Dict[str, Any]) -> Dict[str, Any]:
        known = {parameter.name for parameter in design.parameters}
        unknown = [name for name in given if name not in known]
        if unknown:
            raise RenderError(
                f"report {design.name!r} has no parameter "
                f"{unknown[0]!r}")
        values: Dict[str, Any] = {}
        for parameter in design.parameters:
            if parameter.name in given:
                values[parameter.name] = parameter.coerce(
                    given[parameter.name])
            elif parameter.default is not None:
                values[parameter.name] = parameter.default
            elif parameter.required:
                raise RenderError(
                    f"missing required parameter {parameter.name!r}")
            else:
                values[parameter.name] = None
        return values

    @staticmethod
    def _bind(query: str, values: Dict[str, Any]) \
            -> Tuple[str, Tuple[Any, ...]]:
        """Replace ``:name`` placeholders with positional parameters."""
        ordered: List[Any] = []

        def substitute(match: "re.Match[str]") -> str:
            name = match.group(1)
            if name not in values:
                raise RenderError(
                    f"query references unknown parameter {name!r}")
            ordered.append(values[name])
            return "?"

        sql = _NAMED_PARAM.sub(substitute, query)
        return sql, tuple(ordered)
