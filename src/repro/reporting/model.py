"""Report element specifications and their rendered forms.

Specs describe *what* to show (a chart of measure Y by category X, a
table of columns); rendered elements carry the materialized data.  A
:class:`Dashboard` is a named grid of rendered elements — the artefact
of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReportDefinitionError

CHART_KINDS = ("bar", "line", "pie")


@dataclass
class ChartSpec:
    """A chart definition: aggregate ``value`` by ``category``."""

    name: str
    kind: str
    category: str
    value: str
    aggregator: str = "sum"

    def __post_init__(self) -> None:
        if self.kind not in CHART_KINDS:
            raise ReportDefinitionError(
                f"chart {self.name!r}: kind must be one of "
                f"{CHART_KINDS}, got {self.kind!r}")
        if self.aggregator not in ("sum", "avg", "min", "max", "count"):
            raise ReportDefinitionError(
                f"chart {self.name!r}: bad aggregator "
                f"{self.aggregator!r}")


@dataclass
class DataTableSpec:
    """A tabular report definition."""

    name: str
    columns: List[str]
    sort_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise ReportDefinitionError(
                f"data table {self.name!r} needs at least one column")


@dataclass
class RenderedChart:
    """A chart with its materialized (category, value) series."""

    spec: ChartSpec
    series: List[Tuple[Any, Any]]

    @property
    def name(self) -> str:
        return self.spec.name

    def categories(self) -> List[Any]:
        return [category for category, _value in self.series]

    def values(self) -> List[Any]:
        return [value for _category, value in self.series]


@dataclass
class RenderedTable:
    """A data table with its materialized rows."""

    spec: DataTableSpec
    rows: List[Dict[str, Any]]

    @property
    def name(self) -> str:
        return self.spec.name

    def column_values(self, column: str) -> List[Any]:
        if column not in self.spec.columns:
            raise ReportDefinitionError(
                f"table {self.name!r} has no column {column!r}")
        return [row.get(column) for row in self.rows]


class Dashboard:
    """A named collection of rendered report elements laid out in rows."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._rows: List[List[Any]] = []

    def add_row(self, *elements: Any) -> "Dashboard":
        """Add one layout row of charts/tables."""
        if not elements:
            raise ReportDefinitionError(
                "a dashboard row needs at least one element")
        for element in elements:
            if not isinstance(element, (RenderedChart, RenderedTable)):
                raise ReportDefinitionError(
                    f"dashboards hold rendered charts/tables, "
                    f"got {type(element).__name__}")
        self._rows.append(list(elements))
        return self

    @property
    def rows(self) -> List[List[Any]]:
        return [list(row) for row in self._rows]

    def element_names(self) -> List[str]:
        return [element.name for row in self._rows for element in row]

    def element(self, name: str) -> Any:
        for row in self._rows:
            for element in row:
                if element.name == name:
                    return element
        raise ReportDefinitionError(
            f"dashboard {self.name!r} has no element {name!r}")

    def __len__(self) -> int:
        return sum(len(row) for row in self._rows)
