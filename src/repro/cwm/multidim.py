"""CWM OLAP (multidimensional) package: cubes, dimensions, hierarchies."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def multidim_classes() -> List[MetaClass]:
    """The metaclasses of the CWM OLAP package."""
    return [
        MetaClass("OlapSchema", superclass="Package"),
        MetaClass(
            "Cube",
            superclass="Classifier",
            attributes=[
                MetaAttribute("isVirtual", "boolean", default=False),
            ],
            references=[
                MetaReference("olapSchema", "OlapSchema"),
                MetaReference("cubeDimensionAssociation",
                              "CubeDimensionAssociation",
                              many=True, composite=True),
                MetaReference("factTable", "Table"),
            ],
        ),
        MetaClass(
            "Dimension",
            superclass="Classifier",
            attributes=[
                MetaAttribute("isTime", "boolean", default=False),
                MetaAttribute("isMeasure", "boolean", default=False),
            ],
            references=[
                MetaReference("olapSchema", "OlapSchema"),
                MetaReference("hierarchy", "Hierarchy",
                              many=True, composite=True),
                MetaReference("dimensionTable", "Table"),
            ],
        ),
        MetaClass(
            "Hierarchy",
            superclass="ModelElement",
            references=[
                MetaReference("level", "Level", many=True,
                              composite=True),
            ],
        ),
        MetaClass(
            "Level",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("ordinal", "integer", default=0),
            ],
            references=[
                MetaReference("keyColumn", "Column"),
            ],
        ),
        MetaClass(
            "Measure",
            superclass="Feature",
            attributes=[
                MetaAttribute("aggregator", "string", default="sum"),
            ],
            references=[
                MetaReference("column", "Column"),
            ],
        ),
        MetaClass(
            "CubeDimensionAssociation",
            superclass="ModelElement",
            references=[
                MetaReference("dimension", "Dimension", required=True),
                MetaReference("foreignKeyColumn", "Column"),
            ],
        ),
    ]


class OlapBuilder:
    """Ergonomic construction of CWM OLAP models in an extent."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def olap_schema(self, name: str) -> MofElement:
        return self.extent.create("OlapSchema", name=name)

    def cube(self, schema: MofElement, name: str,
             fact_table: Optional[MofElement] = None) -> MofElement:
        cube = self.extent.create("Cube", name=name)
        cube.link("olapSchema", schema)
        schema.link("ownedElement", cube)
        if fact_table is not None:
            cube.link("factTable", fact_table)
        return cube

    def dimension(self, schema: MofElement, name: str,
                  is_time: bool = False,
                  dimension_table: Optional[MofElement] = None) \
            -> MofElement:
        dimension = self.extent.create(
            "Dimension", name=name, isTime=is_time)
        dimension.link("olapSchema", schema)
        schema.link("ownedElement", dimension)
        if dimension_table is not None:
            dimension.link("dimensionTable", dimension_table)
        return dimension

    def hierarchy(self, dimension: MofElement, name: str,
                  level_names: Sequence[str] = ()) -> MofElement:
        hierarchy = self.extent.create("Hierarchy", name=name)
        dimension.link("hierarchy", hierarchy)
        for ordinal, level_name in enumerate(level_names):
            level = self.extent.create(
                "Level", name=level_name, ordinal=ordinal)
            hierarchy.link("level", level)
        return hierarchy

    def measure(self, cube: MofElement, name: str,
                aggregator: str = "sum",
                column: Optional[MofElement] = None) -> MofElement:
        measure = self.extent.create(
            "Measure", name=name, aggregator=aggregator)
        cube.link("feature", measure)
        if column is not None:
            measure.link("column", column)
        return measure

    def associate(self, cube: MofElement, dimension: MofElement,
                  foreign_key_column: Optional[MofElement] = None) \
            -> MofElement:
        association = self.extent.create(
            "CubeDimensionAssociation",
            name=f"{cube.name}-{dimension.name}")
        association.link("dimension", dimension)
        if foreign_key_column is not None:
            association.link("foreignKeyColumn", foreign_key_column)
        cube.link("cubeDimensionAssociation", association)
        return association

    # -- introspection --------------------------------------------------------------

    @staticmethod
    def dimensions_of(cube: MofElement) -> List[MofElement]:
        return [association.ref("dimension")
                for association in cube.refs("cubeDimensionAssociation")]

    @staticmethod
    def measures_of(cube: MofElement) -> List[MofElement]:
        return [feature for feature in cube.refs("feature")
                if feature.class_name == "Measure"]

    @staticmethod
    def levels_of(dimension: MofElement) -> List[MofElement]:
        levels: List[MofElement] = []
        for hierarchy in dimension.refs("hierarchy"):
            levels.extend(hierarchy.refs("level"))
        return sorted(levels, key=lambda level: level.get("ordinal") or 0)
