"""CWMX-style Business Nomenclature package.

Glossaries, terms and the mapping from business vocabulary to technical
model elements — the "semantic mapping between standard concepts
provided by CWM and business concepts" the paper's domain model
supports.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def business_classes() -> List[MetaClass]:
    """The metaclasses of the Business Nomenclature package."""
    return [
        MetaClass("Glossary", superclass="Package"),
        MetaClass(
            "Taxonomy",
            superclass="Package",
        ),
        MetaClass(
            "Concept",
            superclass="ModelElement",
            references=[
                MetaReference("taxonomy", "Taxonomy"),
                MetaReference("narrower", "Concept", many=True),
            ],
        ),
        MetaClass(
            "Term",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("definition", "string"),
                MetaAttribute("example", "string"),
            ],
            references=[
                MetaReference("glossary", "Glossary"),
                MetaReference("concept", "Concept"),
                MetaReference("relatedElement", "ModelElement",
                              many=True),
                MetaReference("synonym", "Term", many=True),
                MetaReference("preferredTerm", "Term"),
            ],
        ),
    ]


class BusinessBuilder:
    """Ergonomic construction of business nomenclature models."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def glossary(self, name: str) -> MofElement:
        return self.extent.create("Glossary", name=name)

    def taxonomy(self, name: str) -> MofElement:
        return self.extent.create("Taxonomy", name=name)

    def concept(self, taxonomy: MofElement, name: str,
                broader: Optional[MofElement] = None) -> MofElement:
        concept = self.extent.create("Concept", name=name)
        concept.link("taxonomy", taxonomy)
        taxonomy.link("ownedElement", concept)
        if broader is not None:
            broader.link("narrower", concept)
        return concept

    def term(self, glossary: MofElement, name: str,
             definition: Optional[str] = None,
             concept: Optional[MofElement] = None) -> MofElement:
        term = self.extent.create("Term", name=name)
        if definition is not None:
            term.set("definition", definition)
        term.link("glossary", glossary)
        glossary.link("ownedElement", term)
        if concept is not None:
            term.link("concept", concept)
        return term

    def relate(self, term: MofElement,
               element: MofElement) -> MofElement:
        """Attach a technical model element to a business term."""
        term.link("relatedElement", element)
        return term

    @staticmethod
    def terms_of(glossary: MofElement) -> List[MofElement]:
        return [element for element in glossary.refs("ownedElement")
                if element.class_name == "Term"]
