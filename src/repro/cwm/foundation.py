"""CWM Core (foundation) package.

The abstract backbone every other CWM package extends: Element,
ModelElement (named things), Namespace (owners), Package and Classifier
with Features — a faithful trimming of the CWM Core class diagram.
"""

from __future__ import annotations

from typing import List

from repro.mof.kernel import MetaAttribute, MetaClass, MetaReference


def foundation_classes() -> List[MetaClass]:
    """The metaclasses of the CWM Core package."""
    return [
        MetaClass("Element", abstract=True),
        MetaClass(
            "ModelElement",
            superclass="Element",
            abstract=True,
            attributes=[
                MetaAttribute("name", "string", required=True),
                MetaAttribute("description", "string"),
                MetaAttribute("visibility", "string", default="public"),
            ],
        ),
        MetaClass(
            "Namespace",
            superclass="ModelElement",
            abstract=True,
            references=[
                MetaReference("ownedElement", "ModelElement",
                              many=True, composite=True),
            ],
        ),
        MetaClass("Package", superclass="Namespace"),
        MetaClass(
            "Classifier",
            superclass="Namespace",
            abstract=True,
            references=[
                MetaReference("feature", "Feature",
                              many=True, composite=True),
            ],
        ),
        MetaClass(
            "Feature",
            superclass="ModelElement",
            abstract=True,
        ),
        MetaClass(
            "Attribute",
            superclass="Feature",
            attributes=[
                MetaAttribute("type", "string"),
            ],
        ),
        MetaClass(
            "DataType",
            superclass="Classifier",
            attributes=[
                MetaAttribute("typeCode", "string"),
            ],
        ),
        MetaClass(
            "Expression",
            superclass="Element",
            attributes=[
                MetaAttribute("body", "string", required=True),
                MetaAttribute("language", "string", default="sql"),
            ],
        ),
        MetaClass(
            "Dependency",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("kind", "string"),
            ],
            references=[
                MetaReference("client", "ModelElement", many=True),
                MetaReference("supplier", "ModelElement", many=True),
            ],
        ),
        MetaClass(
            "TaggedValue",
            superclass="Element",
            attributes=[
                MetaAttribute("tag", "string", required=True),
                MetaAttribute("value", "string"),
            ],
            references=[
                MetaReference("modelElement", "ModelElement"),
            ],
        ),
    ]
