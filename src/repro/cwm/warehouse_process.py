"""CWM Warehouse Process package: scheduled warehouse operations.

Describes *when and how* transformation activities run — the metadata
behind the integration service's job scheduling.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def warehouse_process_classes() -> List[MetaClass]:
    """The metaclasses of the CWM Warehouse Process package."""
    return [
        MetaClass(
            "WarehouseProcess",
            superclass="ModelElement",
            references=[
                MetaReference("activity", "TransformationActivity"),
                MetaReference("event", "WarehouseEvent", many=True,
                              composite=True),
            ],
        ),
        MetaClass(
            "WarehouseEvent",
            superclass="ModelElement",
            abstract=True,
        ),
        MetaClass(
            "ScheduleEvent",
            superclass="WarehouseEvent",
            attributes=[
                MetaAttribute("frequency", "string", required=True),
                MetaAttribute("startTime", "string"),
            ],
        ),
        MetaClass(
            "CascadeEvent",
            superclass="WarehouseEvent",
            references=[
                MetaReference("triggeringProcess", "WarehouseProcess",
                              required=True),
            ],
        ),
        MetaClass(
            "ProcessExecution",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("status", "string", default="pending"),
                MetaAttribute("startedAt", "string"),
                MetaAttribute("finishedAt", "string"),
                MetaAttribute("rowsProcessed", "integer", default=0),
            ],
            references=[
                MetaReference("process", "WarehouseProcess",
                              required=True),
            ],
        ),
    ]


class WarehouseProcessBuilder:
    """Ergonomic construction of CWM Warehouse Process models."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def process(self, name: str,
                activity: Optional[MofElement] = None) -> MofElement:
        process = self.extent.create("WarehouseProcess", name=name)
        if activity is not None:
            process.link("activity", activity)
        return process

    def schedule(self, process: MofElement, frequency: str,
                 start_time: Optional[str] = None) -> MofElement:
        event = self.extent.create(
            "ScheduleEvent",
            name=f"{process.name}-schedule",
            frequency=frequency)
        if start_time is not None:
            event.set("startTime", start_time)
        process.link("event", event)
        return event

    def cascade(self, process: MofElement,
                triggered_by: MofElement) -> MofElement:
        event = self.extent.create(
            "CascadeEvent", name=f"{process.name}-cascade")
        event.link("triggeringProcess", triggered_by)
        process.link("event", event)
        return event

    def execution(self, process: MofElement, status: str = "pending") \
            -> MofElement:
        count = len(self.extent.instances_of("ProcessExecution"))
        execution = self.extent.create(
            "ProcessExecution",
            name=f"{process.name}-run-{count + 1}",
            status=status)
        execution.link("process", process)
        return execution
