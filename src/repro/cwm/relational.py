"""CWM Relational package: catalogs, schemas, tables, columns, keys."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ModelConstraintError
from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def relational_classes() -> List[MetaClass]:
    """The metaclasses of the CWM Relational package."""
    return [
        MetaClass("Catalog", superclass="Package"),
        MetaClass(
            "Schema",
            superclass="Package",
            references=[
                MetaReference("catalog", "Catalog"),
            ],
        ),
        MetaClass(
            "ColumnSet",
            superclass="Classifier",
            abstract=True,
        ),
        MetaClass(
            "Table",
            superclass="ColumnSet",
            attributes=[
                MetaAttribute("isTemporary", "boolean", default=False),
            ],
            references=[
                MetaReference("schema", "Schema"),
            ],
        ),
        MetaClass(
            "View",
            superclass="ColumnSet",
            attributes=[
                MetaAttribute("queryText", "string"),
            ],
            references=[
                MetaReference("schema", "Schema"),
            ],
        ),
        MetaClass(
            "Column",
            superclass="Attribute",
            attributes=[
                MetaAttribute("sqlType", "string", required=True),
                MetaAttribute("isNullable", "boolean", default=True),
                MetaAttribute("length", "integer"),
                MetaAttribute("precision", "integer"),
            ],
        ),
        MetaClass(
            "UniqueConstraint",
            superclass="ModelElement",
            references=[
                MetaReference("feature", "Column", many=True,
                              required=True),
            ],
        ),
        MetaClass(
            "PrimaryKey",
            superclass="UniqueConstraint",
        ),
        MetaClass(
            "ForeignKey",
            superclass="ModelElement",
            references=[
                MetaReference("feature", "Column", many=True,
                              required=True),
                MetaReference("uniqueKey", "UniqueConstraint",
                              required=True),
            ],
        ),
        MetaClass(
            "SQLIndex",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("isUnique", "boolean", default=False),
            ],
            references=[
                MetaReference("spannedClass", "Table", required=True),
                MetaReference("indexedFeature", "Column", many=True,
                              required=True),
            ],
        ),
    ]


class RelationalBuilder:
    """Ergonomic construction of CWM Relational models in an extent."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def catalog(self, name: str) -> MofElement:
        return self.extent.create("Catalog", name=name)

    def schema(self, name: str,
               catalog: Optional[MofElement] = None) -> MofElement:
        schema = self.extent.create("Schema", name=name)
        if catalog is not None:
            schema.link("catalog", catalog)
            catalog.link("ownedElement", schema)
        return schema

    def table(self, schema: MofElement, name: str) -> MofElement:
        table = self.extent.create("Table", name=name)
        table.link("schema", schema)
        schema.link("ownedElement", table)
        return table

    def column(self, table: MofElement, name: str, sql_type: str,
               nullable: bool = True,
               length: Optional[int] = None) -> MofElement:
        column = self.extent.create(
            "Column", name=name, sqlType=sql_type, isNullable=nullable)
        if length is not None:
            column.set("length", length)
        table.link("feature", column)
        return column

    def primary_key(self, table: MofElement, name: str,
                    columns: Sequence[MofElement]) -> MofElement:
        key = self.extent.create("PrimaryKey", name=name)
        for column in columns:
            self._require_owned(table, column)
            key.link("feature", column)
        table.link("ownedElement", key)
        return key

    def foreign_key(self, table: MofElement, name: str,
                    columns: Sequence[MofElement],
                    target_key: MofElement) -> MofElement:
        key = self.extent.create("ForeignKey", name=name)
        for column in columns:
            self._require_owned(table, column)
            key.link("feature", column)
        key.link("uniqueKey", target_key)
        table.link("ownedElement", key)
        return key

    def index(self, table: MofElement, name: str,
              columns: Sequence[MofElement],
              unique: bool = False) -> MofElement:
        index = self.extent.create("SQLIndex", name=name, isUnique=unique)
        index.link("spannedClass", table)
        for column in columns:
            self._require_owned(table, column)
            index.link("indexedFeature", column)
        return index

    @staticmethod
    def _require_owned(table: MofElement, column: MofElement) -> None:
        if column not in table.refs("feature"):
            raise ModelConstraintError(
                f"column {column.name!r} does not belong to "
                f"table {table.name!r}")

    # -- introspection ------------------------------------------------------------

    @staticmethod
    def columns_of(table: MofElement) -> List[MofElement]:
        return table.refs("feature")

    @staticmethod
    def tables_of(schema: MofElement) -> List[MofElement]:
        return [element for element in schema.refs("ownedElement")
                if element.class_name == "Table"]

    @staticmethod
    def primary_key_of(table: MofElement) -> Optional[MofElement]:
        for element in table.refs("ownedElement"):
            if element.class_name == "PrimaryKey":
                return element
        return None

    @staticmethod
    def foreign_keys_of(table: MofElement) -> List[MofElement]:
        return [element for element in table.refs("ownedElement")
                if element.class_name == "ForeignKey"]


def reflect_physical_table(extent: ModelExtent, database,
                           table_name: str,
                           schema_name: str = "reflected") -> MofElement:
    """Reverse-engineer a physical engine table into CWM elements.

    Creates (or reuses) a Schema named ``schema_name`` in ``extent``
    and populates a Table element with one Column per physical column —
    the bridge the semantic matcher uses to reason about live schemas.
    """
    builder = RelationalBuilder(extent)
    schema = extent.find_by_name("Schema", schema_name)
    if schema is None:
        schema = builder.schema(schema_name)
    existing = extent.find_by_name("Table", table_name)
    if existing is not None:
        return existing
    physical = database.storage(table_name).schema
    table = builder.table(schema, table_name)
    for column in physical.columns:
        builder.column(table, column.name, column.type.value,
                       nullable=column.nullable)
    return table
