"""ODM — the Ontology Definition Metamodel (paper future work).

"The Ontology Definition Metamodel is proposed to design some models
presented as ontology, used to solve the semantic schemas integration
and the semantic data integration problems" (paper §3.2; listed as a
planned extension in §3.3).  This module implements that extension: an
OWL-flavoured metamodel package plus a semantic matcher that uses
ontology synonym/equivalence knowledge to propose column mappings
between heterogeneous relational schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cwm.relational import RelationalBuilder
from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def odm_classes() -> List[MetaClass]:
    """The metaclasses of the ODM package (OWL-lite flavour)."""
    return [
        MetaClass("Ontology", superclass="Package"),
        MetaClass(
            "OntClass",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("label", "string"),
            ],
            references=[
                MetaReference("ontology", "Ontology"),
                MetaReference("subClassOf", "OntClass", many=True),
                MetaReference("equivalentClass", "OntClass",
                              many=True),
                MetaReference("synonym", "OntTerm", many=True,
                              composite=True),
            ],
        ),
        MetaClass(
            "OntTerm",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("language", "string", default="en"),
            ],
        ),
        MetaClass(
            "DatatypeProperty",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("range", "string", default="string"),
            ],
            references=[
                MetaReference("domain", "OntClass", required=True),
            ],
        ),
        MetaClass(
            "ObjectProperty",
            superclass="ModelElement",
            references=[
                MetaReference("domain", "OntClass", required=True),
                MetaReference("rangeClass", "OntClass", required=True),
            ],
        ),
        MetaClass(
            "Individual",
            superclass="ModelElement",
            references=[
                MetaReference("classifiedBy", "OntClass",
                              required=True),
            ],
        ),
    ]


class OdmBuilder:
    """Ergonomic construction of ODM ontologies in a CWM extent."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def ontology(self, name: str) -> MofElement:
        return self.extent.create("Ontology", name=name)

    def ont_class(self, ontology: MofElement, name: str,
                  synonyms: Sequence[str] = (),
                  label: Optional[str] = None) -> MofElement:
        ont_class = self.extent.create(
            "OntClass", name=name, label=label or name)
        ont_class.link("ontology", ontology)
        ontology.link("ownedElement", ont_class)
        for synonym in synonyms:
            term = self.extent.create("OntTerm", name=synonym)
            ont_class.link("synonym", term)
        return ont_class

    def subclass(self, child: MofElement,
                 parent: MofElement) -> MofElement:
        child.link("subClassOf", parent)
        return child

    def equivalent(self, first: MofElement,
                   second: MofElement) -> None:
        first.link("equivalentClass", second)
        second.link("equivalentClass", first)

    def datatype_property(self, domain: MofElement, name: str,
                          range_type: str = "string") -> MofElement:
        prop = self.extent.create(
            "DatatypeProperty", name=name, range=range_type)
        prop.link("domain", domain)
        return prop

    def object_property(self, domain: MofElement, name: str,
                        range_class: MofElement) -> MofElement:
        prop = self.extent.create("ObjectProperty", name=name)
        prop.link("domain", domain)
        prop.link("rangeClass", range_class)
        return prop

    def individual(self, ont_class: MofElement,
                   name: str) -> MofElement:
        individual = self.extent.create("Individual", name=name)
        individual.link("classifiedBy", ont_class)
        return individual

    # -- vocabulary lookups --------------------------------------------------------

    def vocabulary_of(self, ont_class: MofElement) -> Set[str]:
        """All names under which this concept is known (lowercased),
        including synonyms and equivalent classes' vocabularies."""
        names: Set[str] = set()
        stack = [ont_class]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current.element_id in seen:
                continue
            seen.add(current.element_id)
            if current.name:
                names.add(current.name.lower())
            label = current.get("label")
            if label:
                names.add(label.lower())
            for term in current.refs("synonym"):
                if term.name:
                    names.add(term.name.lower())
            stack.extend(current.refs("equivalentClass"))
        return names


@dataclass
class ColumnMatch:
    """A proposed source→target column mapping."""

    source_column: str
    target_column: str
    reason: str  # 'exact-name' | 'ontology-synonym' | 'ontology-equivalence'
    concept: Optional[str] = None

    @property
    def confidence(self) -> float:
        return {"exact-name": 1.0,
                "ontology-synonym": 0.9,
                "ontology-equivalence": 0.8}[self.reason]


class SemanticMatcher:
    """Proposes column mappings between two tables using an ontology.

    The matcher resolves each column name against the ontology's
    concept vocabularies (name + label + synonyms + equivalent
    classes); two columns naming the same concept are proposed as a
    mapping even when their spellings differ.
    """

    def __init__(self, odm: OdmBuilder):
        self.odm = odm
        self._concept_index: Dict[str, MofElement] = {}
        for ont_class in odm.extent.instances_of("OntClass"):
            for word in odm.vocabulary_of(ont_class):
                self._concept_index.setdefault(word, ont_class)

    def concept_for(self, column_name: str) -> Optional[MofElement]:
        return self._concept_index.get(column_name.lower())

    def match_tables(self, source_table: MofElement,
                     target_table: MofElement) -> List[ColumnMatch]:
        """Column-mapping proposals, highest confidence first."""
        source_columns = [column.name for column
                          in RelationalBuilder.columns_of(source_table)]
        target_columns = [column.name for column
                          in RelationalBuilder.columns_of(target_table)]
        matches: List[ColumnMatch] = []
        claimed_targets: Set[str] = set()

        # Pass 1: exact (case-insensitive) name equality.
        target_by_lower = {name.lower(): name
                           for name in target_columns}
        for source in source_columns:
            target = target_by_lower.get(source.lower())
            if target is not None and target not in claimed_targets:
                matches.append(ColumnMatch(source, target,
                                           "exact-name"))
                claimed_targets.add(target)

        # Pass 2: shared ontology concept (synonyms + equivalences).
        matched_sources = {match.source_column for match in matches}
        for source in source_columns:
            if source in matched_sources:
                continue
            source_concept = self.concept_for(source)
            if source_concept is None:
                continue
            source_vocabulary = self.odm.vocabulary_of(source_concept)
            for target in target_columns:
                if target in claimed_targets:
                    continue
                if target.lower() in source_vocabulary:
                    same_class = self.concept_for(target) \
                        is source_concept
                    matches.append(ColumnMatch(
                        source, target,
                        "ontology-synonym" if same_class
                        else "ontology-equivalence",
                        concept=source_concept.name))
                    claimed_targets.add(target)
                    break
        matches.sort(key=lambda match: -match.confidence)
        return matches

    def unmatched_columns(self, source_table: MofElement,
                          target_table: MofElement) \
            -> Tuple[List[str], List[str]]:
        """Columns no proposal covers — the manual-mapping worklist."""
        matches = self.match_tables(source_table, target_table)
        matched_sources = {match.source_column for match in matches}
        matched_targets = {match.target_column for match in matches}
        sources = [column.name for column
                   in RelationalBuilder.columns_of(source_table)
                   if column.name not in matched_sources]
        targets = [column.name for column
                   in RelationalBuilder.columns_of(target_table)
                   if column.name not in matched_targets]
        return sources, targets
