"""Assembly of the full CWM metamodel from its packages."""

from __future__ import annotations

from repro.cwm.business import business_classes
from repro.cwm.foundation import foundation_classes
from repro.cwm.multidim import multidim_classes
from repro.cwm.odm import odm_classes
from repro.cwm.relational import relational_classes
from repro.cwm.transformation import transformation_classes
from repro.cwm.warehouse_process import warehouse_process_classes
from repro.mof.kernel import Metamodel

CWM_NAME = "CWM"
CWM_VERSION = "1.1"


def cwm_metamodel() -> Metamodel:
    """Build the complete CWM metamodel (foundation + all packages).

    The result is a fresh, independent Metamodel instance; installing it
    in a :class:`repro.mof.registry.MetamodelRegistry` makes it available
    for extent creation by name.
    """
    classes = (
        foundation_classes()
        + relational_classes()
        + multidim_classes()
        + transformation_classes()
        + warehouse_process_classes()
        + business_classes()
        + odm_classes()
    )
    return Metamodel(CWM_NAME, classes, version=CWM_VERSION)
