"""CWM Transformation package: source-to-target mapping metadata.

Records *what maps to what* between warehouse layers — the metadata the
integration service stores about its ETL jobs and the MDA engine stores
about its QVT transformations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mof.kernel import (
    MetaAttribute,
    MetaClass,
    MetaReference,
    ModelExtent,
    MofElement,
)


def transformation_classes() -> List[MetaClass]:
    """The metaclasses of the CWM Transformation package."""
    return [
        MetaClass(
            "Transformation",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("function", "string"),
                MetaAttribute("isPrimary", "boolean", default=False),
            ],
            references=[
                MetaReference("source", "ModelElement", many=True),
                MetaReference("target", "ModelElement", many=True),
            ],
        ),
        MetaClass(
            "TransformationTask",
            superclass="ModelElement",
            references=[
                MetaReference("transformation", "Transformation",
                              many=True),
            ],
        ),
        MetaClass(
            "TransformationStep",
            superclass="ModelElement",
            references=[
                MetaReference("task", "TransformationTask",
                              required=True),
                MetaReference("precedence", "TransformationStep",
                              many=True),
            ],
        ),
        MetaClass(
            "TransformationActivity",
            superclass="Package",
            references=[
                MetaReference("step", "TransformationStep", many=True,
                              composite=True),
            ],
        ),
        MetaClass(
            "ClassifierMap",
            superclass="ModelElement",
            references=[
                MetaReference("sourceClassifier", "Classifier",
                              many=True),
                MetaReference("targetClassifier", "Classifier",
                              many=True),
                MetaReference("featureMap", "FeatureMap", many=True,
                              composite=True),
            ],
        ),
        MetaClass(
            "FeatureMap",
            superclass="ModelElement",
            attributes=[
                MetaAttribute("function", "string"),
            ],
            references=[
                MetaReference("sourceFeature", "Feature", many=True),
                MetaReference("targetFeature", "Feature", many=True),
            ],
        ),
    ]


class TransformationBuilder:
    """Ergonomic construction of CWM Transformation models."""

    def __init__(self, extent: ModelExtent):
        self.extent = extent

    def activity(self, name: str) -> MofElement:
        return self.extent.create("TransformationActivity", name=name)

    def task(self, name: str) -> MofElement:
        return self.extent.create("TransformationTask", name=name)

    def step(self, activity: MofElement, name: str, task: MofElement,
             after: Sequence[MofElement] = ()) -> MofElement:
        step = self.extent.create("TransformationStep", name=name)
        step.link("task", task)
        for predecessor in after:
            step.link("precedence", predecessor)
        activity.link("step", step)
        return step

    def transformation(self, name: str,
                       sources: Sequence[MofElement] = (),
                       targets: Sequence[MofElement] = (),
                       function: Optional[str] = None) -> MofElement:
        transformation = self.extent.create("Transformation", name=name)
        if function is not None:
            transformation.set("function", function)
        for source in sources:
            transformation.link("source", source)
        for target in targets:
            transformation.link("target", target)
        return transformation

    def classifier_map(self, name: str, source: MofElement,
                       target: MofElement) -> MofElement:
        mapping = self.extent.create("ClassifierMap", name=name)
        mapping.link("sourceClassifier", source)
        mapping.link("targetClassifier", target)
        return mapping

    def feature_map(self, classifier_map: MofElement, name: str,
                    source: MofElement, target: MofElement,
                    function: Optional[str] = None) -> MofElement:
        mapping = self.extent.create("FeatureMap", name=name)
        if function is not None:
            mapping.set("function", function)
        mapping.link("sourceFeature", source)
        mapping.link("targetFeature", target)
        classifier_map.link("featureMap", mapping)
        return mapping
