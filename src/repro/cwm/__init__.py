"""Common Warehouse Metamodel implementation (the CWM/CWMX substitute).

CWM is the OMG metamodel the ODBIS domain model implements (paper
Fig. 5).  Each module contributes one CWM package as a set of MOF
metaclasses; :func:`cwm_metamodel` assembles the full metamodel, and
the ``*Builder`` classes offer ergonomic construction of conforming
models:

* :mod:`repro.cwm.foundation` — Core package (ModelElement, Package, ...)
* :mod:`repro.cwm.relational` — Relational package (Catalog ... Column)
* :mod:`repro.cwm.multidim` — OLAP package (Cube, Dimension, ...)
* :mod:`repro.cwm.transformation` — Transformation package
* :mod:`repro.cwm.warehouse_process` — Warehouse Process package
* :mod:`repro.cwm.business` — Business Nomenclature (the CWMX flavour)
* :mod:`repro.cwm.odm` — Ontology Definition Metamodel (the paper's
  announced extension for semantic schema integration)
"""

from repro.cwm.assembly import cwm_metamodel
from repro.cwm.business import BusinessBuilder
from repro.cwm.multidim import OlapBuilder
from repro.cwm.odm import OdmBuilder, SemanticMatcher
from repro.cwm.relational import RelationalBuilder
from repro.cwm.transformation import TransformationBuilder
from repro.cwm.warehouse_process import WarehouseProcessBuilder

__all__ = [
    "BusinessBuilder",
    "OdmBuilder",
    "OlapBuilder",
    "RelationalBuilder",
    "SemanticMatcher",
    "TransformationBuilder",
    "WarehouseProcessBuilder",
    "cwm_metamodel",
]
