"""HTTP-style request and response objects."""

from __future__ import annotations

import datetime
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import HttpError

_METHODS = ("GET", "POST", "PUT", "DELETE", "PATCH")


@dataclass
class Request:
    """An incoming request.

    ``path_params`` is filled by the router; ``principal`` and
    ``tenant`` are attached by the middleware chain.
    """

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, Any] = field(default_factory=dict)
    body: Any = None
    path_params: Dict[str, str] = field(default_factory=dict)
    principal: Any = None
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        method = self.method.upper()
        if method not in _METHODS:
            raise HttpError(405, f"unsupported method {self.method!r}")
        self.method = method
        if not self.path.startswith("/"):
            raise HttpError(400, f"path must start with '/': {self.path!r}")
        # Header names are case-insensitive.
        self.headers = {key.lower(): value
                        for key, value in self.headers.items()}

    def header(self, name: str, default: Optional[str] = None) \
            -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def require_param(self, name: str) -> str:
        if name in self.path_params:
            return self.path_params[name]
        raise HttpError(400, f"missing path parameter {name!r}")


def _json_default(value: Any) -> Any:
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    if isinstance(value, set):
        return sorted(value)
    raise TypeError(
        f"cannot serialize {type(value).__name__} to JSON")


@dataclass
class Response:
    """An outgoing response."""

    status: int = 200
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> Any:
        """The body parsed from its JSON text (or as-is when native)."""
        if isinstance(self.body, (str, bytes)):
            return json.loads(self.body)
        return self.body


class JsonResponse(Response):
    """A response whose body is serialized to a JSON string."""

    def __init__(self, body: Any, status: int = 200,
                 headers: Optional[Dict[str, str]] = None):
        text = json.dumps(body, default=_json_default, sort_keys=True)
        merged = {"content-type": "application/json"}
        merged.update(headers or {})
        super().__init__(status=status, body=text, headers=merged)
