"""The web application: routing and middleware.

Routes are registered as ``(method, pattern)`` pairs where the pattern
may contain ``{name}`` segments; handlers receive the request and
return a Response.  Middleware wraps the chain (outermost first), the
natural place for the authentication filter and the tenant resolver
the ODBIS platform installs.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    BulkheadRejectedError,
    CircuitOpenError,
    DeadlineExceededError,
    HttpError,
    ReproError,
    StaleEpochError,
    WebError,
)
from repro.web.http import JsonResponse, Request, Response

Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]

_PARAM_SEGMENT = re.compile(r"^\{([A-Za-z_][A-Za-z0-9_]*)\}$")


class _Route:
    def __init__(self, method: str, pattern: str, handler: Handler):
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        self.segments = [segment for segment in pattern.split("/")
                         if segment != ""]

    def match(self, method: str, path: str) \
            -> Optional[Dict[str, str]]:
        if method != self.method:
            return None
        parts = [segment for segment in path.split("/") if segment != ""]
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(self.segments, parts):
            param = _PARAM_SEGMENT.match(expected)
            if param is not None:
                params[param.group(1)] = actual
            elif expected != actual:
                return None
        return params


class WebApplication:
    """A router plus middleware chain, dispatched synchronously."""

    def __init__(self, name: str = "app"):
        self.name = name
        self._routes: List[_Route] = []
        self._middleware: List[Middleware] = []
        self.access_log: List[Tuple[str, str, int]] = []

    # -- registration -------------------------------------------------------------

    def route(self, method: str, pattern: str,
              handler: Handler) -> None:
        for existing in self._routes:
            if existing.method == method.upper() \
                    and existing.pattern == pattern:
                raise WebError(
                    f"route {method} {pattern} already registered")
        self._routes.append(_Route(method, pattern, handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.route("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.route("POST", pattern, handler)

    def put(self, pattern: str, handler: Handler) -> None:
        self.route("PUT", pattern, handler)

    def delete(self, pattern: str, handler: Handler) -> None:
        self.route("DELETE", pattern, handler)

    def use(self, middleware: Middleware) -> None:
        """Append a middleware (outermost first)."""
        self._middleware.append(middleware)

    # -- dispatch -------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Run the middleware chain and the matched handler."""

        def terminal(inner: Request) -> Response:
            for route in self._routes:
                params = route.match(inner.method, inner.path)
                if params is not None:
                    inner.path_params = params
                    return route.handler(inner)
            raise HttpError(404, f"no route for "
                                 f"{inner.method} {inner.path}")

        chain: Handler = terminal
        for middleware in reversed(self._middleware):
            chain = self._wrap(middleware, chain)

        try:
            response = chain(request)
        except HttpError as exc:
            response = JsonResponse({"error": exc.message},
                                    status=exc.status)
        except AuthenticationError as exc:
            response = JsonResponse({"error": str(exc)}, status=401)
        except AccessDeniedError as exc:
            response = JsonResponse({"error": str(exc)}, status=403)
        except StaleEpochError as exc:
            # A routed statement lost the race with a shard
            # promotion: retryable by contract (503, not a 400) —
            # the client re-sends and the promoted primary answers.
            response = JsonResponse(
                {"error": str(exc), "code": "stale_epoch",
                 "retryable": True, "shard": exc.shard,
                 "carried_generation": exc.carried_generation,
                 "current_generation": exc.current_generation},
                status=503)
        except CircuitOpenError as exc:
            # A breaker tripped below a handler: overload, not a bad
            # request.  503 with Retry-After = the remaining cooldown.
            retry_after = max(0.0, exc.retry_after)
            response = JsonResponse(
                {"error": str(exc), "code": "circuit_open",
                 "retry_after": round(retry_after, 3)},
                status=503,
                headers={"retry-after": f"{retry_after:.3f}"})
        except BulkheadRejectedError as exc:
            response = JsonResponse(
                {"error": str(exc), "code": "bulkhead_rejected",
                 "retry_after": 1.0}, status=429,
                headers={"retry-after": "1.000"})
        except DeadlineExceededError as exc:
            response = JsonResponse(
                {"error": str(exc), "code": "deadline_exceeded",
                 "retry_after": 1.0}, status=504,
                headers={"retry-after": "1.000"})
        except ReproError as exc:
            response = JsonResponse({"error": str(exc)}, status=400)
        self.access_log.append(
            (request.method, request.path, response.status))
        return response

    @staticmethod
    def _wrap(middleware: Middleware, inner: Handler) -> Handler:
        def wrapped(request: Request) -> Response:
            return middleware(request, inner)
        return wrapped

    # -- convenience client ------------------------------------------------------------

    def request(self, method: str, path: str,
                body: Any = None,
                headers: Optional[Dict[str, str]] = None,
                query: Optional[Dict[str, Any]] = None) -> Response:
        """Build a request and dispatch it (the test/SDK client)."""
        return self.handle(Request(
            method=method, path=path, body=body,
            headers=dict(headers or {}), query=dict(query or {})))
