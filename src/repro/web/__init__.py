"""Web/service layer (the JSF + Tomcat substitute).

The presentation layer of the paper's Fig. 4/5 stack: an HTTP-style
request/response model, a router with path parameters, middleware
(authentication filter and tenant resolver, mirroring Spring Security
filters), and JSON responses — the surface the end-user access-tools
layer talks to.
"""

from repro.web.app import WebApplication
from repro.web.http import JsonResponse, Request, Response

__all__ = ["JsonResponse", "Request", "Response", "WebApplication"]
