"""Criteria queries over mapped entities.

A small fluent query API in the spirit of the JPA criteria API: build a
WHERE clause from keyword equality filters and raw predicates, then
fetch mapped instances through the session so they land in the identity
map.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import OrmError
from repro.orm.mapping import mapping_of


class CriteriaQuery:
    """A composable SELECT over one entity class."""

    def __init__(self, session, entity_class: Type):
        self._session = session
        self._entity_class = entity_class
        self._mapping = mapping_of(entity_class)
        self._predicates: List[str] = []
        self._params: List[Any] = []
        self._order: List[str] = []
        self._limit: Optional[int] = None
        self._offset: Optional[int] = None

    # -- builders -------------------------------------------------------------

    def filter_by(self, **criteria: Any) -> "CriteriaQuery":
        """Add equality predicates: ``filter_by(name='ada', active=True)``.

        A ``None`` value becomes an ``IS NULL`` predicate.
        """
        for name, value in criteria.items():
            if name not in self._mapping.field_names:
                raise OrmError(
                    f"{self._entity_class.__name__} has no field {name!r}")
            if value is None:
                self._predicates.append(f"{name} IS NULL")
            else:
                self._predicates.append(f"{name} = ?")
                self._params.append(value)
        return self

    def where(self, predicate: str, params: Sequence[Any] = ()) \
            -> "CriteriaQuery":
        """Add a raw SQL predicate with positional parameters."""
        self._predicates.append(f"({predicate})")
        self._params.extend(params)
        return self

    def order_by(self, *fields: str) -> "CriteriaQuery":
        """Order by field names; prefix with ``-`` for descending."""
        for field in fields:
            if field.startswith("-"):
                name, direction = field[1:], "DESC"
            else:
                name, direction = field, "ASC"
            if name not in self._mapping.field_names:
                raise OrmError(
                    f"{self._entity_class.__name__} has no field {name!r}")
            self._order.append(f"{name} {direction}")
        return self

    def limit(self, count: int) -> "CriteriaQuery":
        self._limit = int(count)
        return self

    def offset(self, count: int) -> "CriteriaQuery":
        self._offset = int(count)
        return self

    # -- execution -------------------------------------------------------------

    def _sql(self, projection: str) -> str:
        sql = f"SELECT {projection} FROM {self._mapping.table}"
        if self._predicates:
            sql += " WHERE " + " AND ".join(self._predicates)
        if self._order and projection == "*":
            sql += " ORDER BY " + ", ".join(self._order)
        if self._limit is not None and projection == "*":
            sql += f" LIMIT {self._limit}"
        if self._offset is not None and projection == "*":
            sql += f" OFFSET {self._offset}"
        return sql

    def list(self) -> List[Any]:
        """Run the query and return mapped entity instances."""
        result = self._session.database.execute(
            self._sql("*"), tuple(self._params))
        register = self._session._register_loaded
        mapping = self._mapping
        # Iterate the ResultSet directly: row dicts are produced one at
        # a time instead of being materialized twice via query().
        return [register(mapping, row) for row in result]

    def first(self) -> Optional[Any]:
        previous = self._limit
        self._limit = 1
        try:
            results = self.list()
        finally:
            self._limit = previous
        return results[0] if results else None

    def one(self) -> Any:
        """Exactly one result — raises OrmError otherwise."""
        results = self.list()
        if len(results) != 1:
            raise OrmError(
                f"expected exactly one {self._entity_class.__name__}, "
                f"found {len(results)}")
        return results[0]

    def count(self) -> int:
        return int(self._session.database.query_value(
            self._sql("COUNT(*)"), tuple(self._params)))

    def exists(self) -> bool:
        return self.count() > 0
