"""Generic repositories over mapped entities.

Repositories give ODBIS services a focused CRUD surface per aggregate,
in the spirit of Spring Data repositories layered on JPA.
"""

from __future__ import annotations

from typing import Any, List, Optional, Type

from repro.orm.mapping import mapping_of
from repro.orm.session import Session


class Repository:
    """CRUD operations for one entity class bound to a session."""

    def __init__(self, session: Session, entity_class: Type):
        self.session = session
        self.entity_class = entity_class
        self.mapping = mapping_of(entity_class)

    def save(self, instance: Any) -> Any:
        """Insert a transient instance (or flush changes on a loaded one)."""
        if not self.session.is_loaded(instance):
            self.session.add(instance)
        self.session.flush()
        return instance

    def find_by_id(self, primary_key: Any) -> Optional[Any]:
        return self.session.get(self.entity_class, primary_key)

    def require(self, primary_key: Any) -> Any:
        return self.session.require(self.entity_class, primary_key)

    def find_all(self) -> List[Any]:
        return self.session.find(self.entity_class).list()

    def find_by(self, **criteria: Any) -> List[Any]:
        return self.session.find(self.entity_class) \
            .filter_by(**criteria).list()

    def find_one_by(self, **criteria: Any) -> Optional[Any]:
        return self.session.find(self.entity_class) \
            .filter_by(**criteria).first()

    def count(self) -> int:
        return self.session.find(self.entity_class).count()

    def delete(self, instance: Any) -> None:
        self.session.delete(instance)
        self.session.flush()

    def delete_by_id(self, primary_key: Any) -> bool:
        instance = self.find_by_id(primary_key)
        if instance is None:
            return False
        self.delete(instance)
        return True
