"""Object-relational persistence layer (the JPA/Hibernate substitute).

ODBIS services define *entities* — plain Python classes whose fields map
to table columns — and manipulate them through a :class:`Session`
implementing the unit-of-work and identity-map patterns, exactly the
role JPA + Hibernate play in the paper's Fig. 5 stack.

Quickstart::

    from repro.engine import Database
    from repro.orm import Entity, FieldSpec, Session, create_schema, entity

    @entity(table="users", fields=[
        FieldSpec("id", "INTEGER", primary_key=True, generated=True),
        FieldSpec("username", "TEXT", nullable=False, unique=True),
    ])
    class User(Entity):
        pass

    db = Database()
    create_schema(db, [User])
    with Session(db) as session:
        user = User(username="ada")
        session.add(user)
        session.commit()
"""

from repro.orm.mapping import (
    Entity,
    FieldSpec,
    ReferenceSpec,
    create_schema,
    entity,
    mapping_of,
)
from repro.orm.query import CriteriaQuery
from repro.orm.repository import Repository
from repro.orm.session import Session

__all__ = [
    "CriteriaQuery",
    "Entity",
    "FieldSpec",
    "ReferenceSpec",
    "Repository",
    "Session",
    "create_schema",
    "entity",
    "mapping_of",
]
