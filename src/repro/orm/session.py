"""Unit-of-work session with an identity map.

The Session tracks new, loaded and deleted entities; ``flush`` writes
pending changes to the engine inside one SQL transaction, and
``commit``/``rollback`` finish the unit of work.  Loaded instances are
cached per identity so the same row always yields the same object —
the identity-map behaviour ODBIS relies on for its domain model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.engine.database import Database
from repro.errors import EntityNotFound, OrmError, StaleSessionError
from repro.orm.mapping import (
    EntityMapping,
    mapping_of,
    resolve_pending_references,
)


class Session:
    """A unit of work over one :class:`~repro.engine.database.Database`."""

    def __init__(self, database: Database):
        self.database = database
        self._identity_map: Dict[Tuple[Type, Any], Any] = {}
        self._loaded_state: Dict[int, Dict[str, Any]] = {}
        self._new: List[Any] = []
        self._deleted: List[Any] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()
        return False

    def close(self) -> None:
        self._closed = True
        self._identity_map.clear()
        self._loaded_state.clear()
        self._new.clear()
        self._deleted.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise StaleSessionError("session is closed")

    # -- registration ---------------------------------------------------------------

    def add(self, instance: Any) -> Any:
        """Register a transient instance for insertion at the next flush."""
        self._check_open()
        mapping_of(type(instance))  # validate the class is mapped
        if id(instance) in self._loaded_state:
            raise OrmError("instance is already persistent in this session")
        if not self._contains(self._new, instance):
            self._new.append(instance)
        instance._session = self
        return instance

    @staticmethod
    def _contains(bucket: List[Any], instance: Any) -> bool:
        return any(existing is instance for existing in bucket)

    @staticmethod
    def _remove(bucket: List[Any], instance: Any) -> None:
        for position, existing in enumerate(bucket):
            if existing is instance:
                del bucket[position]
                return

    def add_all(self, instances: Sequence[Any]) -> None:
        for instance in instances:
            self.add(instance)

    def delete(self, instance: Any) -> None:
        """Register a persistent instance for deletion at the next flush."""
        self._check_open()
        if self._contains(self._new, instance):
            self._remove(self._new, instance)
            return
        if id(instance) not in self._loaded_state:
            raise OrmError(
                "cannot delete an instance the session never loaded")
        if not self._contains(self._deleted, instance):
            self._deleted.append(instance)

    # -- loading -----------------------------------------------------------------------

    def get(self, entity_class: Type, primary_key: Any) -> Optional[Any]:
        """Load one entity by primary key (or return None)."""
        self._check_open()
        mapping = mapping_of(entity_class)
        cached = self._identity_map.get((entity_class, primary_key))
        if cached is not None:
            return cached
        rows = self.database.query(
            f"SELECT * FROM {mapping.table} "
            f"WHERE {mapping.primary_key.name} = ?",
            (primary_key,))
        if not rows:
            return None
        return self._register_loaded(mapping, rows[0])

    def require(self, entity_class: Type, primary_key: Any) -> Any:
        """Like :meth:`get` but raises EntityNotFound when missing."""
        instance = self.get(entity_class, primary_key)
        if instance is None:
            raise EntityNotFound(
                f"{entity_class.__name__} with key {primary_key!r} not found")
        return instance

    def find(self, entity_class: Type) -> "CriteriaQuery":
        """Start a criteria query over an entity class."""
        from repro.orm.query import CriteriaQuery

        self._check_open()
        return CriteriaQuery(self, entity_class)

    def _register_loaded(self, mapping: EntityMapping,
                         row: Dict[str, Any]) -> Any:
        key = (mapping.entity_class, row[mapping.primary_key.name])
        cached = self._identity_map.get(key)
        if cached is not None:
            return cached
        instance = mapping.instantiate(row)
        instance._session = self
        self._identity_map[key] = instance
        self._loaded_state[id(instance)] = mapping.state_of(instance)
        return instance

    # -- flushing -----------------------------------------------------------------------

    def _next_key(self, mapping: EntityMapping) -> int:
        current = self.database.query_value(
            f"SELECT MAX({mapping.primary_key.name}) FROM {mapping.table}")
        return 1 if current is None else int(current) + 1

    def flush(self) -> None:
        """Write all pending inserts, updates and deletes to the engine."""
        self._check_open()
        own_transaction = not self.database.in_transaction
        if own_transaction:
            self.database.begin()
        try:
            self._flush_inserts()
            self._flush_updates()
            self._flush_deletes()
        except Exception:
            if own_transaction:
                self.database.rollback()
            raise
        else:
            if own_transaction:
                self.database.commit()

    def _flush_inserts(self) -> None:
        for instance in list(self._new):
            mapping = mapping_of(type(instance))
            if mapping.primary_key.generated \
                    and mapping.identity_of(instance) is None:
                setattr(instance, mapping.primary_key.name,
                        self._next_key(mapping))
            resolve_pending_references(instance)
            state = mapping.state_of(instance)
            columns = ", ".join(state)
            placeholders = ", ".join("?" for _ in state)
            self.database.execute(
                f"INSERT INTO {mapping.table} ({columns}) "
                f"VALUES ({placeholders})",
                tuple(state.values()))
            self._remove(self._new, instance)
            key = (type(instance), mapping.identity_of(instance))
            self._identity_map[key] = instance
            self._loaded_state[id(instance)] = state

    def _flush_updates(self) -> None:
        for key, instance in list(self._identity_map.items()):
            if self._contains(self._deleted, instance):
                continue
            previous = self._loaded_state.get(id(instance))
            if previous is None:
                continue
            mapping = mapping_of(type(instance))
            resolve_pending_references(instance)
            current = mapping.state_of(instance)
            changed = {
                name: value for name, value in current.items()
                if previous.get(name) != value
            }
            if not changed:
                continue
            assignments = ", ".join(f"{name} = ?" for name in changed)
            params = tuple(changed.values()) + (previous[mapping.primary_key.name],)
            self.database.execute(
                f"UPDATE {mapping.table} SET {assignments} "
                f"WHERE {mapping.primary_key.name} = ?",
                params)
            self._loaded_state[id(instance)] = current
            new_identity = mapping.identity_of(instance)
            if key[1] != new_identity:
                del self._identity_map[key]
                self._identity_map[(key[0], new_identity)] = instance

    def _flush_deletes(self) -> None:
        for instance in list(self._deleted):
            mapping = mapping_of(type(instance))
            identity = mapping.identity_of(instance)
            self.database.execute(
                f"DELETE FROM {mapping.table} "
                f"WHERE {mapping.primary_key.name} = ?",
                (identity,))
            self._remove(self._deleted, instance)
            self._identity_map.pop((type(instance), identity), None)
            self._loaded_state.pop(id(instance), None)

    def commit(self) -> None:
        """Flush pending work and end the unit of work successfully."""
        self.flush()

    def rollback(self) -> None:
        """Discard all pending (unflushed) changes."""
        self._check_open()
        self._new.clear()
        self._deleted.clear()
        # Revert in-memory modifications on loaded instances.
        for instance in self._identity_map.values():
            previous = self._loaded_state.get(id(instance))
            if previous is None:
                continue
            for name, value in previous.items():
                setattr(instance, name, value)

    # -- introspection -----------------------------------------------------------------

    @property
    def pending_new(self) -> int:
        return len(self._new)

    @property
    def pending_deleted(self) -> int:
        return len(self._deleted)

    def is_loaded(self, instance: Any) -> bool:
        return id(instance) in self._loaded_state
