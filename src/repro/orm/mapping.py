"""Entity-to-table mapping metadata.

An entity is declared with the :func:`entity` class decorator, which
attaches an :class:`EntityMapping` describing the backing table.  The
decorator is the Python analogue of JPA's ``@Entity`` + ``@Column``
annotations in the paper's persistence layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.engine.database import Database
from repro.engine.types import SqlType
from repro.errors import MappingError


@dataclass
class ReferenceSpec:
    """A many-to-one association resolved through the session.

    ``column`` is the foreign-key field on this entity; ``target`` is
    the referenced entity class.  Access via the generated property
    lazily loads the target through the owning session (like JPA's
    ``@ManyToOne(fetch = LAZY)``).
    """

    name: str
    target: type
    column: str


@dataclass
class FieldSpec:
    """One persistent field of an entity."""

    name: str
    type_name: str
    primary_key: bool = False
    nullable: bool = True
    unique: bool = False
    default: Any = None
    generated: bool = False  # surrogate key assigned by the session

    def __post_init__(self) -> None:
        self.sql_type = SqlType.from_sql(self.type_name)
        if self.generated and not self.primary_key:
            raise MappingError(
                f"generated field {self.name!r} must be the primary key")


class EntityMapping:
    """The table mapping attached to an entity class."""

    def __init__(self, entity_class: Type, table: str,
                 fields: Sequence[FieldSpec],
                 references: Sequence["ReferenceSpec"] = ()):
        if not fields:
            raise MappingError(
                f"entity {entity_class.__name__} maps no fields")
        primary = [spec for spec in fields if spec.primary_key]
        if len(primary) != 1:
            raise MappingError(
                f"entity {entity_class.__name__} must have exactly one "
                f"primary-key field, found {len(primary)}")
        names = [spec.name for spec in fields]
        if len(set(names)) != len(names):
            raise MappingError(
                f"entity {entity_class.__name__} maps duplicate fields")
        self.entity_class = entity_class
        self.table = table
        self.fields = list(fields)
        self.references = list(references)
        for reference in self.references:
            if reference.column not in names:
                raise MappingError(
                    f"reference {reference.name!r} uses unknown "
                    f"column {reference.column!r}")
            if reference.name in names:
                raise MappingError(
                    f"reference {reference.name!r} clashes with a "
                    f"field name")
        self.primary_key = primary[0]
        self.field_names = names

    def __repr__(self) -> str:
        return (f"<EntityMapping {self.entity_class.__name__} "
                f"-> {self.table}>")

    def ddl(self) -> str:
        """The CREATE TABLE statement for this mapping."""
        parts = []
        for spec in self.fields:
            clause = f"{spec.name} {spec.type_name}"
            if spec.primary_key:
                clause += " PRIMARY KEY"
            elif not spec.nullable:
                clause += " NOT NULL"
            if spec.unique and not spec.primary_key:
                clause += " UNIQUE"
            if spec.default is not None:
                if isinstance(spec.default, str):
                    escaped = spec.default.replace("'", "''")
                    clause += f" DEFAULT '{escaped}'"
                elif isinstance(spec.default, bool):
                    clause += f" DEFAULT {'TRUE' if spec.default else 'FALSE'}"
                else:
                    clause += f" DEFAULT {spec.default}"
            parts.append(clause)
        return f"CREATE TABLE {self.table} ({', '.join(parts)})"

    def state_of(self, instance: Any) -> Dict[str, Any]:
        """The persistent state of ``instance`` as a column->value dict."""
        return {
            spec.name: getattr(instance, spec.name, None)
            for spec in self.fields
        }

    def identity_of(self, instance: Any) -> Any:
        return getattr(instance, self.primary_key.name, None)

    def instantiate(self, row: Dict[str, Any]) -> Any:
        """Build an entity instance from a database row."""
        instance = self.entity_class.__new__(self.entity_class)
        for spec in self.fields:
            setattr(instance, spec.name, row.get(spec.name))
        return instance


class Entity:
    """Convenience base class giving entities a keyword constructor."""

    def __init__(self, **values: Any):
        mapping = mapping_of(type(self))
        unknown = [key for key in values if key not in mapping.field_names]
        if unknown:
            raise MappingError(
                f"{type(self).__name__} has no persistent field "
                f"{unknown[0]!r}")
        for spec in mapping.fields:
            setattr(self, spec.name, values.get(spec.name, spec.default))

    def __repr__(self) -> str:
        mapping = getattr(type(self), "__mapping__", None)
        if mapping is None:
            return super().__repr__()
        pk = mapping.identity_of(self)
        return f"<{type(self).__name__} {mapping.primary_key.name}={pk!r}>"

    def __eq__(self, other: Any) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        mapping = mapping_of(type(self))
        return mapping.state_of(self) == mapping.state_of(other)

    def __hash__(self) -> int:
        return id(self)


def entity(table: str, fields: Sequence[FieldSpec],
           references: Sequence[ReferenceSpec] = ()):
    """Class decorator attaching an :class:`EntityMapping`.

    ``references`` adds lazy many-to-one association properties::

        @entity(table="orders",
                fields=[..., FieldSpec("customer_id", "INTEGER")],
                references=[ReferenceSpec("customer", Customer,
                                          "customer_id")])
        class Order(Entity): ...

        order.customer          # lazy session lookup by customer_id
        order.customer = ada    # sets customer_id from ada's key
    """

    def decorate(cls: Type) -> Type:
        cls.__mapping__ = EntityMapping(cls, table, fields, references)
        for reference in references:
            setattr(cls, reference.name,
                    _association_property(reference))
        return cls

    return decorate


def _association_property(reference: ReferenceSpec) -> property:
    slot = f"_ref_{reference.name}"

    def getter(self):
        pending = getattr(self, slot, None)
        if pending is not None:
            return pending
        foreign_key = getattr(self, reference.column, None)
        if foreign_key is None:
            return None
        session = getattr(self, "_session", None)
        if session is None:
            raise MappingError(
                f"cannot lazily load {reference.name!r}: instance is "
                f"not attached to a session")
        return session.get(reference.target, foreign_key)

    def setter(self, target):
        if target is None:
            setattr(self, slot, None)
            setattr(self, reference.column, None)
            return
        if not isinstance(target, reference.target):
            raise MappingError(
                f"{reference.name!r} expects "
                f"{reference.target.__name__}, got "
                f"{type(target).__name__}")
        # Remember the object; the key may not exist yet (generated
        # at flush), so the FK column is re-resolved on every flush.
        setattr(self, slot, target)
        setattr(self, reference.column,
                mapping_of(type(target)).identity_of(target))

    return property(getter, setter)


def resolve_pending_references(instance: Any) -> None:
    """Refresh FK columns from assigned association objects.

    Called by the session before computing an instance's persistent
    state, so associations assigned before the target's key generation
    still store the right foreign key.
    """
    mapping = mapping_of(type(instance))
    for reference in mapping.references:
        target = getattr(instance, f"_ref_{reference.name}", None)
        if target is not None:
            setattr(instance, reference.column,
                    mapping_of(type(target)).identity_of(target))


def mapping_of(entity_class: Type) -> EntityMapping:
    mapping = getattr(entity_class, "__mapping__", None)
    if mapping is None:
        raise MappingError(
            f"{entity_class.__name__} is not a mapped entity "
            f"(missing @entity decorator)")
    return mapping


def create_schema(database: Database, entity_classes: Sequence[Type],
                  if_not_exists: bool = False) -> None:
    """Create the backing table for each entity class."""
    for entity_class in entity_classes:
        mapping = mapping_of(entity_class)
        ddl = mapping.ddl()
        if if_not_exists:
            ddl = ddl.replace("CREATE TABLE ", "CREATE TABLE IF NOT EXISTS ", 1)
        database.execute(ddl)
