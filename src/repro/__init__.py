"""repro — a reproduction of ODBIS (EDBT 2010).

ODBIS is an open-source platform for On-Demand Business Intelligence
Services: a multi-tenant SaaS BI platform with model-driven data
warehouse design.  This library rebuilds the whole system in pure
Python — every substrate included (SQL engine, ORM, MOF/CWM
metamodeling, MDA/2TUP engineering, ETL, OLAP, reporting, rules, BPM,
security, ESB, web).

Quickstart::

    from repro import OdbisPlatform

    platform = OdbisPlatform()
    platform.provisioning.provision("acme", "Acme Corp", plan="team")

See ``examples/quickstart.py`` for the full tour, and DESIGN.md for
the system inventory.
"""

from repro.core import OdbisPlatform
from repro.core.tenancy import TenancyMode
from repro.engine import Database
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["Database", "OdbisPlatform", "ReproError", "TenancyMode",
           "__version__"]
