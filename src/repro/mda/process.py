"""The 2 Track Unified Process (2TUP) adapted for DW engineering.

2TUP is the Y-shaped process: a *functional* branch (business capture)
and a *technical* branch (platform capture) both feed a *realization*
branch.  Following the paper's Fig. 3, the realization disciplines wrap
the MDA transformation chain: analysis yields the BCIM, preliminary
design the PIM, detailed design the PSM and coding the generated code
plus its completion.  One :class:`Iteration` develops one component of
one DW layer; a layer may take several iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProcessError

FUNCTIONAL = "functional"
TECHNICAL = "technical"
REALIZATION = "realization"


@dataclass(frozen=True)
class Discipline:
    """One 2TUP discipline and the MDA activity it hosts (if any)."""

    name: str
    branch: str
    mda_activity: Optional[str] = None


#: The disciplines of the adapted 2TUP process, in canonical order.
DISCIPLINES: List[Discipline] = [
    Discipline("preliminary-study", FUNCTIONAL),
    Discipline("business-requirements", FUNCTIONAL, "define-bcim"),
    Discipline("analysis", FUNCTIONAL, "refine-bcim"),
    Discipline("technical-requirements", TECHNICAL, "define-tcim"),
    Discipline("generic-design", TECHNICAL),
    Discipline("preliminary-design", REALIZATION, "derive-pim"),
    Discipline("detailed-design", REALIZATION, "derive-psm"),
    Discipline("coding", REALIZATION, "generate-code"),
    Discipline("code-completion", REALIZATION, "complete-code"),
    Discipline("tests", REALIZATION),
    Discipline("deployment", REALIZATION),
]

_BY_NAME: Dict[str, Discipline] = {
    discipline.name: discipline for discipline in DISCIPLINES
}


class Iteration:
    """One pass through the Y for one component of one DW layer."""

    def __init__(self, number: int, layer: str, component: str = "main"):
        self.number = number
        self.layer = layer
        self.component = component
        self.completed: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return (f"<Iteration #{self.number} {self.layer}/{self.component} "
                f"{len(self.completed)}/{len(DISCIPLINES)} disciplines>")

    # -- discipline ordering rules -------------------------------------------------

    def _branch_done(self, branch: str) -> bool:
        return all(discipline.name in self.completed
                   for discipline in DISCIPLINES
                   if discipline.branch == branch)

    def _predecessors_done(self, target: Discipline) -> bool:
        ahead = [discipline for discipline in DISCIPLINES
                 if discipline.branch == target.branch]
        for discipline in ahead:
            if discipline.name == target.name:
                return True
            if discipline.name not in self.completed:
                return False
        return True  # pragma: no cover

    def can_complete(self, discipline_name: str) -> bool:
        discipline = _BY_NAME.get(discipline_name)
        if discipline is None:
            return False
        if discipline.name in self.completed:
            return False
        if discipline.branch == REALIZATION:
            if not (self._branch_done(FUNCTIONAL)
                    and self._branch_done(TECHNICAL)):
                return False
        return self._predecessors_done(discipline)

    def complete(self, discipline_name: str,
                 deliverable: Any = None) -> "Iteration":
        """Mark a discipline finished, attaching its deliverable."""
        if discipline_name not in _BY_NAME:
            raise ProcessError(f"unknown discipline {discipline_name!r}")
        if discipline_name in self.completed:
            raise ProcessError(
                f"discipline {discipline_name!r} already completed")
        if not self.can_complete(discipline_name):
            raise ProcessError(
                f"discipline {discipline_name!r} cannot start yet "
                f"(branch ordering)")
        self.completed[discipline_name] = deliverable
        return self

    def deliverable(self, discipline_name: str) -> Any:
        if discipline_name not in self.completed:
            raise ProcessError(
                f"discipline {discipline_name!r} not completed")
        return self.completed[discipline_name]

    @property
    def is_complete(self) -> bool:
        return len(self.completed) == len(DISCIPLINES)

    def progress(self) -> float:
        return len(self.completed) / len(DISCIPLINES)


class TwoTrackProcess:
    """The engineering process of one DW project.

    Layers are developed bottom-up through iterations; the MDA
    transformation process runs as a sub-process inside each iteration
    (the paper: "in our global DW engineering process, the MDA
    transformation process is a sub-process").
    """

    def __init__(self, project_name: str, layers: Sequence[str]):
        if not layers:
            raise ProcessError("a DW project needs at least one layer")
        self.project_name = project_name
        self.layers = list(layers)
        self.iterations: List[Iteration] = []

    def start_iteration(self, layer: str,
                        component: str = "main") -> Iteration:
        if layer not in self.layers:
            raise ProcessError(
                f"unknown layer {layer!r}; project layers are "
                f"{self.layers}")
        iteration = Iteration(len(self.iterations) + 1, layer, component)
        self.iterations.append(iteration)
        return iteration

    def iterations_for(self, layer: str) -> List[Iteration]:
        return [iteration for iteration in self.iterations
                if iteration.layer == layer]

    def layer_complete(self, layer: str) -> bool:
        done = self.iterations_for(layer)
        return bool(done) and all(
            iteration.is_complete for iteration in done)

    @property
    def is_complete(self) -> bool:
        return all(self.layer_complete(layer) for layer in self.layers)

    def discipline_matrix(self) -> List[Dict[str, Any]]:
        """Per-iteration completion status — the Fig. 3 view."""
        matrix = []
        for iteration in self.iterations:
            matrix.append({
                "iteration": iteration.number,
                "layer": iteration.layer,
                "component": iteration.component,
                "disciplines": {
                    discipline.name: discipline.name in iteration.completed
                    for discipline in DISCIPLINES
                },
                "progress": iteration.progress(),
            })
        return matrix
