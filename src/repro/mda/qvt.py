"""QVT-lite: rule-based model-to-model transformation with tracing.

A transformation is an ordered list of :class:`Rule` objects.  Each
rule matches elements of one source metaclass (optionally guarded) and
produces target elements; every production is recorded as a
:class:`TraceLink`, so later rules — and callers — can resolve where a
source element went.  This mirrors QVT-Relations' ``when``/``where``
resolution in a deliberately small package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import TransformationError
from repro.mof.kernel import ModelExtent, MofElement


@dataclass
class TraceLink:
    """One source-to-target production record."""

    rule: str
    source_id: str
    target_ids: List[str]


class TransformationContext:
    """Shared state while one transformation executes."""

    def __init__(self, source: ModelExtent, target: ModelExtent):
        self.source = source
        self.target = target
        self.traces: List[TraceLink] = []
        self._by_source: Dict[str, List[MofElement]] = {}

    def record(self, rule_name: str, source_element: MofElement,
               targets: Sequence[MofElement]) -> None:
        self.traces.append(TraceLink(
            rule_name,
            source_element.element_id,
            [target.element_id for target in targets]))
        self._by_source.setdefault(
            source_element.element_id, []).extend(targets)

    def resolve(self, source_element: MofElement,
                class_name: Optional[str] = None) -> MofElement:
        """The target element a source element was transformed into.

        With ``class_name`` the lookup is narrowed to targets of that
        metaclass.  Raises TransformationError when unresolved — the
        QVT analogue of a failed ``when`` clause.
        """
        candidates = self._by_source.get(source_element.element_id, [])
        if class_name is not None:
            candidates = [element for element in candidates
                          if element.is_kind_of(class_name)]
        if not candidates:
            raise TransformationError(
                f"no target produced yet for {source_element!r}"
                + (f" of kind {class_name}" if class_name else ""))
        return candidates[0]

    def try_resolve(self, source_element: MofElement,
                    class_name: Optional[str] = None) \
            -> Optional[MofElement]:
        try:
            return self.resolve(source_element, class_name)
        except TransformationError:
            return None


class Rule:
    """One mapping rule: for each matching source element, produce targets.

    ``produce`` receives ``(element, context)`` and returns the created
    target element(s) — a single element, a list, or None to skip.
    """

    def __init__(self, name: str, source_class: str,
                 produce: Callable[[MofElement, TransformationContext],
                                   Any],
                 guard: Optional[Callable[[MofElement], bool]] = None):
        self.name = name
        self.source_class = source_class
        self.produce = produce
        self.guard = guard

    def matches(self, element: MofElement) -> bool:
        if not element.is_kind_of(self.source_class):
            return False
        return self.guard is None or bool(self.guard(element))


class QvtTransformation:
    """An ordered set of rules executed over a source extent."""

    def __init__(self, name: str, rules: Sequence[Rule]):
        if not rules:
            raise TransformationError(
                f"transformation {name!r} has no rules")
        self.name = name
        self.rules = list(rules)

    def run(self, source: ModelExtent,
            target: ModelExtent) -> TransformationContext:
        """Apply every rule in order; returns the context with traces."""
        context = TransformationContext(source, target)
        for rule in self.rules:
            for element in source.instances_of(rule.source_class):
                if not rule.matches(element):
                    continue
                produced = rule.produce(element, context)
                if produced is None:
                    continue
                if isinstance(produced, MofElement):
                    produced = [produced]
                context.record(rule.name, element, produced)
        return context
