"""MDA viewpoints (CIM, PIM, PSM) for data-warehouse engineering.

Following the paper, each DW layer is designed through a chain of
models: a *computation-independent* requirements model split into
business (BCIM) and technical (TCIM) parts, a *platform-independent*
multidimensional model, and a *platform-specific* relational model.
The PIM and PSM are CWM model extents; the CIM is a structured
requirements capture.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cwm import cwm_metamodel
from repro.errors import MdaError
from repro.mof.kernel import ModelExtent


class Viewpoint(enum.Enum):
    """The MDA model levels used by the DW design framework."""

    BCIM = "business-cim"
    TCIM = "technical-cim"
    PIM = "pim"
    PSM = "psm"
    CODE = "code"


@dataclass
class MeasureSpec:
    """A numeric fact requested by the business (CIM level)."""

    name: str
    aggregator: str = "sum"
    description: str = ""

    def __post_init__(self) -> None:
        if self.aggregator not in ("sum", "avg", "min", "max", "count"):
            raise MdaError(
                f"measure {self.name!r}: unknown aggregator "
                f"{self.aggregator!r}")


@dataclass
class DimensionSpec:
    """An analysis axis requested by the business (CIM level).

    ``levels`` are ordered from coarsest to finest (year → month → day).
    """

    name: str
    levels: List[str] = field(default_factory=list)
    is_time: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.levels:
            self.levels = [self.name.lower()]


@dataclass
class BusinessRequirement:
    """One analytical subject area — the unit the BCIM is made of.

    This is the goal/user-driven capture: *what* the business wants to
    analyse, before any platform decisions.
    """

    subject: str
    measures: List[MeasureSpec]
    dimensions: List[DimensionSpec]
    goal: str = ""

    def __post_init__(self) -> None:
        if not self.measures:
            raise MdaError(
                f"requirement {self.subject!r} needs at least one measure")
        if not self.dimensions:
            raise MdaError(
                f"requirement {self.subject!r} needs at least one dimension")


@dataclass
class TechnicalRequirement:
    """The TCIM: platform constraints shared by every layer."""

    target_platform: str = "repro-engine"
    naming_convention: str = "snake_case"
    surrogate_keys: bool = True
    history_tracking: bool = False


class CimModel:
    """The computation-independent model: BCIM + TCIM."""

    def __init__(self, name: str,
                 requirements: Sequence[BusinessRequirement],
                 technical: Optional[TechnicalRequirement] = None):
        if not requirements:
            raise MdaError("a CIM needs at least one business requirement")
        self.name = name
        self.viewpoint = Viewpoint.BCIM
        self.requirements = list(requirements)
        self.technical = technical or TechnicalRequirement()

    def __repr__(self) -> str:
        return (f"<CimModel {self.name!r} "
                f"subjects={[r.subject for r in self.requirements]}>")

    def subject_names(self) -> List[str]:
        return [requirement.subject for requirement in self.requirements]

    @classmethod
    def from_dict(cls, payload: Dict) -> "CimModel":
        """Build a CIM from its JSON form (the MDDWS web API input).

        Shape::

            {"name": "retail",
             "requirements": [
               {"subject": "Sales", "goal": "...",
                "measures": [{"name": "revenue",
                              "aggregator": "sum"}],
                "dimensions": [{"name": "Time",
                                "levels": ["year", "month"],
                                "is_time": true}]}],
             "technical": {"surrogate_keys": true,
                           "history_tracking": false}}
        """
        if not isinstance(payload, dict) or "name" not in payload:
            raise MdaError("CIM payload needs a 'name' field")
        requirements = []
        for entry in payload.get("requirements", []):
            measures = [
                MeasureSpec(item["name"],
                            item.get("aggregator", "sum"),
                            item.get("description", ""))
                for item in entry.get("measures", [])
            ]
            dimensions = [
                DimensionSpec(item["name"],
                              list(item.get("levels", [])),
                              bool(item.get("is_time", False)),
                              item.get("description", ""))
                for item in entry.get("dimensions", [])
            ]
            requirements.append(BusinessRequirement(
                subject=entry["subject"],
                measures=measures,
                dimensions=dimensions,
                goal=entry.get("goal", "")))
        technical_payload = payload.get("technical", {})
        technical = TechnicalRequirement(
            target_platform=technical_payload.get(
                "target_platform", "repro-engine"),
            naming_convention=technical_payload.get(
                "naming_convention", "snake_case"),
            surrogate_keys=bool(technical_payload.get(
                "surrogate_keys", True)),
            history_tracking=bool(technical_payload.get(
                "history_tracking", False)))
        return cls(payload["name"], requirements, technical)


class PimModel:
    """Platform-independent model: a CWM OLAP extent."""

    def __init__(self, name: str, extent: Optional[ModelExtent] = None):
        self.name = name
        self.viewpoint = Viewpoint.PIM
        self.extent = extent or ModelExtent(cwm_metamodel(), name)

    def cubes(self) -> List:
        return self.extent.instances_of("Cube")

    def dimensions(self) -> List:
        return self.extent.instances_of("Dimension")

    def validate(self) -> List[str]:
        return self.extent.validate()


class PsmModel:
    """Platform-specific model: a CWM Relational extent plus platform tag."""

    def __init__(self, name: str, platform: str = "repro-engine",
                 extent: Optional[ModelExtent] = None):
        self.name = name
        self.platform = platform
        self.viewpoint = Viewpoint.PSM
        self.extent = extent or ModelExtent(cwm_metamodel(), name)

    def tables(self) -> List:
        return self.extent.instances_of("Table")

    def validate(self) -> List[str]:
        return self.extent.validate()
