"""The built-in DW transformation chain (CIM → PIM → PSM).

``cim_to_pim`` turns captured business requirements into a CWM OLAP
model; ``pim_to_psm`` is a QVT transformation deriving a relational
star schema from that OLAP model.  Together with
:func:`repro.mda.codegen.generate_code` they realize the paper's
"definition of the layer BCIM ... ends with components code
generation" pipeline (Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cwm import OlapBuilder, RelationalBuilder
from repro.errors import TransformationError
from repro.mda.qvt import QvtTransformation, Rule, TransformationContext
from repro.mda.viewpoints import (
    CimModel,
    PimModel,
    PsmModel,
    TechnicalRequirement,
)
from repro.mof.kernel import MofElement


def _snake(name: str) -> str:
    """Snake-case an identifier, dodging SQL reserved words.

    Generated DDL must be directly executable on the engine, so a
    level or measure named e.g. ``group`` is mangled to ``group_``
    (standard codegen identifier-mangling).
    """
    from repro.engine.parser import _KEYWORDS

    cleaned = []
    for char in name.strip():
        if char.isalnum():
            cleaned.append(char.lower())
        else:
            cleaned.append("_")
    text = "".join(cleaned)
    while "__" in text:
        text = text.replace("__", "_")
    text = text.strip("_")
    if text.upper() in _KEYWORDS:
        text += "_"
    return text


def cim_to_pim(cim: CimModel) -> Tuple[PimModel, List[Dict[str, str]]]:
    """Derive the multidimensional PIM from the business requirements.

    Each business requirement becomes one cube; each dimension spec
    becomes a (shared, name-deduplicated) dimension with one hierarchy
    holding its levels.  Returns the PIM plus a trace list.
    """
    pim = PimModel(f"{cim.name}-pim")
    olap = OlapBuilder(pim.extent)
    schema = olap.olap_schema(f"{_snake(cim.name)}_olap")
    traces: List[Dict[str, str]] = []
    shared_dimensions: Dict[str, MofElement] = {}

    for requirement in cim.requirements:
        cube = olap.cube(schema, requirement.subject)
        traces.append({
            "rule": "requirement-to-cube",
            "source": requirement.subject,
            "target": cube.element_id,
        })
        for spec in requirement.dimensions:
            dimension = shared_dimensions.get(spec.name)
            if dimension is None:
                dimension = olap.dimension(
                    schema, spec.name, is_time=spec.is_time)
                olap.hierarchy(dimension, f"{_snake(spec.name)}_h",
                               spec.levels)
                shared_dimensions[spec.name] = dimension
                traces.append({
                    "rule": "dimension-spec-to-dimension",
                    "source": spec.name,
                    "target": dimension.element_id,
                })
            olap.associate(cube, dimension)
        for measure in requirement.measures:
            element = olap.measure(
                cube, measure.name, aggregator=measure.aggregator)
            traces.append({
                "rule": "measure-spec-to-measure",
                "source": measure.name,
                "target": element.element_id,
            })
    problems = pim.validate()
    if problems:
        raise TransformationError(
            f"cim_to_pim produced an invalid PIM: {problems}")
    return pim, traces


def pim_to_psm(pim: PimModel,
               technical: Optional[TechnicalRequirement] = None) \
        -> Tuple[PsmModel, TransformationContext]:
    """QVT transformation: OLAP PIM → relational star-schema PSM.

    * every OlapSchema maps to a relational Schema,
    * every Dimension maps to a ``dim_*`` table (surrogate key when the
      TCIM asks for one, plus one column per hierarchy level),
    * every Cube maps to a ``fact_*`` table with one foreign key per
      associated dimension and one numeric column per measure.
    """
    technical = technical or TechnicalRequirement()
    psm = PsmModel(f"{pim.name}-psm", platform=technical.target_platform)
    relational = RelationalBuilder(psm.extent)
    olap = OlapBuilder(pim.extent)

    def map_schema(element: MofElement,
                   context: TransformationContext) -> MofElement:
        return relational.schema(_snake(element.name or "dw"))

    def map_dimension(element: MofElement,
                      context: TransformationContext) -> List[MofElement]:
        olap_schema = element.ref("olapSchema")
        if olap_schema is None:
            raise TransformationError(
                f"dimension {element.name!r} has no OLAP schema")
        schema = context.resolve(olap_schema, "Schema")
        table_name = f"dim_{_snake(element.name)}"
        table = relational.table(schema, table_name)
        produced = [table]
        if technical.surrogate_keys:
            key = relational.column(
                table, f"{_snake(element.name)}_key", "INTEGER",
                nullable=False)
            relational.primary_key(table, f"pk_{table_name}", [key])
            produced.append(key)
        for level in olap.levels_of(element):
            produced.append(relational.column(
                table, _snake(level.name), "TEXT"))
        if technical.history_tracking:
            produced.append(relational.column(
                table, "valid_from", "DATE"))
            produced.append(relational.column(
                table, "valid_to", "DATE"))
        return produced

    def map_cube(element: MofElement,
                 context: TransformationContext) -> List[MofElement]:
        olap_schema = element.ref("olapSchema")
        if olap_schema is None:
            raise TransformationError(
                f"cube {element.name!r} has no OLAP schema")
        schema = context.resolve(olap_schema, "Schema")
        table_name = f"fact_{_snake(element.name)}"
        table = relational.table(schema, table_name)
        produced = [table]
        for dimension in olap.dimensions_of(element):
            dim_table = context.resolve(dimension, "Table")
            fk_column = relational.column(
                table, f"{_snake(dimension.name)}_key", "INTEGER",
                nullable=False)
            produced.append(fk_column)
            primary = relational.primary_key_of(dim_table)
            if primary is not None:
                relational.foreign_key(
                    table,
                    f"fk_{table_name}_{_snake(dimension.name)}",
                    [fk_column], primary)
        for measure in olap.measures_of(element):
            produced.append(relational.column(
                table, _snake(measure.name), "REAL"))
        return produced

    transformation = QvtTransformation("pim2psm", [
        Rule("schema-to-schema", "OlapSchema", map_schema),
        Rule("dimension-to-table", "Dimension", map_dimension),
        Rule("cube-to-fact-table", "Cube", map_cube),
    ])
    context = transformation.run(pim.extent, psm.extent)
    problems = psm.validate()
    if problems:
        raise TransformationError(
            f"pim_to_psm produced an invalid PSM: {problems}")
    return psm, context
