"""Code generation from a PSM: SQL DDL, ETL skeletons, cube definitions.

The paper notes that "the result of an MDA process is a semi-complete
system code", requiring a *code completion* activity afterwards.  This
module therefore emits (a) executable DDL, (b) ETL job skeletons whose
source bindings are completion points, and (c) OLAP cube definitions
ready for the analysis service — and it reports the open completion
points explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.cwm import OlapBuilder, RelationalBuilder
from repro.errors import MdaError
from repro.mda.viewpoints import PimModel, PsmModel
from repro.mof.kernel import MofElement


@dataclass
class GeneratedArtifacts:
    """Everything one codegen run produced."""

    ddl: List[str] = field(default_factory=list)
    etl_jobs: List[Dict[str, Any]] = field(default_factory=list)
    cube_definitions: List[Dict[str, Any]] = field(default_factory=list)
    completion_points: List[str] = field(default_factory=list)

    @property
    def artifact_count(self) -> int:
        return len(self.ddl) + len(self.etl_jobs) \
            + len(self.cube_definitions)


def _table_ddl(table: MofElement) -> str:
    relational = RelationalBuilder
    parts = []
    primary = relational.primary_key_of(table)
    pk_columns = set()
    if primary is not None:
        pk_columns = {column.element_id
                      for column in primary.refs("feature")}
    for column in relational.columns_of(table):
        clause = f"{column.name} {column.get('sqlType')}"
        if column.element_id in pk_columns:
            clause += " PRIMARY KEY"
        elif column.get("isNullable") is False:
            clause += " NOT NULL"
        parts.append(clause)
    if not parts:
        raise MdaError(f"table {table.name!r} has no columns")
    return f"CREATE TABLE {table.name} ({', '.join(parts)})"


def _ordered_tables(psm: PsmModel) -> List[MofElement]:
    """Tables ordered so FK targets are created before their referrers."""
    relational = RelationalBuilder
    tables = psm.tables()
    by_id = {table.element_id: table for table in tables}
    owner_of_key: Dict[str, str] = {}
    for table in tables:
        for element in table.refs("ownedElement"):
            if element.is_kind_of("UniqueConstraint"):
                owner_of_key[element.element_id] = table.element_id

    ordered: List[MofElement] = []
    visited: Dict[str, str] = {}  # id -> 'doing' | 'done'

    def visit(table: MofElement) -> None:
        state = visited.get(table.element_id)
        if state == "done":
            return
        if state == "doing":
            raise MdaError(
                f"cyclic foreign keys detected at table {table.name!r}")
        visited[table.element_id] = "doing"
        for foreign in relational.foreign_keys_of(table):
            target_key = foreign.ref("uniqueKey")
            if target_key is None:
                continue
            owner = owner_of_key.get(target_key.element_id)
            if owner is not None and owner != table.element_id:
                visit(by_id[owner])
        visited[table.element_id] = "done"
        ordered.append(table)

    for table in sorted(tables, key=lambda element: element.name or ""):
        visit(table)
    return ordered


def generate_code(psm: PsmModel,
                  pim: PimModel = None) -> GeneratedArtifacts:
    """Generate DDL, ETL skeletons and cube definitions from a PSM.

    Passing the originating ``pim`` lets the generator also emit one
    cube definition per PIM cube, wired to the PSM fact tables.
    """
    artifacts = GeneratedArtifacts()
    relational = RelationalBuilder

    tables = _ordered_tables(psm)
    for table in tables:
        artifacts.ddl.append(_table_ddl(table))
    for index in psm.extent.instances_of("SQLIndex"):
        spanned = index.ref("spannedClass")
        columns = ", ".join(
            column.name for column in index.refs("indexedFeature"))
        unique = "UNIQUE " if index.get("isUnique") else ""
        artifacts.ddl.append(
            f"CREATE {unique}INDEX {index.name} "
            f"ON {spanned.name} ({columns})")

    # One load-job skeleton per table; dimensions load before facts.
    for table in tables:
        columns = [column.name
                   for column in relational.columns_of(table)]
        job = {
            "name": f"load_{table.name}",
            "target_table": table.name,
            "columns": columns,
            "source": None,  # completion point: bind a real source
            "kind": "dimension" if table.name.startswith("dim_")
                    else "fact",
        }
        artifacts.etl_jobs.append(job)
        artifacts.completion_points.append(
            f"bind extraction source for job load_{table.name}")

    if pim is not None:
        olap = OlapBuilder(pim.extent)
        for cube in pim.cubes():
            fact_name = f"fact_{_normalize(cube.name)}"
            dimensions = []
            for dimension in olap.dimensions_of(cube):
                dimensions.append({
                    "name": dimension.name,
                    "table": f"dim_{_normalize(dimension.name)}",
                    "key": f"{_normalize(dimension.name)}_key",
                    "levels": [_normalize(level.name)
                               for level in olap.levels_of(dimension)],
                })
            measures = [
                {
                    "name": measure.name,
                    "column": _normalize(measure.name),
                    "aggregator": measure.get("aggregator") or "sum",
                }
                for measure in olap.measures_of(cube)
            ]
            artifacts.cube_definitions.append({
                "name": cube.name,
                "fact_table": fact_name,
                "dimensions": dimensions,
                "measures": measures,
            })
    return artifacts


def _normalize(name: str) -> str:
    """Same identifier normalization (and keyword mangling) as the
    PIM->PSM transformation, so cube definitions always match DDL."""
    from repro.mda.transformations import _snake

    return _snake(name or "")
