"""Model-driven architecture engineering (MDA + QVT + 2TUP).

This package implements the paper's Section 3.2 machinery:

* :mod:`repro.mda.viewpoints` — the CIM/PIM/PSM model levels, including
  the paper's BCIM (business CIM) and TCIM (technical CIM) split,
* :mod:`repro.mda.qvt` — a QVT-lite rule-based model-to-model
  transformation engine with trace records,
* :mod:`repro.mda.transformations` — the built-in DW transformation
  chain (requirements → multidimensional PIM → relational star PSM),
* :mod:`repro.mda.codegen` — PSM-to-code generation (SQL DDL, ETL job
  skeletons, OLAP cube definitions),
* :mod:`repro.mda.process` — the 2 Track Unified Process whose
  disciplines wrap the MDA transformation chain,
* :mod:`repro.mda.project` — DW project management on top of 2TUP.
"""

from repro.mda.codegen import GeneratedArtifacts, generate_code
from repro.mda.process import (
    DISCIPLINES,
    Discipline,
    Iteration,
    TwoTrackProcess,
)
from repro.mda.project import DwProject, Risk
from repro.mda.qvt import QvtTransformation, Rule, TraceLink
from repro.mda.transformations import cim_to_pim, pim_to_psm
from repro.mda.viewpoints import (
    BusinessRequirement,
    CimModel,
    DimensionSpec,
    MeasureSpec,
    PimModel,
    PsmModel,
    TechnicalRequirement,
    Viewpoint,
)

__all__ = [
    "BusinessRequirement",
    "CimModel",
    "DISCIPLINES",
    "DimensionSpec",
    "Discipline",
    "DwProject",
    "GeneratedArtifacts",
    "Iteration",
    "MeasureSpec",
    "PimModel",
    "PsmModel",
    "QvtTransformation",
    "Risk",
    "Rule",
    "TechnicalRequirement",
    "TraceLink",
    "TwoTrackProcess",
    "Viewpoint",
    "cim_to_pim",
    "generate_code",
    "pim_to_psm",
]
