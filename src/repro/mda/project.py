"""DW project management over the 2TUP process.

Carries the project-level concerns the MDDWS management layer exposes:
layers, risks (the paper stresses DW projects are "exposed to several
technical risks"), artifact registry and progress reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ProcessError
from repro.mda.process import TwoTrackProcess

#: The classical data-warehousing architecture layers (Inmon-style),
#: used as the default layer decomposition for new projects.
DEFAULT_LAYERS = ("source", "staging", "warehouse", "datamart")

_SEVERITIES = ("low", "medium", "high", "critical")


@dataclass
class Risk:
    """A tracked project risk with its mitigation."""

    title: str
    severity: str = "medium"
    mitigation: str = ""
    open: bool = True

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ProcessError(
                f"risk severity must be one of {_SEVERITIES}, "
                f"got {self.severity!r}")


class DwProject:
    """One data-warehouse development project."""

    def __init__(self, name: str,
                 layers: Sequence[str] = DEFAULT_LAYERS,
                 description: str = ""):
        self.name = name
        self.description = description
        self.process = TwoTrackProcess(name, layers)
        self.risks: List[Risk] = []
        self.artifacts: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return (f"<DwProject {self.name!r} layers={self.process.layers} "
                f"iterations={len(self.process.iterations)}>")

    # -- risk management -----------------------------------------------------------

    def add_risk(self, title: str, severity: str = "medium",
                 mitigation: str = "") -> Risk:
        risk = Risk(title, severity, mitigation)
        self.risks.append(risk)
        return risk

    def close_risk(self, title: str) -> None:
        for risk in self.risks:
            if risk.title == title and risk.open:
                risk.open = False
                return
        raise ProcessError(f"no open risk titled {title!r}")

    def open_risks(self, minimum_severity: str = "low") -> List[Risk]:
        threshold = _SEVERITIES.index(minimum_severity)
        return [risk for risk in self.risks
                if risk.open
                and _SEVERITIES.index(risk.severity) >= threshold]

    # -- artifact registry ----------------------------------------------------------

    def register_artifact(self, key: str, artifact: Any) -> None:
        if key in self.artifacts:
            raise ProcessError(f"artifact {key!r} already registered")
        self.artifacts[key] = artifact

    def artifact(self, key: str) -> Any:
        if key not in self.artifacts:
            raise ProcessError(f"no artifact registered as {key!r}")
        return self.artifacts[key]

    # -- reporting --------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        process = self.process
        return {
            "project": self.name,
            "layers": {
                layer: process.layer_complete(layer)
                for layer in process.layers
            },
            "iterations": len(process.iterations),
            "complete": process.is_complete,
            "open_risks": len(self.open_risks()),
            "artifacts": sorted(self.artifacts),
        }
