"""Undo-log transactions for the embedded engine.

The engine runs in auto-commit mode until ``BEGIN`` opens an explicit
transaction.  While a transaction is open, every mutation appends an
undo record; ``ROLLBACK`` replays the records in reverse, ``COMMIT``
discards them.  DDL (create/drop table) participates too, so a rolled
back transaction also removes tables it created.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import TransactionError

# Undo record shapes:
#   ("insert", table, rowid, row)          -> undo by deleting rowid
#   ("delete", table, rowid, old_row)      -> undo by restoring old row
#   ("update", table, rowid, old_row)      -> undo by writing old row back
#   ("create_table", table)                -> undo by dropping the table
#   ("drop_table", table, storage)         -> undo by re-attaching storage
UndoRecord = Tuple[Any, ...]


class Transaction:
    """The undo log of one open transaction."""

    def __init__(self) -> None:
        self._log: List[UndoRecord] = []
        self.active = True

    def record(self, entry: UndoRecord) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self._log.append(entry)

    def __len__(self) -> int:
        return len(self._log)

    def commit(self) -> None:
        if not self.active:
            raise TransactionError("transaction already finished")
        self.active = False
        self._log.clear()

    def rollback(self, database) -> None:
        if not self.active:
            raise TransactionError("transaction already finished")
        self.active = False
        for entry in reversed(self._log):
            action = entry[0]
            if action == "insert":
                _, table, rowid, _row = entry
                database.storage(table).delete(rowid)
            elif action == "delete":
                _, table, rowid, old_row = entry
                database.storage(table).restore(rowid, old_row)
            elif action == "update":
                _, table, rowid, old_row = entry
                database.storage(table).update(rowid, old_row)
            elif action == "create_table":
                _, table = entry
                database.drop_storage(table, record=False)
            elif action == "drop_table":
                _, table, storage = entry
                database.attach_storage(storage)
            else:  # pragma: no cover
                raise TransactionError(f"bad undo record {entry!r}")
        self._log.clear()
