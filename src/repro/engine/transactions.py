"""Undo-log transactions (with a redo log for the WAL) .

The engine runs in auto-commit mode until ``BEGIN`` opens an explicit
transaction.  While a transaction is open, every mutation appends an
undo record; ``ROLLBACK`` replays the records in reverse, ``COMMIT``
discards them.  DDL (create/drop table) participates too, so a rolled
back transaction also removes tables it created.

When the database has a write-ahead log attached, the transaction
additionally accumulates *redo* records — the forward image of each
mutation.  ``COMMIT`` hands the whole redo list to the WAL as one
atomic commit record; ``ROLLBACK`` discards it, so nothing about an
aborted transaction ever reaches disk.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import TransactionError

# Undo record shapes:
#   ("insert", table, rowid, row)          -> undo by deleting rowid
#   ("delete", table, rowid, old_row)      -> undo by restoring old row
#   ("update", table, rowid, old_row)      -> undo by writing old row back
#   ("create_table", table)                -> undo by dropping the table
#   ("drop_table", table, storage)         -> undo by re-attaching storage
UndoRecord = Tuple[Any, ...]

# Redo record shapes (the WAL vocabulary; replayed by
# Database._apply_redo in log order):
#   ("insert", table, rowid, row)
#   ("delete", table, rowid)
#   ("update", table, rowid, new_row)
#   ("create_table", schema)               -> the pickled TableSchema
#   ("drop_table", table)
#   ("create_index", table, name, columns, unique)
#   ("add_column", table, column)
#   ("create_view", name, select)          -> the parsed SELECT
#   ("drop_view", name)
RedoRecord = Tuple[Any, ...]


class Transaction:
    """The undo log (and pending redo log) of one open transaction."""

    def __init__(self) -> None:
        self._log: List[UndoRecord] = []
        self._redo: List[RedoRecord] = []
        self.active = True

    def record(self, entry: UndoRecord) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self._log.append(entry)

    def record_redo(self, entry: RedoRecord) -> None:
        if not self.active:
            raise TransactionError("transaction is no longer active")
        self._redo.append(entry)

    def take_redo(self) -> List[RedoRecord]:
        """Detach the redo list (called once, at commit)."""
        redo, self._redo = self._redo, []
        return redo

    def __len__(self) -> int:
        return len(self._log)

    def commit(self) -> None:
        if not self.active:
            raise TransactionError("transaction already finished")
        self.active = False
        self._log.clear()

    def rollback(self, database) -> None:
        if not self.active:
            raise TransactionError("transaction already finished")
        self.active = False
        self._redo.clear()  # nothing of an aborted txn reaches the WAL
        # DML undos must *unwind* the MVCC version chains (pop the
        # aborted versions, clear their death stamps) rather than run
        # the forward primitives, which would append yet more
        # versions — an aborted effect has to vanish from every
        # snapshot, not merely be superseded.
        for entry in reversed(self._log):
            action = entry[0]
            if action == "insert":
                _, table, rowid, _row = entry
                storage = database.storage(table)
                storage.undo_insert(rowid)
                storage.unallocate(rowid)
            elif action == "delete":
                _, table, rowid, old_row = entry
                database.storage(table).undo_delete(rowid, old_row)
            elif action == "update":
                _, table, rowid, old_row = entry
                database.storage(table).undo_update(rowid, old_row)
            elif action == "create_table":
                _, table = entry
                database.drop_storage(table, record=False)
            elif action == "drop_table":
                _, table, storage = entry
                database.attach_storage(storage)
            else:  # pragma: no cover
                raise TransactionError(f"bad undo record {entry!r}")
        self._log.clear()
