"""Iterator-model execution of parsed SQL statements.

The executor walks the statement AST produced by :mod:`repro.engine.parser`
and runs it against the table storages.  Joins are left-deep; equality
joins are executed as hash joins, everything else as nested loops.
Single-table equality predicates use a matching hash index when present.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.expressions import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    EvalContext,
    Expression,
    Literal,
    Parameter,
    Star,
    _expr_text,
    find_aggregates,
)
from repro.engine.parser import (
    AlterTableAddColumn,
    CompoundSelect,
    CreateTableAsStatement,
    CreateIndexStatement,
    CreateViewStatement,
    DropViewStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    Join,
    SelectItem,
    SelectStatement,
    TableRef,
    UpdateStatement,
)
from repro.engine.schema import TableSchema
from repro.engine.types import sort_key
from repro.errors import CatalogError, EngineError

_AMBIGUOUS = object()


class ResultSet:
    """A fully materialized query result."""

    def __init__(self, columns: List[str], rows: List[tuple]):
        self.columns = columns
        self.rows = rows
        # Key tuple computed once; to_dicts/__iter__ reuse it per row.
        self._keys = tuple(columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        keys = self._keys
        for row in self.rows:
            yield dict(zip(keys, row))

    def __repr__(self) -> str:
        return f"<ResultSet {len(self.rows)} rows x {self.columns}>"

    def first(self) -> Optional[Dict[str, Any]]:
        if not self.rows:
            return None
        return dict(zip(self.columns, self.rows[0]))

    def scalar(self) -> Any:
        """The single value of a one-row one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise EngineError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        try:
            position = self.columns.index(name)
        except ValueError as exc:
            raise EngineError(f"result has no column {name!r}") from exc
        return [row[position] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Any]]:
        keys = self._keys
        return [dict(zip(keys, row)) for row in self.rows]

    def tuples(self) -> List[tuple]:
        """Rows as positional tuples — no per-row dict materialization."""
        return list(self.rows)


class _Source:
    """One resolved FROM-clause table: alias, schema and storage.

    ``snapshot`` pins every scan of this source to one commit number
    (the MVCC read path); ``None`` scans the live rows — only valid
    under the database's exclusive lock (writers and in-transaction
    reads).
    """

    def __init__(self, alias: str, schema: TableSchema, storage,
                 snapshot=None):
        self.alias = alias
        self.schema = schema
        self.storage = storage
        self.snapshot = snapshot
        # Context keys computed once per statement, not once per row.
        alias_key = alias.lower()
        self._rowid_key = "__rowid_" + alias_key
        self._keys = [
            (f"{alias_key}.{name}", name)
            for name in schema.lower_names
        ]

    def contexts(self) -> Iterable[Dict[str, Any]]:
        if self.snapshot is not None:
            for rowid, row in self.storage.snapshot_rows(self.snapshot.cn):
                yield self.row_context(rowid, row)
            return
        for rowid, row in self.storage.scan():
            yield self.row_context(rowid, row)

    def fetch_row(self, rowid: int) -> Optional[List[Any]]:
        """The row for ``rowid`` on this source's read path (or None)."""
        if self.snapshot is not None:
            return self.storage.visible_row(rowid, self.snapshot.cn)
        return self.storage.rows.get(rowid)

    def row_context(self, rowid: int, row: List[Any]) -> Dict[str, Any]:
        values: Dict[str, Any] = {self._rowid_key: rowid}
        for (qualified, name), value in zip(self._keys, row):
            values[qualified] = value
            values[name] = value
        return values

    def null_context(self) -> Dict[str, Any]:
        values: Dict[str, Any] = {"__rowid_" + self.alias.lower(): None}
        alias = self.alias.lower()
        for column in self.schema.columns:
            name = column.name.lower()
            values[f"{alias}.{name}"] = None
            values[name] = None
        return values


def _merge_contexts(left: Dict[str, Any],
                    right: Dict[str, Any]) -> Dict[str, Any]:
    merged = dict(left)
    for key, value in right.items():
        if "." in key or key.startswith("__rowid_"):
            merged[key] = value
        elif key in merged:
            merged[key] = _AMBIGUOUS
        else:
            merged[key] = value
    return merged


class _PseudoColumn:
    """Column stand-in for view outputs (star expansion only)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _ViewSource:
    """A FROM-clause source backed by a view's materialized output."""

    def __init__(self, alias: str, column_names):
        self.alias = alias
        self.schema = _PseudoSchema(column_names)


class _PseudoSchema:
    def __init__(self, column_names):
        self.columns = [_PseudoColumn(name) for name in column_names]

    def has_column(self, name: str) -> bool:
        target = name.lower()
        return any(column.name.lower() == target
                   for column in self.columns)


class _RowContext(EvalContext):
    """EvalContext that rejects ambiguous unqualified column names."""

    def lookup(self, name: str) -> Any:
        key = name.lower()
        if key in self.values:
            value = self.values[key]
            if value is _AMBIGUOUS:
                raise EngineError(f"ambiguous column reference {name!r}")
            return value
        raise EngineError(f"unknown column {name!r} in expression")


class Executor:
    """Executes statements against a :class:`repro.engine.database.Database`."""

    def __init__(self, database):
        self._db = database

    # -- dispatch ---------------------------------------------------------------

    def execute(self, statement, params: Sequence[Any]) -> Any:
        if isinstance(statement, SelectStatement):
            # Compiled plan when available, interpreted otherwise.
            return self._db._run_select(statement, params)
        if isinstance(statement, CompoundSelect):
            return self.execute_compound(statement, params)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, params)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, params)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, params)
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateIndexStatement):
            return self._execute_create_index(statement)
        if isinstance(statement, AlterTableAddColumn):
            self._db.storage(statement.table).add_column(statement.column)
            self._db.record_redo(
                ("add_column", statement.table, statement.column))
            return 0
        if isinstance(statement, CreateTableAsStatement):
            return self._execute_create_table_as(statement, params)
        if isinstance(statement, CreateViewStatement):
            return self._execute_create_view(statement)
        if isinstance(statement, DropViewStatement):
            return self._execute_drop_view(statement)
        raise EngineError(
            f"executor cannot handle {type(statement).__name__}")

    # -- DDL ----------------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTableStatement) -> int:
        if statement.if_not_exists and self._db.catalog.has_table(statement.name):
            return 0
        schema = TableSchema(statement.name, statement.columns)
        self._db.create_storage(schema)
        return 0

    def _execute_drop_table(self, statement: DropTableStatement) -> int:
        if statement.if_exists and not self._db.catalog.has_table(statement.name):
            return 0
        self._db.drop_storage(statement.name)
        return 0

    def _execute_create_index(self, statement: CreateIndexStatement) -> int:
        storage = self._db.storage(statement.table)
        storage.add_index(statement.name, statement.columns,
                          unique=statement.unique)
        self._db.record_redo(
            ("create_index", statement.table, statement.name,
             list(statement.columns), statement.unique))
        return 0

    def _execute_create_table_as(self, statement: CreateTableAsStatement,
                                 params: Sequence[Any]) -> int:
        """CTAS: materialize a query into a new table.

        Column types are inferred from the first non-NULL value of
        each output column (TEXT when a column is entirely NULL).
        """
        import datetime

        from repro.engine.schema import Column as SchemaColumn
        from repro.engine.schema import TableSchema
        from repro.engine.types import SqlType

        if statement.if_not_exists \
                and self._db.catalog.has_table(statement.name):
            return 0
        result = self._db._run_select(statement.select, params)

        def infer(position: int) -> SqlType:
            for row in result.rows:
                value = row[position]
                if value is None:
                    continue
                if isinstance(value, bool):
                    return SqlType.BOOLEAN
                if isinstance(value, int):
                    return SqlType.INTEGER
                if isinstance(value, float):
                    return SqlType.REAL
                if isinstance(value, datetime.datetime):
                    return SqlType.TIMESTAMP
                if isinstance(value, datetime.date):
                    return SqlType.DATE
                return SqlType.TEXT
            return SqlType.TEXT

        columns = [
            SchemaColumn(name=name, type=infer(position))
            for position, name in enumerate(result.columns)
        ]
        schema = TableSchema(statement.name, columns)
        storage = self._db.create_storage(schema)
        count = 0
        for row in result.rows:
            rowid = storage.insert(list(row))
            self._db.record_undo(
                ("insert", schema.name, rowid, list(row)))
            self._db.record_redo(
                ("insert", schema.name, rowid, list(row)))
            count += 1
        return count

    def _execute_create_view(self, statement: CreateViewStatement) -> int:
        key = statement.name.lower()
        if key in self._db.views:
            if statement.if_not_exists:
                return 0
            raise CatalogError(f"view {statement.name!r} already exists")
        if self._db.catalog.has_table(statement.name):
            raise CatalogError(
                f"a table named {statement.name!r} already exists")
        # Validate the defining query eagerly so broken views fail at
        # creation, not first use.
        self.execute_select(statement.select, ())
        self._db.views[key] = statement.select
        self._db.record_redo(("create_view", key, statement.select))
        return 0

    def _execute_drop_view(self, statement: DropViewStatement) -> int:
        key = statement.name.lower()
        if key not in self._db.views:
            if statement.if_exists:
                return 0
            raise CatalogError(f"no such view: {statement.name!r}")
        del self._db.views[key]
        self._db.record_redo(("drop_view", key))
        return 0

    # -- DML ----------------------------------------------------------------------

    def _execute_insert(self, statement: InsertStatement,
                        params: Sequence[Any]) -> int:
        storage = self._db.storage(statement.table)
        schema = storage.schema
        columns = statement.columns or schema.column_names
        count = 0
        context = _RowContext({}, params)
        for value_exprs in statement.rows:
            if len(value_exprs) != len(columns):
                raise EngineError(
                    f"INSERT into {statement.table}: {len(columns)} columns "
                    f"but {len(value_exprs)} values")
            values = {
                column: expr.evaluate(context)
                for column, expr in zip(columns, value_exprs)
            }
            row = schema.coerce_row(values)
            rowid = storage.insert(row)
            self._db.record_undo(("insert", schema.name, rowid, row))
            # Copy the row into the redo image: ALTER TABLE later in
            # the same transaction appends to the live list in place.
            self._db.record_redo(
                ("insert", schema.name, rowid, list(row)))
            count += 1
        return count

    def _execute_update(self, statement: UpdateStatement,
                        params: Sequence[Any]) -> int:
        storage = self._db.storage(statement.table)
        schema = storage.schema
        source = _Source(statement.table, schema, storage)
        count = 0
        targets: List[Tuple[int, List[Any]]] = []
        for rowid, row in list(storage.scan()):
            context = _RowContext(source.row_context(rowid, row), params)
            if statement.where is not None \
                    and statement.where.evaluate(context) is not True:
                continue
            new_row = list(row)
            for column_name, expr in statement.assignments:
                position = schema.column_index(column_name)
                value = expr.evaluate(context)
                values = {column_name: value}
                coerced = schema.coerce_row(
                    {**dict(zip(schema.column_names, new_row)), **values})
                new_row = coerced
            targets.append((rowid, new_row))
        for rowid, new_row in targets:
            old_row = storage.update(rowid, new_row)
            self._db.record_undo(("update", schema.name, rowid, old_row))
            self._db.record_redo(
                ("update", schema.name, rowid, list(new_row)))
            count += 1
        return count

    def _execute_delete(self, statement: DeleteStatement,
                        params: Sequence[Any]) -> int:
        storage = self._db.storage(statement.table)
        source = _Source(statement.table, storage.schema, storage)
        doomed: List[int] = []
        for rowid, row in list(storage.scan()):
            context = _RowContext(source.row_context(rowid, row), params)
            if statement.where is not None \
                    and statement.where.evaluate(context) is not True:
                continue
            doomed.append(rowid)
        for rowid in doomed:
            old_row = storage.delete(rowid)
            self._db.record_undo(
                ("delete", storage.schema.name, rowid, old_row))
            self._db.record_redo(
                ("delete", storage.schema.name, rowid))
        return len(doomed)

    # -- SELECT ---------------------------------------------------------------------

    def execute_select(self, statement: SelectStatement,
                       params: Sequence[Any],
                       snapshot=None) -> ResultSet:
        sources: List[_Source] = []
        if statement.from_clause is None:
            contexts: List[Dict[str, Any]] = [{}]
        elif isinstance(statement.from_clause, TableRef) \
                and statement.where is not None \
                and statement.from_clause.name.lower() \
                not in self._db.views:
            # Single-table query: try an index-accelerated scan for an
            # equality predicate before falling back to a full scan.
            source = self._resolve(statement.from_clause, snapshot)
            sources.append(source)
            indexed = self._try_index_scan(
                source, statement.where, params)
            if indexed is not None:
                contexts = indexed
            else:
                contexts = list(source.contexts())
        else:
            contexts = list(self._from_contexts(
                statement.from_clause, sources, params, snapshot))

        if statement.where is not None:
            contexts = [
                values for values in contexts
                if statement.where.evaluate(_RowContext(values, params)) is True
            ]

        items = self._expand_stars(statement.items, sources)
        aggregates: List[AggregateCall] = []
        for item in items:
            aggregates.extend(find_aggregates(item.expression))
        if statement.having is not None:
            aggregates.extend(find_aggregates(statement.having))
        for expr, _asc in statement.order_by:
            aggregates.extend(find_aggregates(expr))

        grouped = bool(statement.group_by) or bool(aggregates)
        if grouped:
            contexts = self._group(
                contexts, statement.group_by, aggregates, params)
            if statement.having is not None:
                contexts = [
                    values for values in contexts
                    if statement.having.evaluate(
                        _RowContext(values, params)) is True
                ]

        columns = [self._output_name(item, index)
                   for index, item in enumerate(items)]

        # Evaluate the projection, remembering the source context of each
        # output row so ORDER BY can reference non-projected columns.
        produced: List[Tuple[tuple, Dict[str, Any]]] = []
        for values in contexts:
            context = _RowContext(values, params)
            row = tuple(item.expression.evaluate(context) for item in items)
            order_values = dict(values)
            for name, value in zip(columns, row):
                order_values.setdefault(name.lower(), value)
            produced.append((row, order_values))

        if statement.distinct:
            seen = set()
            unique: List[Tuple[tuple, Dict[str, Any]]] = []
            for row, order_values in produced:
                marker = tuple(
                    (type(v).__name__, v) if v.__hash__ else repr(v)
                    for v in row)
                if marker not in seen:
                    seen.add(marker)
                    unique.append((row, order_values))
            produced = unique

        if statement.order_by:
            for expr, ascending in reversed(statement.order_by):
                produced.sort(
                    key=lambda pair: sort_key(
                        expr.evaluate(_RowContext(pair[1], params))),
                    reverse=not ascending)

        rows = [row for row, _ctx in produced]
        if statement.offset is not None:
            offset = int(statement.offset.evaluate(_RowContext({}, params)))
            rows = rows[offset:]
        if statement.limit is not None:
            limit = int(statement.limit.evaluate(_RowContext({}, params)))
            rows = rows[:limit]
        return ResultSet(columns, rows)

    def execute_compound(self, statement: CompoundSelect,
                         params: Sequence[Any],
                         snapshot=None) -> ResultSet:
        """UNION / UNION ALL: concatenate part results.

        All parts run against the same snapshot, so a compound read
        observes one commit number even while writers land between
        part executions.
        """
        results = [self._db._run_select(part, params, snapshot)
                   for part in statement.parts]
        width = len(results[0].columns)
        for result in results[1:]:
            if len(result.columns) != width:
                raise EngineError(
                    f"UNION parts have different column counts "
                    f"({width} vs {len(result.columns)})")
        rows: List[tuple] = list(results[0].rows)
        for flag, result in zip(statement.all_flags, results[1:]):
            rows.extend(result.rows)
            if not flag:
                seen = set()
                unique: List[tuple] = []
                for row in rows:
                    marker = tuple(repr(value) for value in row)
                    if marker not in seen:
                        seen.add(marker)
                        unique.append(row)
                rows = unique
        return ResultSet(results[0].columns, rows)

    # -- index-accelerated scans --------------------------------------------------------

    def _try_index_scan(self, source: _Source, where: Expression,
                        params: Sequence[Any]) \
            -> Optional[List[Dict[str, Any]]]:
        """Candidate row contexts via an index, or None to full-scan.

        Handles a top-level equality predicate ``column = constant``
        (possibly inside an AND conjunction) where ``column`` has a
        single-column index.  The full WHERE is still re-applied by the
        caller, so the index only needs to be a superset filter.
        """
        candidates = self._find_indexable_equality(source, where, params)
        if candidates is None:
            return None
        index, key = candidates
        rowids = index.lookup((key,))
        wanted = (key,)
        contexts: List[Dict[str, Any]] = []
        for rowid in rowids:
            row = source.fetch_row(rowid)
            # MVCC buckets keep tombstones for superseded versions;
            # verify the fetched row really holds the looked-up key.
            if row is not None and index.key_for(row) == wanted:
                contexts.append(source.row_context(rowid, row))
        return contexts

    def _find_indexable_equality(self, source: _Source,
                                 where: Expression,
                                 params: Sequence[Any]):
        if isinstance(where, BinaryOp) and where.op == "AND":
            left = self._find_indexable_equality(
                source, where.left, params)
            if left is not None:
                return left
            return self._find_indexable_equality(
                source, where.right, params)
        if not isinstance(where, BinaryOp) or where.op != "=":
            return None
        column_side, value_side = where.left, where.right
        if not isinstance(column_side, ColumnRef):
            column_side, value_side = where.right, where.left
        if not isinstance(column_side, ColumnRef):
            return None
        if not isinstance(value_side, (Literal, Parameter)):
            return None
        name = column_side.name.lower()
        if "." in name:
            prefix, name = name.split(".", 1)
            if prefix != source.alias.lower():
                return None
        if not source.schema.has_column(name):
            return None
        index = source.storage.find_index(name)
        if index is None or len(index.column_names) != 1:
            return None
        key = value_side.evaluate(_RowContext({}, params))
        if key is None:
            return None
        return index, key

    # -- FROM / joins ----------------------------------------------------------------

    def _resolve(self, ref: TableRef, snapshot=None) -> Optional[_Source]:
        storage = self._db.storage(ref.name)
        return _Source(ref.alias, storage.schema, storage, snapshot)

    def _view_materialize(self, ref: TableRef, params: Sequence[Any],
                          snapshot=None) \
            -> Tuple["_ViewSource", List[Dict[str, Any]]]:
        """Run a view's defining SELECT once; source + row contexts."""
        select = self._db.views[ref.name.lower()]
        result = self._db._run_select(select, params, snapshot)
        alias = ref.alias.lower()
        keys = [(f"{alias}.{column.lower()}", column.lower())
                for column in result.columns]
        contexts: List[Dict[str, Any]] = []
        for row in result.rows:
            values: Dict[str, Any] = {}
            for (qualified, name), value in zip(keys, row):
                values[qualified] = value
                values[name] = value
            contexts.append(values)
        return _ViewSource(ref.alias, result.columns), contexts

    def _from_contexts(self, node, sources: List[_Source],
                       params: Sequence[Any],
                       snapshot=None) -> Iterable[Dict[str, Any]]:
        if isinstance(node, TableRef):
            if node.name.lower() in self._db.views:
                view_source, contexts = self._view_materialize(
                    node, params, snapshot)
                sources.append(view_source)
                return contexts
            source = self._resolve(node, snapshot)
            sources.append(source)
            return source.contexts()
        if isinstance(node, Join):
            left_contexts = list(
                self._from_contexts(node.left, sources, params, snapshot))
            right_source = self._resolve(node.right, snapshot)
            sources.append(right_source)
            return self._join(
                left_contexts, right_source, node.kind, node.condition, params)
        raise EngineError(f"bad FROM node {node!r}")  # pragma: no cover

    def _join(self, left_contexts: List[Dict[str, Any]], right: _Source,
              kind: str, condition: Optional[Expression],
              params: Sequence[Any]) -> Iterable[Dict[str, Any]]:
        equi = self._equi_join_keys(condition, left_contexts, right)
        if equi is not None and kind in ("INNER", "LEFT"):
            yield from self._hash_join(
                left_contexts, right, kind, equi, params)
            return
        right_contexts = list(right.contexts())
        for left_values in left_contexts:
            matched = False
            for right_values in right_contexts:
                merged = _merge_contexts(left_values, right_values)
                if condition is not None:
                    verdict = condition.evaluate(_RowContext(merged, params))
                    if verdict is not True:
                        continue
                matched = True
                yield merged
            if kind == "LEFT" and not matched:
                yield _merge_contexts(left_values, right.null_context())

    def _equi_join_keys(self, condition: Optional[Expression],
                        left_contexts: List[Dict[str, Any]],
                        right: _Source):
        """Detect ``left.col = right.col`` to enable a hash join."""
        if not isinstance(condition, BinaryOp) or condition.op != "=":
            return None
        if not isinstance(condition.left, ColumnRef) \
                or not isinstance(condition.right, ColumnRef):
            return None
        sample = left_contexts[0] if left_contexts else {}

        def side(ref: ColumnRef) -> Optional[str]:
            key = ref.name.lower()
            qualified = key if "." in key else None
            alias = right.alias.lower()
            if qualified is not None:
                if qualified.startswith(alias + "."):
                    return "right"
                return "left" if qualified in sample or not left_contexts \
                    else None
            if right.schema.has_column(key):
                if key in sample:
                    return None  # ambiguous — fall back to nested loop
                return "right"
            return "left"

        left_side = side(condition.left)
        right_side = side(condition.right)
        if left_side == "left" and right_side == "right":
            return condition.left, condition.right
        if left_side == "right" and right_side == "left":
            return condition.right, condition.left
        return None

    def _hash_join(self, left_contexts, right: _Source, kind: str,
                   keys, params) -> Iterable[Dict[str, Any]]:
        left_key_expr, right_key_expr = keys
        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for right_values in right.contexts():
            key = right_key_expr.evaluate(_RowContext(right_values, params))
            if key is None:
                continue
            buckets.setdefault(key, []).append(right_values)
        for left_values in left_contexts:
            key = left_key_expr.evaluate(_RowContext(left_values, params))
            matches = buckets.get(key, []) if key is not None else []
            if matches:
                for right_values in matches:
                    yield _merge_contexts(left_values, right_values)
            elif kind == "LEFT":
                yield _merge_contexts(left_values, right.null_context())

    # -- grouping --------------------------------------------------------------------

    def _group(self, contexts: List[Dict[str, Any]],
               group_by: List[Expression],
               aggregates: List[AggregateCall],
               params: Sequence[Any]) -> List[Dict[str, Any]]:
        groups: Dict[tuple, List[Dict[str, Any]]] = {}
        order: List[tuple] = []
        if group_by:
            for values in contexts:
                context = _RowContext(values, params)
                key = tuple(
                    sort_key(expr.evaluate(context)) for expr in group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(values)
        else:
            key = ()
            groups[key] = list(contexts)
            order.append(key)

        unique_aggregates: Dict[str, AggregateCall] = {}
        for aggregate in aggregates:
            unique_aggregates.setdefault(aggregate.result_key(), aggregate)

        result: List[Dict[str, Any]] = []
        for key in order:
            members = groups[key]
            representative = dict(members[0]) if members else {}
            member_contexts = [_RowContext(m, params) for m in members]
            for slot, aggregate in unique_aggregates.items():
                representative[slot] = aggregate.compute(member_contexts)
            result.append(representative)
        return result

    # -- projection helpers -------------------------------------------------------------

    def _expand_stars(self, items: List[SelectItem],
                      sources: List[_Source]) -> List[SelectItem]:
        expanded: List[SelectItem] = []
        for item in items:
            if not isinstance(item.expression, Star):
                expanded.append(item)
                continue
            if not sources:
                raise EngineError("SELECT * requires a FROM clause")
            qualifier = None
            if item.alias and item.alias.endswith(".*"):
                qualifier = item.alias[:-2].lower()
            for source in sources:
                if qualifier is not None \
                        and source.alias.lower() != qualifier:
                    continue
                for column in source.schema.columns:
                    ref = ColumnRef(f"{source.alias}.{column.name}")
                    expanded.append(SelectItem(ref, column.name))
        return expanded

    def _output_name(self, item: SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        expression = item.expression
        if isinstance(expression, ColumnRef):
            return expression.name.split(".")[-1]
        if isinstance(expression, AggregateCall):
            return expression.result_key().replace("__agg_", "")
        return f"column{index + 1}"
