"""Embedded relational database engine.

This package is the reproduction's stand-in for PostgreSQL in the ODBIS
technical-resources layer (paper Fig. 5).  It implements a useful subset
of SQL end-to-end: a tokenizer and recursive-descent parser, a logical
planner, an iterator-model executor, hash and sorted indexes, and
undo-log transactions — all against an in-memory row store with optional
snapshot persistence.

Quickstart::

    from repro.engine import Database

    db = Database("demo")
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
    db.execute("INSERT INTO t (id, name) VALUES (?, ?)", (1, "ada"))
    rows = db.query("SELECT name FROM t WHERE id = 1")
    assert rows[0]["name"] == "ada"
"""

from repro.engine.database import Connection, Database, ResultSet
from repro.engine.locking import ReadWriteLock
from repro.engine.parser import parse_sql
from repro.engine.schema import (
    Catalog,
    Column,
    ColumnType,
    TableSchema,
    make_schema,
)
from repro.engine.types import SqlType
from repro.engine.wal import JournalLog, WriteAheadLog

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "Connection",
    "Database",
    "JournalLog",
    "ReadWriteLock",
    "ResultSet",
    "SqlType",
    "TableSchema",
    "WriteAheadLog",
    "make_schema",
    "parse_sql",
]
