"""Row storage for the embedded engine.

Each table's rows live in a dict keyed by a monotonically increasing
rowid.  Mutations are funnelled through three primitives (insert, delete,
update) which report enough information for the transaction layer to
undo them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.indexes import Index
from repro.engine.schema import TableSchema
from repro.errors import ConstraintViolation


class TableStorage:
    """Rows plus secondary indexes for a single table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: Dict[int, List[Any]] = {}
        self._next_rowid = 1
        self.indexes: Dict[str, Index] = {}
        # Optional concurrency-sanitizer hook (duck-typed
        # StorageMonitor); None in production, so the per-mutation
        # cost is one attribute test.
        self._monitor = None
        # Unique constraints (incl. the primary key) get an implicit index.
        for column in schema.columns:
            if column.unique:
                self.add_index(
                    f"__uniq_{schema.name}_{column.name}".lower(),
                    [column.name],
                    unique=True,
                )

    def __len__(self) -> int:
        return len(self.rows)

    def attach_monitor(self, monitor) -> None:
        """Start reporting reads/mutations to a sanitizer monitor."""
        self._monitor = monitor

    # -- indexes ------------------------------------------------------------

    def add_index(self, name: str, column_names: List[str],
                  unique: bool = False) -> Index:
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        positions = [self.schema.column_index(c) for c in column_names]
        index = Index(name, column_names, positions, unique=unique)
        for rowid, row in self.rows.items():
            index.insert(rowid, row)
        self.indexes[name.lower()] = index
        return index

    def drop_index(self, name: str) -> None:
        self.indexes.pop(name.lower(), None)

    def find_index(self, column_name: str) -> Optional[Index]:
        """Return some index whose leading column is ``column_name``."""
        target = column_name.lower()
        for index in self.indexes.values():
            if index.column_names[0].lower() == target:
                return index
        return None

    def add_column(self, column) -> None:
        """Extend the schema and backfill existing rows.

        Existing rows take the column default; a NOT NULL column
        without a default is rejected when rows already exist.
        """
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        if column.default is None and not column.nullable and self.rows:
            raise ConstraintViolation(
                f"cannot add NOT NULL column {column.name!r} without "
                f"a default to non-empty table {self.schema.name!r}")
        self.schema.add_column(column)
        for row in self.rows.values():
            row.append(column.default)
        if column.unique:
            self.add_index(
                f"__uniq_{self.schema.name}_{column.name}".lower(),
                [column.name], unique=True)

    # -- mutations ----------------------------------------------------------

    def insert(self, row: List[Any]) -> int:
        """Insert a coerced row, returning its rowid."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        rowid = self._next_rowid
        for index in self.indexes.values():
            index.check_insert(rowid, row, self.schema.name)
        self._next_rowid += 1
        self.rows[rowid] = row
        for index in self.indexes.values():
            index.insert(rowid, row)
        return rowid

    def delete(self, rowid: int) -> List[Any]:
        """Delete a row by rowid, returning the old row (for undo)."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        row = self.rows.pop(rowid)
        for index in self.indexes.values():
            index.delete(rowid, row)
        return row

    def update(self, rowid: int, new_row: List[Any]) -> List[Any]:
        """Replace a row in place, returning the old row (for undo)."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        old_row = self.rows[rowid]
        for index in self.indexes.values():
            index.check_update(rowid, old_row, new_row, self.schema.name)
        for index in self.indexes.values():
            index.delete(rowid, old_row)
            index.insert(rowid, new_row)
        self.rows[rowid] = new_row
        return old_row

    def restore(self, rowid: int, row: List[Any]) -> None:
        """Re-insert a previously deleted row under its original rowid."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        if rowid in self.rows:
            raise ConstraintViolation(
                f"rowid {rowid} already present in {self.schema.name}")
        self.rows[rowid] = row
        self._next_rowid = max(self._next_rowid, rowid + 1)
        for index in self.indexes.values():
            index.insert(rowid, row)

    def unallocate(self, rowid: int) -> None:
        """Roll the rowid counter back past an undone insert.

        Rollback replays insert-undos in reverse allocation order, so
        winding the counter to the lowest undone rowid restores the
        pre-transaction value — keeping the live state identical to
        what WAL recovery (which never sees the aborted inserts)
        would rebuild.
        """
        self._next_rowid = min(self._next_rowid, rowid)

    # -- state identity -------------------------------------------------------

    def fingerprint(self) -> Tuple[Any, ...]:
        """A hashable identity of this table's full durable state.

        Covers rows (with rowids), the rowid watermark and the index
        inventory — everything a crash/recover round trip must
        reproduce exactly.  The chaos battery compares fingerprints
        instead of re-querying so a torn row can never hide behind a
        lenient SELECT.
        """
        return (
            self.schema.name.lower(),
            tuple(sorted(
                (rowid, tuple(row))
                for rowid, row in self.rows.items())),
            self._next_rowid,
            tuple(sorted(
                (name, tuple(index.column_names), index.unique)
                for name, index in self.indexes.items())),
        )

    # -- scans ---------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[int, List[Any]]]:
        """Iterate ``(rowid, row)`` pairs in insertion order."""
        if self._monitor is not None:
            self._monitor.on_read(self.schema.name)
        # Copy the id list so callers may mutate during iteration.
        for rowid in list(self.rows):
            row = self.rows.get(rowid)
            if row is not None:
                yield rowid, row
