"""Versioned row storage for the embedded engine (MVCC).

Each table keeps two synchronized representations:

* ``rows`` — the *live* dict keyed by a monotonically increasing
  rowid, exactly the pre-MVCC shape.  Writers (always serialized by
  the database's exclusive lock) and in-transaction reads use it.
* ``_versions`` — per-rowid chains of :class:`RowVersion` records,
  each carrying a ``(created_cn, deleted_cn)`` lifetime stamped with
  the WAL's monotone commit numbers.  Snapshot readers pinned at a
  commit number ``cn`` see exactly the versions with
  ``created_cn <= cn < deleted_cn`` (``None`` meaning "still live"),
  so they never take the lock and never observe a writer's
  in-progress effects.

The lock-free read protocol relies on CPython/GIL atomicity of whole
C-level operations (``list(d.items())``, ``dict.get``, tuple loads)
plus one ordering rule: a writer bumps ``_last_version_cn`` *before*
touching ``rows``.  A snapshot reader copies the live dict and then
re-checks the counter — if it is still at or below the snapshot's
commit number, no writer stamped a newer effect during the copy and
the copy *is* the snapshot; otherwise the reader falls back to
walking the version chains, which are append-only between
collections.

Mutations are funnelled through three primitives (insert, delete,
update) which report enough information for the transaction layer to
undo them; the ``undo_*`` methods *unwind* version chains instead of
appending new versions, so a rolled-back transaction leaves no trace
in any snapshot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.engine.indexes import Index
from repro.engine.schema import TableSchema
from repro.errors import ConstraintViolation


class RowVersion:
    """One generation of a row: its values and its commit lifetime."""

    __slots__ = ("created_cn", "deleted_cn", "row")

    def __init__(self, created_cn: int, deleted_cn: Optional[int],
                 row: List[Any]):
        self.created_cn = created_cn
        self.deleted_cn = deleted_cn
        self.row = row

    def visible_at(self, cn: int) -> bool:
        return self.created_cn <= cn and (
            self.deleted_cn is None or cn < self.deleted_cn)

    def __repr__(self) -> str:
        return (f"<RowVersion [{self.created_cn}, "
                f"{self.deleted_cn if self.deleted_cn is not None else '∞'}) "
                f"{self.row!r}>")


class TableStorage:
    """Rows plus version chains plus secondary indexes for one table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: Dict[int, List[Any]] = {}
        self._next_rowid = 1
        self.indexes: Dict[str, Index] = {}
        # Version chains, keyed by rowid; _version_order remembers
        # insertion order so snapshot scans match live-scan order.
        # Both are guarded by the *owning database's* exclusive lock
        # (the analyzer's "engine-exclusive" virtual guard): only
        # mutated while that lock (or single-threaded recovery)
        # serializes writers; snapshot readers walk them lock-free
        # through atomic whole-structure copies.
        self._versions: Dict[int, List[RowVersion]] = {}  # guarded-by: engine-exclusive
        self._version_order: List[int] = []  # guarded-by: engine-exclusive
        # Highest commit number any effect on this table was stamped
        # with.  Bumped BEFORE the first mutation of a statement so
        # the snapshot fast path's copy-then-recheck is race-free.
        self._last_version_cn = 0  # guarded-by: engine-exclusive
        # The commit-number clock: attached by the owning Database
        # (returns committed_cn + 1, the number the in-flight
        # transaction will commit as).  Stand-alone storages fall back
        # to a local counter so unit tests of this class still get
        # coherent lifetimes.
        self._clock: Optional[Callable[[], int]] = None
        self._local_cn = 0
        # Optional concurrency-sanitizer hook (duck-typed
        # StorageMonitor); None in production, so the per-mutation
        # cost is one attribute test.
        self._monitor = None
        # Unique constraints (incl. the primary key) get an implicit index.
        for column in schema.columns:
            if column.unique:
                self.add_index(
                    f"__uniq_{schema.name}_{column.name}".lower(),
                    [column.name],
                    unique=True,
                )

    def __len__(self) -> int:
        return len(self.rows)

    def attach_monitor(self, monitor) -> None:
        """Start reporting reads/mutations to a sanitizer monitor."""
        self._monitor = monitor

    def attach_clock(self, clock: Callable[[], int]) -> None:
        """Stamp future effects with commit numbers from ``clock``."""
        self._clock = clock

    def _stamp(self) -> int:  # requires: engine-exclusive
        """The commit number for this mutation's effects.

        Publishes the bump to ``_last_version_cn`` *before* the caller
        touches ``rows`` — the ordering the lock-free snapshot fast
        path depends on.
        """
        if self._clock is not None:
            cn = self._clock()
        else:
            self._local_cn += 1
            cn = self._local_cn
        if cn > self._last_version_cn:
            self._last_version_cn = cn
        return cn

    # -- indexes ------------------------------------------------------------

    def add_index(self, name: str, column_names: List[str],
                  unique: bool = False) -> Index:
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        positions = [self.schema.column_index(c) for c in column_names]
        index = Index(name, column_names, positions, unique=unique)
        for rowid, row in self.rows.items():
            index.insert(rowid, row)
        # Backfill retained (superseded) versions too, so a snapshot
        # pinned before this DDL can still reach its rows through the
        # new index; Index.insert de-duplicates shared row objects.
        for rowid, chain in self._versions.items():
            for version in chain:
                index.insert(rowid, version.row)
        self.indexes[name.lower()] = index
        return index

    def drop_index(self, name: str) -> None:
        self.indexes.pop(name.lower(), None)

    def find_index(self, column_name: str) -> Optional[Index]:
        """Return some index whose leading column is ``column_name``."""
        target = column_name.lower()
        for index in list(self.indexes.values()):
            if index.column_names[0].lower() == target:
                return index
        return None

    def add_column(self, column) -> None:
        """Extend the schema and backfill existing rows.

        Existing rows take the column default; a NOT NULL column
        without a default is rejected when rows already exist.  DDL is
        not snapshot-isolated: retained versions are widened in place
        so older snapshots keep reading positionally-valid rows.
        """
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        if column.default is None and not column.nullable and self.rows:
            raise ConstraintViolation(
                f"cannot add NOT NULL column {column.name!r} without "
                f"a default to non-empty table {self.schema.name!r}")
        old_width = len(self.schema.columns)
        self.schema.add_column(column)
        # Live rows and version rows share list objects; the width
        # check appends the default exactly once per distinct object.
        for row in self.rows.values():
            if len(row) == old_width:
                row.append(column.default)
        for chain in self._versions.values():
            for version in chain:
                if len(version.row) == old_width:
                    version.row.append(column.default)
        if column.unique:
            self.add_index(
                f"__uniq_{self.schema.name}_{column.name}".lower(),
                [column.name], unique=True)

    # -- mutations ----------------------------------------------------------

    def insert(self, row: List[Any]) -> int:  # requires: engine-exclusive
        """Insert a coerced row, returning its rowid."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        rowid = self._next_rowid
        for index in self.indexes.values():
            index.check_insert(rowid, row, self.schema.name,
                               live_rows=self.rows)
        cn = self._stamp()
        self._next_rowid += 1
        self.rows[rowid] = row
        chain = self._versions.get(rowid)
        if chain is None:
            self._versions[rowid] = [RowVersion(cn, None, row)]
            self._version_order.append(rowid)
        else:
            chain.append(RowVersion(cn, None, row))
        for index in self.indexes.values():
            index.insert(rowid, row)
        return rowid

    def delete(self, rowid: int) -> List[Any]:  # requires: engine-exclusive
        """Delete a row by rowid, returning the old row (for undo).

        The index entries and the superseded version stay behind for
        snapshot readers; the version is merely stamped dead at this
        commit number.
        """
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        cn = self._stamp()
        row = self.rows.pop(rowid)
        chain = self._versions.get(rowid)
        if chain:
            chain[-1].deleted_cn = cn
        return row

    def update(self, rowid: int, new_row: List[Any]) -> List[Any]:  # requires: engine-exclusive
        """Replace a row in place, returning the old row (for undo)."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        old_row = self.rows[rowid]
        for index in self.indexes.values():
            index.check_update(rowid, old_row, new_row, self.schema.name,
                               live_rows=self.rows)
        cn = self._stamp()
        chain = self._versions.get(rowid)
        if chain:
            chain[-1].deleted_cn = cn
            chain.append(RowVersion(cn, None, new_row))
        else:
            self._versions[rowid] = [RowVersion(cn, None, new_row)]
            self._version_order.append(rowid)
        self.rows[rowid] = new_row
        # The old-key entries stay as tombstones; only the new key is
        # added.  Readers verify candidates against the fetched row.
        for index in self.indexes.values():
            index.insert(rowid, new_row)
        return old_row

    def restore(self, rowid: int, row: List[Any]) -> None:  # requires: engine-exclusive
        """Re-insert a previously deleted row under its original rowid
        (WAL replay of a committed insert)."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        if rowid in self.rows:
            raise ConstraintViolation(
                f"rowid {rowid} already present in {self.schema.name}")
        cn = self._stamp()
        self.rows[rowid] = row
        self._next_rowid = max(self._next_rowid, rowid + 1)
        chain = self._versions.get(rowid)
        if chain is None:
            self._versions[rowid] = [RowVersion(cn, None, row)]
            self._version_order.append(rowid)
        else:
            chain.append(RowVersion(cn, None, row))
        for index in self.indexes.values():
            index.insert(rowid, row)

    def unallocate(self, rowid: int) -> None:
        """Roll the rowid counter back past an undone insert.

        Rollback replays insert-undos in reverse allocation order, so
        winding the counter to the lowest undone rowid restores the
        pre-transaction value — keeping the live state identical to
        what WAL recovery (which never sees the aborted inserts)
        would rebuild.
        """
        self._next_rowid = min(self._next_rowid, rowid)

    # -- rollback unwinding ---------------------------------------------------

    def undo_insert(self, rowid: int) -> None:  # requires: engine-exclusive
        """Unwind an aborted insert: pop its version, drop the row.

        Unlike :meth:`delete` this leaves *no* tombstone — an aborted
        effect must be invisible at every commit number.
        """
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        self.rows.pop(rowid, None)
        chain = self._versions.get(rowid)
        if chain:
            chain.pop()
            if not chain:
                del self._versions[rowid]
                self._version_order.remove(rowid)

    def undo_delete(self, rowid: int, row: List[Any]) -> None:  # requires: engine-exclusive
        """Unwind an aborted delete: clear the death stamp."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        self.rows[rowid] = row
        chain = self._versions.get(rowid)
        if chain:
            chain[-1].deleted_cn = None
        else:
            self._versions[rowid] = [RowVersion(0, None, row)]
            self._version_order.append(rowid)

    def undo_update(self, rowid: int, old_row: List[Any]) -> None:  # requires: engine-exclusive
        """Unwind an aborted update: pop the new version, revive the old."""
        if self._monitor is not None:
            self._monitor.on_write(self.schema.name)
        self.rows[rowid] = old_row
        chain = self._versions.get(rowid)
        if chain and len(chain) > 1:
            chain.pop()
            chain[-1].deleted_cn = None
        elif chain:
            # The updated row had no prior version (legacy storage);
            # rewrite the single version in place.
            chain[-1].row = old_row
            chain[-1].deleted_cn = None

    # -- snapshot visibility --------------------------------------------------

    def visible_row(self, rowid: int, cn: int) -> Optional[List[Any]]:
        """The row version visible at commit number ``cn`` (or None)."""
        chain = self._versions.get(rowid)
        if chain is None:
            return None
        for version in reversed(tuple(chain)):
            if version.visible_at(cn):
                return version.row
        return None

    def snapshot_rows(self, cn: int) -> List[Tuple[int, List[Any]]]:
        """All ``(rowid, row)`` pairs visible at commit number ``cn``.

        Lock-free.  Fast path: when no effect newer than ``cn`` has
        been stamped, the live dict *is* the snapshot — copy it and
        re-check the stamp counter to close the copy-during-write
        race.  Slow path: walk the version chains.
        """
        if self._monitor is not None:
            self._monitor.on_snapshot_read(self.schema.name, cn)
        if self._last_version_cn <= cn:
            items = list(self.rows.items())
            if self._last_version_cn <= cn:
                return items
        visible: List[Tuple[int, List[Any]]] = []
        for rowid in list(self._version_order):
            chain = self._versions.get(rowid)
            if chain is None:
                continue
            for version in reversed(tuple(chain)):
                if version.visible_at(cn):
                    visible.append((rowid, version.row))
                    break
        return visible

    def version_count(self) -> int:
        """Total retained versions across all chains (GC observability)."""
        return sum(len(chain) for chain in list(self._versions.values()))

    def seed_versions(self, cn: int) -> None:  # requires: engine-exclusive
        """Rebuild version chains from the live rows (snapshot load).

        Flat snapshots persist only the live rows; on load every row
        becomes the base version created at the snapshot's WAL commit
        number, so any snapshot pinned at ``cn`` or later sees it.
        """
        self._versions = {}
        self._version_order = []
        for rowid, row in self.rows.items():
            self._versions[rowid] = [RowVersion(cn, None, row)]
            self._version_order.append(rowid)
        if cn > self._last_version_cn:
            self._last_version_cn = cn

    def collect(self, horizon: int) -> int:  # requires: engine-exclusive
        """Reclaim versions no snapshot at or beyond ``horizon`` can see.

        A version is dead once ``deleted_cn <= horizon``: every open
        snapshot is pinned at ``>= horizon`` and new snapshots only
        pin later numbers.  Chains, the order list and every index's
        buckets are rebuilt into fresh structures and swapped in with
        single stores, so readers mid-walk keep the old (still
        correct) structures.  Returns the number of reclaimed
        versions.
        """
        fresh: Dict[int, List[RowVersion]] = {}
        order: List[int] = []
        reclaimed = 0
        for rowid in self._version_order:
            chain = self._versions.get(rowid, [])
            kept = [version for version in chain
                    if version.deleted_cn is None
                    or version.deleted_cn > horizon]
            reclaimed += len(chain) - len(kept)
            if kept:
                fresh[rowid] = kept
                order.append(rowid)
        self._versions = fresh
        self._version_order = order
        for index in self.indexes.values():
            index.rebuild(
                (index.key_for(version.row), rowid)
                for rowid in order
                for version in fresh[rowid])
        return reclaimed

    # -- state identity -------------------------------------------------------

    def fingerprint(self) -> Tuple[Any, ...]:
        """A hashable identity of this table's full durable state.

        Covers rows (with rowids), the rowid watermark and the index
        inventory — everything a crash/recover round trip must
        reproduce exactly.  The chaos battery compares fingerprints
        instead of re-querying so a torn row can never hide behind a
        lenient SELECT.  Retained versions are deliberately excluded:
        they are reclaimable cache, not durable state.
        """
        return (
            self.schema.name.lower(),
            tuple(sorted(
                (rowid, tuple(row))
                for rowid, row in self.rows.items())),
            self._next_rowid,
            tuple(sorted(
                (name, tuple(index.column_names), index.unique)
                for name, index in self.indexes.items())),
        )

    # -- scans ---------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[int, List[Any]]]:
        """Iterate live ``(rowid, row)`` pairs in insertion order.

        This is the *live* scan — writers and in-transaction reads
        under the exclusive lock.  Snapshot readers use
        :meth:`snapshot_rows` instead.
        """
        if self._monitor is not None:
            self._monitor.on_read(self.schema.name)
        # Copy the id list so callers may mutate during iteration.
        for rowid in list(self.rows):
            row = self.rows.get(rowid)
            if row is not None:
                yield rowid, row
