"""SQL tokenizer and recursive-descent parser.

The grammar covers the SQL subset the ODBIS services use: CREATE/DROP
TABLE, CREATE/DROP INDEX, INSERT (multi-row), SELECT (joins, WHERE,
GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, aggregates), UPDATE,
DELETE and transaction control.  Parameters are ``?`` placeholders.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.engine.expressions import (
    AGGREGATE_NAMES,
    AggregateCall,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
)
from repro.engine.schema import Column
from repro.engine.types import SqlType
from repro.errors import SqlSyntaxError

# --- tokens -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><>|!=|<=|>=|\|\||[=<>+\-*/%(),.?;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "ASC", "DESC", "DISTINCT", "AS", "AND", "OR", "NOT", "NULL",
    "IS", "IN", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP",
    "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY", "DEFAULT", "IF", "EXISTS",
    "JOIN", "INNER", "LEFT", "OUTER", "ON", "TRUE", "FALSE", "BEGIN",
    "COMMIT", "ROLLBACK", "CROSS", "ALTER", "ADD", "COLUMN", "VIEW",
    "UNION", "ALL", "EXPLAIN",
}


@dataclass
class Token:
    kind: str  # 'number' | 'string' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    position: int
    line: int = 1
    column: int = 1


def line_column(sql: str, offset: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset in ``sql``."""
    prefix = sql[:offset]
    line = prefix.count("\n") + 1
    last_newline = prefix.rfind("\n")
    return line, offset - last_newline


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            line, column = line_column(sql, position)
            if sql[position] == "'":
                raise SqlSyntaxError(
                    f"unterminated string literal at line {line}, "
                    f"column {column}",
                    line=line, column=column, offset=position)
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r} at line {line}, "
                f"column {column}",
                line=line, column=column, offset=position)
        position = match.end()
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        text = match.group()
        line, column = line_column(sql, match.start())
        if kind == "name" and text.upper() in _KEYWORDS:
            tokens.append(Token("keyword", text.upper(), match.start(),
                                line, column))
        else:
            tokens.append(Token(kind, text, match.start(), line, column))
    line, column = line_column(sql, length)
    tokens.append(Token("eof", "", length, line, column))
    return tokens


# --- statement AST -----------------------------------------------------------

@dataclass
class TableRef:
    name: str
    alias: str
    # Source offset of the table name (for analyzer spans); excluded
    # from equality so AST comparisons stay position-insensitive.
    position: Optional[int] = field(default=None, compare=False,
                                    repr=False)


@dataclass
class Join:
    left: Any  # TableRef | Join
    right: TableRef
    kind: str  # 'INNER' | 'LEFT' | 'CROSS'
    condition: Optional[Expression]


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str]


@dataclass
class SelectStatement:
    items: List[SelectItem]
    from_clause: Optional[Any]  # TableRef | Join | None
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[Tuple[Expression, bool]] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclass
class CompoundSelect:
    """``SELECT ... UNION [ALL] SELECT ...`` chains.

    Each part is a full SelectStatement (its own WHERE/GROUP/ORDER are
    applied per part); dedup semantics follow the flag between parts.
    """

    parts: List[SelectStatement]
    all_flags: List[bool]  # flag i applies between part i and i+1


@dataclass
class InsertStatement:
    table: str
    columns: List[str]
    rows: List[List[Expression]]
    position: Optional[int] = field(default=None, compare=False,
                                    repr=False)


@dataclass
class UpdateStatement:
    table: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression]
    position: Optional[int] = field(default=None, compare=False,
                                    repr=False)


@dataclass
class DeleteStatement:
    table: str
    where: Optional[Expression]
    position: Optional[int] = field(default=None, compare=False,
                                    repr=False)


@dataclass
class CreateTableStatement:
    name: str
    columns: List[Column]
    if_not_exists: bool


@dataclass
class CreateTableAsStatement:
    name: str
    select: "SelectStatement"
    if_not_exists: bool


@dataclass
class DropTableStatement:
    name: str
    if_exists: bool


@dataclass
class CreateViewStatement:
    name: str
    select: "SelectStatement"
    if_not_exists: bool


@dataclass
class DropViewStatement:
    name: str
    if_exists: bool


@dataclass
class AlterTableAddColumn:
    table: str
    column: Column


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    columns: List[str]
    unique: bool


@dataclass
class TransactionStatement:
    action: str  # 'BEGIN' | 'COMMIT' | 'ROLLBACK'


@dataclass
class ExplainStatement:
    """``EXPLAIN <select>`` — render the query plan as a result set."""

    statement: Any


Statement = Any


# --- parser ------------------------------------------------------------------

class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        self._param_count = 0

    # -- token helpers --------------------------------------------------------

    def _error(self, message: str, token: Token) -> SqlSyntaxError:
        """A SqlSyntaxError pinned to ``token``'s source position."""
        return SqlSyntaxError(
            f"{message} at line {token.line}, column {token.column}",
            line=token.line, column=token.column, offset=token.position)

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.text in keywords

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        if self._check_keyword(*keywords):
            return self._advance().text
        return None

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.kind != "keyword" or token.text != keyword:
            raise self._error(
                f"expected {keyword} but found {token.text!r}", token)

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.text != op:
            raise self._error(
                f"expected {op!r} but found {token.text!r}", token)

    def _expect_name(self) -> str:
        token = self._advance()
        if token.kind == "name":
            return token.text
        # Allow non-reserved words that happen to be keywords in other
        # positions (e.g. a column named "key") — only for a safe subset.
        if token.kind == "keyword" and token.text in ("KEY", "INDEX", "SET"):
            return token.text.lower()
        raise self._error(
            f"expected identifier but found {token.text!r}", token)

    # -- entry point ----------------------------------------------------------

    def parse(self) -> Statement:
        statement = self._parse_statement()
        self._accept_op(";")
        token = self._peek()
        if token.kind != "eof":
            raise self._error(
                f"unexpected trailing input {token.text!r}", token)
        return statement

    def _parse_statement(self) -> Statement:
        if self._accept_keyword("EXPLAIN"):
            return ExplainStatement(self._parse_statement())
        if self._check_keyword("SELECT"):
            statement = self._parse_select()
            if not self._check_keyword("UNION"):
                return statement
            parts = [statement]
            all_flags: List[bool] = []
            while self._accept_keyword("UNION"):
                all_flags.append(bool(self._accept_keyword("ALL")))
                parts.append(self._parse_select())
            return CompoundSelect(parts, all_flags)
        if self._accept_keyword("INSERT"):
            return self._parse_insert()
        if self._accept_keyword("UPDATE"):
            return self._parse_update()
        if self._accept_keyword("DELETE"):
            return self._parse_delete()
        if self._accept_keyword("CREATE"):
            return self._parse_create()
        if self._accept_keyword("DROP"):
            return self._parse_drop()
        if self._accept_keyword("ALTER"):
            return self._parse_alter()
        if self._accept_keyword("BEGIN"):
            return TransactionStatement("BEGIN")
        if self._accept_keyword("COMMIT"):
            return TransactionStatement("COMMIT")
        if self._accept_keyword("ROLLBACK"):
            return TransactionStatement("ROLLBACK")
        token = self._peek()
        raise self._error(
            f"cannot parse statement starting with {token.text!r}", token)

    # -- SELECT ---------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        from_clause = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()

        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()

        group_by: List[Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_op(","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()

        order_by: List[Tuple[Expression, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_expression()
        if self._accept_keyword("OFFSET"):
            offset = self._parse_expression()

        return SelectStatement(
            items=items, from_clause=from_clause, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, offset=offset, distinct=distinct)

    def _parse_select_item(self) -> SelectItem:
        if self._peek().kind == "op" and self._peek().text == "*":
            self._advance()
            return SelectItem(Star(), None)
        # qualified star: alias.*
        if (self._peek().kind == "name"
                and self.index + 2 < len(self.tokens)
                and self.tokens[self.index + 1].text == "."
                and self.tokens[self.index + 2].text == "*"):
            qualifier = self._advance().text
            self._advance()  # .
            self._advance()  # *
            return SelectItem(Star(), qualifier + ".*")
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _parse_order_item(self) -> Tuple[Expression, bool]:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return expression, ascending

    def _parse_from(self) -> Any:
        node: Any = self._parse_table_ref()
        while True:
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._parse_table_ref()
                node = Join(node, right, "CROSS", None)
                continue
            kind = None
            if self._accept_keyword("INNER"):
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "LEFT"
            if kind is not None:
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                kind = "INNER"
            else:
                break
            right = self._parse_table_ref()
            self._expect_keyword("ON")
            condition = self._parse_expression()
            node = Join(node, right, kind, condition)
        return node

    def _parse_table_ref(self) -> TableRef:
        position = self._peek().position
        name = self._expect_name()
        alias = name
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._advance().text
        return TableRef(name, alias, position=position)

    # -- INSERT / UPDATE / DELETE ----------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INTO")
        table_token = self._peek()
        table = self._expect_name()
        columns: List[str] = []
        if self._accept_op("("):
            columns.append(self._expect_name())
            while self._accept_op(","):
                columns.append(self._expect_name())
            self._expect_op(")")
        self._expect_keyword("VALUES")
        rows = [self._parse_value_tuple(columns)]
        while self._accept_op(","):
            rows.append(self._parse_value_tuple(columns))
        return InsertStatement(table, columns, rows,
                               position=table_token.position)

    def _parse_value_tuple(self,
                           columns: List[str]) -> List[Expression]:
        open_token = self._peek()
        self._expect_op("(")
        values = [self._parse_expression()]
        while self._accept_op(","):
            values.append(self._parse_expression())
        self._expect_op(")")
        # When a column list is given the arity of every tuple is known
        # syntactically — reject mismatches here with a position rather
        # than letting the executor fail mid-insert.
        if columns and len(values) != len(columns):
            raise self._error(
                f"INSERT lists {len(columns)} columns but the VALUES "
                f"tuple has {len(values)} values", open_token)
        return values

    def _parse_update(self) -> UpdateStatement:
        table_token = self._peek()
        table = self._expect_name()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return UpdateStatement(table, assignments, where,
                               position=table_token.position)

    def _parse_assignment(self) -> Tuple[str, Expression]:
        column = self._expect_name()
        self._expect_op("=")
        return column, self._parse_expression()

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("FROM")
        table_token = self._peek()
        table = self._expect_name()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return DeleteStatement(table, where,
                               position=table_token.position)

    # -- DDL --------------------------------------------------------------------

    def _parse_create(self) -> Statement:
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("TABLE"):
            if unique:
                raise SqlSyntaxError("CREATE UNIQUE TABLE is not valid")
            return self._parse_create_table()
        if self._accept_keyword("VIEW"):
            if unique:
                raise SqlSyntaxError("CREATE UNIQUE VIEW is not valid")
            return self._parse_create_view()
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique)
        token = self._peek()
        raise self._error(f"cannot CREATE {token.text!r}", token)

    def _parse_create_table(self) -> CreateTableStatement:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_name()
        if self._accept_keyword("AS"):
            select = self._parse_select()
            return CreateTableAsStatement(name, select, if_not_exists)
        self._expect_op("(")
        columns = [self._parse_column_def()]
        while self._accept_op(","):
            columns.append(self._parse_column_def())
        self._expect_op(")")
        return CreateTableStatement(name, columns, if_not_exists)

    def _parse_column_def(self) -> Column:
        name = self._expect_name()
        type_token = self._advance()
        if type_token.kind != "name":
            raise self._error(
                f"expected a type name after column {name!r}", type_token)
        sql_type = SqlType.from_sql(type_token.text)
        # Swallow optional length/precision such as VARCHAR(255).
        if self._accept_op("("):
            while not self._accept_op(")"):
                self._advance()
        nullable = True
        primary_key = False
        unique = False
        default: Any = None
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            elif self._accept_keyword("UNIQUE"):
                unique = True
            elif self._accept_keyword("DEFAULT"):
                default = self._parse_literal_value()
            else:
                break
        return Column(name=name, type=sql_type, nullable=nullable,
                      primary_key=primary_key, unique=unique, default=default)

    def _parse_literal_value(self) -> Any:
        token = self._advance()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text == "TRUE":
            return True
        if token.kind == "keyword" and token.text == "FALSE":
            return False
        if token.kind == "keyword" and token.text == "NULL":
            return None
        if token.kind == "op" and token.text == "-":
            value = self._parse_literal_value()
            return -value
        raise self._error(
            f"expected a literal, found {token.text!r}", token)

    def _parse_create_view(self) -> CreateViewStatement:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_name()
        self._expect_keyword("AS")
        select = self._parse_select()
        return CreateViewStatement(name, select, if_not_exists)

    def _parse_create_index(self, unique: bool) -> CreateIndexStatement:
        name = self._expect_name()
        self._expect_keyword("ON")
        table = self._expect_name()
        self._expect_op("(")
        columns = [self._expect_name()]
        while self._accept_op(","):
            columns.append(self._expect_name())
        self._expect_op(")")
        return CreateIndexStatement(name, table, columns, unique)

    def _parse_alter(self) -> Statement:
        self._expect_keyword("TABLE")
        table = self._expect_name()
        self._expect_keyword("ADD")
        self._accept_keyword("COLUMN")
        column = self._parse_column_def()
        if column.primary_key:
            raise SqlSyntaxError(
                "cannot add a PRIMARY KEY column with ALTER TABLE")
        return AlterTableAddColumn(table, column)

    def _parse_drop(self) -> Statement:
        if self._accept_keyword("TABLE"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            name = self._expect_name()
            return DropTableStatement(name, if_exists)
        if self._accept_keyword("VIEW"):
            if_exists = False
            if self._accept_keyword("IF"):
                self._expect_keyword("EXISTS")
                if_exists = True
            name = self._expect_name()
            return DropViewStatement(name, if_exists)
        token = self._peek()
        raise self._error(f"cannot DROP {token.text!r}", token)

    # -- expressions --------------------------------------------------------------
    # precedence: OR < AND < NOT < comparison < additive < multiplicative < unary

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        node = self._parse_and()
        while self._accept_keyword("OR"):
            node = BinaryOp("OR", node, self._parse_and())
        return node

    def _parse_and(self) -> Expression:
        node = self._parse_not()
        while self._accept_keyword("AND"):
            node = BinaryOp("AND", node, self._parse_not())
        return node

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        node = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            op = self._advance().text
            return BinaryOp(op, node, self._parse_additive())
        negated = False
        if self._check_keyword("NOT"):
            following = self.tokens[self.index + 1]
            if following.kind == "keyword" and following.text in (
                    "IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
        if self._accept_keyword("IS"):
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(node, negated=is_negated)
        if self._accept_keyword("IN"):
            self._expect_op("(")
            options = [self._parse_expression()]
            while self._accept_op(","):
                options.append(self._parse_expression())
            self._expect_op(")")
            return InList(node, options, negated=negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(node, low, high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return Like(node, pattern, negated=negated)
        if negated:
            raise self._error("dangling NOT in expression", self._peek())
        return node

    def _parse_additive(self) -> Expression:
        node = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-", "||"):
                op = self._advance().text
                node = BinaryOp(op, node, self._parse_multiplicative())
            else:
                return node

    def _parse_multiplicative(self) -> Expression:
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                op = self._advance().text
                node = BinaryOp(op, node, self._parse_unary())
            else:
                return node

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "+"):
            op = self._advance().text
            return UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._advance()
        if token.kind == "number":
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "string":
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "op" and token.text == "?":
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "op" and token.text == "(":
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        if token.kind == "keyword":
            if token.text == "NULL":
                return Literal(None)
            if token.text == "TRUE":
                return Literal(True)
            if token.text == "FALSE":
                return Literal(False)
            if token.text == "CASE":
                return self._parse_case()
            raise self._error(
                f"unexpected keyword {token.text!r} in expression", token)
        if token.kind == "name":
            return self._parse_name_expression(token.text,
                                               token.position)
        raise self._error(
            f"unexpected token {token.text!r}", token)

    def _parse_case(self) -> Expression:
        branches: List[Tuple[Expression, Expression]] = []
        default: Optional[Expression] = None
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            branches.append((condition, result))
        if self._accept_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        return CaseExpr(branches, default)

    def _parse_name_expression(self, name: str,
                               position: Optional[int] = None) \
            -> Expression:
        # function call?
        if self._peek().kind == "op" and self._peek().text == "(":
            self._advance()
            upper = name.upper()
            if upper in AGGREGATE_NAMES:
                distinct = bool(self._accept_keyword("DISTINCT"))
                if self._peek().kind == "op" and self._peek().text == "*":
                    self._advance()
                    self._expect_op(")")
                    return AggregateCall(upper, Star(), distinct=False)
                argument = self._parse_expression()
                self._expect_op(")")
                return AggregateCall(upper, argument, distinct=distinct)
            args: List[Expression] = []
            if not self._accept_op(")"):
                args.append(self._parse_expression())
                while self._accept_op(","):
                    args.append(self._parse_expression())
                self._expect_op(")")
            return FunctionCall(upper, args)
        # qualified column?
        if self._peek().kind == "op" and self._peek().text == ".":
            self._advance()
            column = self._expect_name()
            return ColumnRef(f"{name}.{column}", position=position)
        return ColumnRef(name, position=position)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return Parser(sql).parse()
